"""E3 — paper Table III: CIFAR-10 accuracy and per-image runtime.

The runtime columns are predicted for the *full-width* Arch. 3 (runtime
depends only on the architecture, so no training is needed); the accuracy
column comes from the width-reduced Arch. 3 trained on the synthetic
CIFAR-10 stand-in (documented in DESIGN.md section 3 and the zoo
docstrings).
"""

import numpy as np
import pytest

from .conftest import write_result
from repro.embedded import DeployedModel, InferenceProfiler
from repro.zoo import build_arch3

#: Paper Table III: impl -> (accuracy %, (xu3, honor6x) us).
PAPER_TABLE3 = {
    "Java": (80.2, (21032.0, 19785.0)),
    "C++": (80.2, (8912.0, 8244.0)),
}

PLATFORM_ORDER = ("xu3", "honor6x")


@pytest.fixture(scope="module")
def table3(trained_arch3_reduced):
    model_full = build_arch3(rng=np.random.default_rng(0))
    profiler = InferenceProfiler(model_full, (3, 32, 32))
    _, acc = trained_arch3_reduced
    rows = {}
    for impl_key, impl_name in (("java", "Java"), ("cpp", "C++")):
        runtimes = tuple(profiler.runtime_us(p, impl_key) for p in PLATFORM_ORDER)
        rows[impl_name] = (100.0 * acc, runtimes)
    return rows


def test_table3_reproduction(table3, benchmark, trained_arch3_reduced):
    """Regenerate Table III and check the paper's qualitative shape."""
    lines = [
        "E3 / Table III — core runtime of each round of inference (CIFAR-10)",
        "",
        f"{'Impl':5s} {'Acc% (paper)':>14s} "
        + " ".join(f"{p + ' us (paper)':>24s}" for p in PLATFORM_ORDER),
        "(accuracy from the width-reduced Arch. 3 on synthetic CIFAR-10;",
        " runtimes predicted for the full-width Arch. 3)",
    ]
    for impl, (acc, runtimes) in sorted(table3.items()):
        paper_acc, paper_runtimes = PAPER_TABLE3[impl]
        cells = " ".join(
            f"{ours:9.0f} ({paper:9.0f})"
            for ours, paper in zip(runtimes, paper_runtimes)
        )
        lines.append(f"{impl:5s} {acc:6.2f} ({paper_acc:5.2f}) {cells}")
    write_result("table3_cifar", lines)

    for impl, (acc, runtimes) in table3.items():
        paper_acc, paper_runtimes = PAPER_TABLE3[impl]
        # Synthetic-data accuracy: must decisively learn the 10-class task
        # and land broadly in the paper's neighbourhood.
        assert 65.0 < acc <= 99.0, impl
        for ours, paper in zip(runtimes, paper_runtimes):
            assert ours == pytest.approx(paper, rel=0.15), impl
    # Java ~2.3-2.4x slower (paper: "C++ about 130% faster").
    for i in range(2):
        ratio = table3["Java"][1][i] / table3["C++"][1][i]
        assert 2.0 < ratio < 2.9, i

    model, _ = trained_arch3_reduced
    deployed = DeployedModel.from_model(model)
    image = np.random.default_rng(0).uniform(size=(1, 3, 32, 32))
    benchmark(deployed.predict, image)


def test_bench_arch3_reduced_deployed_inference(
    benchmark, trained_arch3_reduced
):
    """Host-side per-image latency of the deployed reduced Arch. 3."""
    model, _ = trained_arch3_reduced
    deployed = DeployedModel.from_model(model)
    rng = np.random.default_rng(0)
    image = rng.uniform(size=(1, 3, 32, 32))
    benchmark(deployed.forward, image)
