"""E16 — dense -> block-circulant conversion + fine-tuning (extension).

The practical compression workflow: train dense, project onto
block-circulant (Frobenius-optimal), fine-tune briefly.  This bench
measures accuracy at each stage on the synthetic MNIST task and the
projection error per block size — quantifying how much accuracy the
projection costs and how much fine-tuning recovers.
"""

import numpy as np
import pytest

from .conftest import write_result
from repro.data import DataLoader
from repro.nn import (
    Adam,
    CrossEntropyLoss,
    Linear,
    ReLU,
    Sequential,
    Trainer,
    accuracy,
    conversion_report,
    convert_to_block_circulant,
    predict_in_batches,
)
from repro.zoo import ARCH1_INPUT_SIDE


@pytest.fixture(scope="module")
def dense_baseline(mnist_data):
    """A dense 256-128-128-10 network trained on the 16x16 view."""
    train_set, test_set = mnist_data[ARCH1_INPUT_SIDE]
    rng = np.random.default_rng(2)
    model = Sequential(
        Linear(256, 128, rng=rng), ReLU(),
        Linear(128, 128, rng=rng), ReLU(),
        Linear(128, 10, rng=rng),
    )
    loader = DataLoader(train_set, batch_size=64, shuffle=True, seed=0)
    trainer = Trainer(model, CrossEntropyLoss(), Adam(model.parameters(), lr=0.003))
    trainer.fit(loader, epochs=10)
    model.eval()
    score = accuracy(predict_in_batches(model, test_set.inputs), test_set.labels)
    return model, score


def test_convert_and_finetune(dense_baseline, mnist_data, benchmark):
    dense, dense_acc = dense_baseline
    train_set, test_set = mnist_data[ARCH1_INPUT_SIDE]
    lines = [
        "E16 — dense -> block-circulant conversion + fine-tune (Arch. 1 shape)",
        "",
        f"dense baseline accuracy: {100 * dense_acc:.2f}%",
        "",
        f"{'block':>6s} {'proj err L1':>12s} {'projected %':>12s} "
        f"{'fine-tuned %':>13s}",
    ]
    results = {}
    for block in (16, 64):
        report = conversion_report(dense, block, skip=(4,))
        converted = convert_to_block_circulant(dense, block, skip=(4,))
        converted.eval()
        projected_acc = accuracy(
            predict_in_batches(converted, test_set.inputs), test_set.labels
        )
        loader = DataLoader(train_set, batch_size=64, shuffle=True, seed=1)
        trainer = Trainer(
            converted, CrossEntropyLoss(),
            Adam(converted.parameters(), lr=0.001),
        )
        trainer.fit(loader, epochs=4)
        converted.eval()
        tuned_acc = accuracy(
            predict_in_batches(converted, test_set.inputs), test_set.labels
        )
        results[block] = (projected_acc, tuned_acc)
        lines.append(
            f"{block:6d} {report[0].relative_error:12.3f} "
            f"{100 * projected_acc:12.2f} {100 * tuned_acc:13.2f}"
        )
    write_result("conversion_ablation", lines)

    # Projection of a trained *unstructured* net is very lossy (~chance):
    # that is exactly why the paper trains block-circulant end to end (or
    # fine-tunes after projecting).
    for block, (projected_acc, tuned_acc) in results.items():
        assert projected_acc < dense_acc - 0.3, block
        # Fine-tuning recovers most of it.
        assert tuned_acc > projected_acc + 0.3, block
    # Milder compression recovers more accuracy.
    assert results[16][1] > results[64][1]
    # The mild-compression fine-tuned model lands near the dense baseline.
    assert results[16][1] > dense_acc - 0.12

    benchmark(conversion_report, dense, 64, (4,))
