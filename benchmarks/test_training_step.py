"""E9 — paper Algorithm 2: FFT-based training step vs dense backprop.

Times one forward + backward + SGD step of a block-circulant FC layer
against a dense FC layer of the same logical size, across sizes.  The
paper's claim is O(n log n) vs O(n^2) per update; the wall-clock crossover
appears once layers are large enough for arithmetic to dominate.
"""

import time

import numpy as np
import pytest

from .conftest import write_result
from repro.nn import SGD, BlockCirculantLinear, Linear, Tensor

SIZES = (256, 1024, 4096)


def _train_step_factory(layer, x, target):
    optimizer = SGD(layer.parameters(), lr=0.01)

    def step():
        optimizer.zero_grad()
        out = layer(Tensor(x))
        loss = ((out - Tensor(target)) ** 2).mean()
        loss.backward()
        optimizer.step()

    return step


def _best_of(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_training_step_comparison(benchmark):
    rng = np.random.default_rng(0)
    lines = [
        "E9 / Algorithm 2 — one training step: dense vs block-circulant",
        "",
        f"{'n':>6s} {'dense ms':>10s} {'BC ms':>10s} {'speedup':>9s} "
        f"{'params dense':>13s} {'params BC':>10s}",
    ]
    speedups = []
    for n in SIZES:
        x = rng.normal(size=(8, n))
        target = rng.normal(size=(8, n))
        dense = Linear(n, n, rng=rng)
        bc = BlockCirculantLinear(n, n, n // 4, rng=rng)
        dense_step = _train_step_factory(dense, x, target)
        bc_step = _train_step_factory(bc, x, target)
        dense_step()
        bc_step()
        t_dense = _best_of(dense_step)
        t_bc = _best_of(bc_step)
        speedups.append(t_dense / t_bc)
        lines.append(
            f"{n:6d} {t_dense * 1e3:10.2f} {t_bc * 1e3:10.2f} "
            f"{t_dense / t_bc:8.2f}x {n * n + n:13d} "
            f"{bc.weight.size + n:10d}"
        )
    write_result("training_step", lines)

    # At n = 4096 the FFT training path must win on wall-clock.
    assert speedups[-1] > 1.0

    layer = BlockCirculantLinear(1024, 1024, 256, rng=rng)
    x = rng.normal(size=(8, 1024))
    target = rng.normal(size=(8, 1024))
    benchmark(_train_step_factory(layer, x, target))


@pytest.mark.parametrize("n", SIZES)
def test_bench_bc_training_step(benchmark, n):
    rng = np.random.default_rng(0)
    layer = BlockCirculantLinear(n, n, n // 4, rng=rng)
    x = rng.normal(size=(8, n))
    target = rng.normal(size=(8, n))
    benchmark(_train_step_factory(layer, x, target))


@pytest.mark.parametrize("n", (256, 1024))
def test_bench_dense_training_step(benchmark, n):
    rng = np.random.default_rng(0)
    layer = Linear(n, n, rng=rng)
    x = rng.normal(size=(8, n))
    target = rng.normal(size=(8, n))
    benchmark(_train_step_factory(layer, x, target))
