"""E12 — ablation: pure Cooley-Tukey/Bluestein backend vs numpy backend.

The reproduction ships its own FFT kernels (the paper's computing kernel)
plus a numpy fast path.  This bench confirms bit-level-close parity and
quantifies the speed gap so users know what the ``pure`` backend costs.
"""

import time

import numpy as np
import pytest

from .conftest import write_result
from repro.fft import fft, rfft, use_backend

SIZES = (128, 121, 1024)  # power of two, Bluestein (11^2), large


def _best_of(fn, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_backend_parity_and_cost(benchmark):
    rng = np.random.default_rng(0)
    lines = [
        "E12 — FFT backend ablation: pure kernels vs numpy",
        "",
        f"{'n':>6s} {'numpy us':>10s} {'pure us':>10s} {'ratio':>7s} "
        f"{'max |diff|':>12s}",
    ]
    for n in SIZES:
        x = rng.normal(size=n) + 1j * rng.normal(size=n)
        with use_backend("numpy"):
            reference = fft(x)
            t_numpy = _best_of(lambda: fft(x))
        with use_backend("pure"):
            ours = fft(x)
            t_pure = _best_of(lambda: fft(x))
        error = np.abs(ours - reference).max()
        lines.append(
            f"{n:6d} {t_numpy * 1e6:10.2f} {t_pure * 1e6:10.2f} "
            f"{t_pure / t_numpy:6.1f}x {error:12.2e}"
        )
        assert error < 1e-9 * max(1.0, np.abs(reference).max())
    write_result("fft_backends", lines)

    x = rng.normal(size=1024) + 1j * rng.normal(size=1024)

    def run_pure():
        with use_backend("pure"):
            return fft(x)

    benchmark(run_pure)


@pytest.mark.parametrize("backend", ("numpy", "pure"))
@pytest.mark.parametrize("n", SIZES)
def test_bench_fft_backend(benchmark, backend, n):
    rng = np.random.default_rng(0)
    x = rng.normal(size=n) + 1j * rng.normal(size=n)

    def run():
        with use_backend(backend):
            return fft(x)

    benchmark(run)


@pytest.mark.parametrize("backend", ("numpy", "pure"))
def test_bench_rfft_block128(benchmark, backend):
    """The deployed kernel's hot call: rfft over a (p, q, 128) grid."""
    rng = np.random.default_rng(0)
    grid = rng.normal(size=(2, 2, 128))

    def run():
        with use_backend(backend):
            return rfft(grid)

    benchmark(run)
