"""E1 — paper Table I: platforms under test and their specifications.

Regenerates the table from the :data:`repro.embedded.PLATFORMS` registry
and benchmarks a full profiler construction to keep the registry honest
about cost.
"""

import numpy as np

from .conftest import write_result
from repro.embedded import PLATFORMS, InferenceProfiler
from repro.zoo import build_arch1

HEADERS = (
    "Platform",
    "Android",
    "Primary CPU",
    "Companion CPU",
    "CPU Arch",
    "GPU",
    "RAM (GB)",
)

#: Paper Table I, verbatim.
PAPER_TABLE1 = [
    ("LG Nexus 5", "6 (Marshmallow)", "4 x 2.3GHz Krait 400", "-",
     "ARMv7-A", "Adreno 330", "2"),
    ("Odroid XU3", "7 (Nougat)", "4 x 2.1GHz Cortex-A15",
     "4 x 1.5GHz Cortex-A7", "ARMv7-A", "Mali T628", "2"),
    ("Huawei Honor 6X", "7 (Nougat)", "4 x 2.1GHz Cortex-A53",
     "4 x 1.7GHz Cortex-A53", "ARMv8-A", "Mali T830", "3"),
]


def test_table1_platform_registry(benchmark):
    """Print Table I and verify the registry reproduces it exactly."""
    rows = [spec.table_row() for spec in PLATFORMS.values()]
    assert sorted(rows) == sorted(PAPER_TABLE1)

    widths = [max(len(str(r[i])) for r in rows + [HEADERS]) for i in range(7)]
    lines = ["E1 / Table I — platforms under test", ""]
    lines.append("  ".join(h.ljust(w) for h, w in zip(HEADERS, widths)))
    for row in rows:
        lines.append("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    write_result("table1_platforms", lines)

    model = build_arch1(rng=np.random.default_rng(0))
    benchmark(lambda: InferenceProfiler(model, (256,)).sweep())
