"""E6 — paper Fig. 2 / Eqn. 3: FFT circulant matvec vs dense matvec.

Measures the "FFT -> componentwise multiplication -> IFFT" product against
a dense BLAS matvec at matched sizes, reports the measured crossover, and
checks the theoretical op-count crossover from
:func:`repro.analysis.crossover_block_size`.
"""

import time

import numpy as np
import pytest

from .conftest import write_result
from repro.analysis import crossover_block_size, fc_speedup
from repro.structured import CirculantMatrix

SIZES = (64, 256, 1024, 4096)


def _best_of(fn, repeats=7):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_circulant_vs_dense_matvec(benchmark):
    rng = np.random.default_rng(0)
    lines = [
        "E6 / Eqn. 3 — circulant FFT matvec vs dense matvec",
        "",
        f"{'n':>6s} {'dense us':>10s} {'fft us':>10s} {'speedup':>9s} "
        f"{'theory ops ratio':>17s}",
    ]
    measured = []
    for n in SIZES:
        w = rng.normal(size=n)
        circulant = CirculantMatrix(w)
        dense = circulant.to_dense()
        x = rng.normal(size=n)
        circulant.matvec(x)  # warm
        dense @ x
        t_fft = _best_of(lambda: circulant.matvec(x))
        t_dense = _best_of(lambda: dense @ x)
        speedup = t_dense / t_fft
        measured.append(speedup)
        lines.append(
            f"{n:6d} {t_dense * 1e6:10.2f} {t_fft * 1e6:10.2f} "
            f"{speedup:8.2f}x {fc_speedup(n, n, n):16.1f}x"
        )
    theory_cross = crossover_block_size(512, 512)
    lines += ["", f"theoretical op-count crossover block size: {theory_cross}"]
    write_result("circulant_matvec", lines)

    # At n = 4096 the FFT path must win on wall-clock despite BLAS.
    assert measured[-1] > 1.0
    # And the trend must grow over the two largest sizes.
    assert measured[-1] > measured[-2] * 0.8

    circulant = CirculantMatrix(rng.normal(size=SIZES[-1]))
    x = rng.normal(size=SIZES[-1])
    benchmark(circulant.matvec, x)


@pytest.mark.parametrize("n", SIZES)
def test_bench_circulant_matvec(benchmark, n):
    rng = np.random.default_rng(0)
    circulant = CirculantMatrix(rng.normal(size=n))
    x = rng.normal(size=n)
    benchmark(circulant.matvec, x)


@pytest.mark.parametrize("n", SIZES)
def test_bench_dense_matvec(benchmark, n):
    rng = np.random.default_rng(0)
    dense = CirculantMatrix(rng.normal(size=n)).to_dense()
    x = rng.normal(size=n)
    benchmark(lambda: dense @ x)
