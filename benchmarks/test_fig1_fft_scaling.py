"""E5 — paper Fig. 1 / section III-B: FFT O(n log n) vs naive DFT O(n^2).

Times the package's own radix-2 Cooley-Tukey kernel against the dense
DFT-matrix reference across sizes and checks the paper's claim that the
advantage grows like ``n / log2(n)``.
"""

import time

import numpy as np
import pytest

from .conftest import write_result
from repro.fft import fft_radix2, naive_dft

SIZES = (64, 256, 1024, 4096)


def _time_callable(fn, *args, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - start)
    return best


def test_fft_vs_dft_scaling(benchmark):
    """Measure the speedup curve and confirm it grows with n."""
    rng = np.random.default_rng(0)
    lines = [
        "E5 / Fig. 1 — Cooley-Tukey FFT vs naive DFT (our kernels)",
        "",
        f"{'n':>6s} {'DFT ms':>10s} {'FFT ms':>10s} {'speedup':>9s} "
        f"{'n/log2(n)':>10s}",
    ]
    speedups = []
    for n in SIZES:
        x = rng.normal(size=n) + 1j * rng.normal(size=n)
        naive_dft(x)  # warm (builds the DFT matrix)
        fft_radix2(x)
        t_dft = _time_callable(naive_dft, x)
        t_fft = _time_callable(fft_radix2, x)
        speedup = t_dft / t_fft
        speedups.append(speedup)
        lines.append(
            f"{n:6d} {t_dft * 1e3:10.3f} {t_fft * 1e3:10.3f} "
            f"{speedup:8.1f}x {n / np.log2(n):10.1f}"
        )
    write_result("fig1_fft_scaling", lines)

    # The advantage must grow monotonically over the measured range and be
    # decisive at n = 4096 (paper: "reduced by a factor of n/log2 n").
    assert speedups[-1] > speedups[0]
    assert speedups[-1] > 10.0

    x = rng.normal(size=SIZES[-1]) + 1j * rng.normal(size=SIZES[-1])
    benchmark(fft_radix2, x)


@pytest.mark.parametrize("n", SIZES)
def test_bench_fft_radix2(benchmark, n):
    rng = np.random.default_rng(0)
    x = rng.normal(size=n) + 1j * rng.normal(size=n)
    benchmark(fft_radix2, x)


@pytest.mark.parametrize("n", (64, 256, 1024))
def test_bench_naive_dft(benchmark, n):
    rng = np.random.default_rng(0)
    x = rng.normal(size=n) + 1j * rng.normal(size=n)
    naive_dft(x)  # warm the cached DFT matrix
    benchmark(naive_dft, x)
