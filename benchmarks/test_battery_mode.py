"""E10 — paper section V-B battery note: Java +14%, C++ unchanged.

The paper observes that running on battery slows the Java implementation
by about 14% while the C++ implementation is unaffected.  This bench
regenerates the battery-mode predictions for both MNIST architectures on
all three devices.
"""

import numpy as np
import pytest

from .conftest import write_result
from repro.embedded import InferenceProfiler
from repro.zoo import ARCH1_INPUT_SIDE, ARCH2_INPUT_SIDE, build_arch1, build_arch2

PLATFORMS = ("nexus5", "xu3", "honor6x")


@pytest.fixture(scope="module")
def profilers():
    rng = np.random.default_rng(0)
    return {
        "Arch. 1": InferenceProfiler(build_arch1(rng=rng), (ARCH1_INPUT_SIDE**2,)),
        "Arch. 2": InferenceProfiler(build_arch2(rng=rng), (ARCH2_INPUT_SIDE**2,)),
    }


def test_battery_mode_shapes(profilers, benchmark):
    lines = [
        "E10 / section V-B — battery mode impact (us/image)",
        "",
        f"{'Arch':8s} {'Impl':5s} {'Platform':9s} {'plugged':>9s} "
        f"{'battery':>9s} {'delta':>7s}",
    ]
    for arch, profiler in profilers.items():
        for impl in ("java", "cpp"):
            for platform in PLATFORMS:
                plugged = profiler.runtime_us(platform, impl)
                battery = profiler.runtime_us(platform, impl, battery=True)
                delta = battery / plugged - 1.0
                lines.append(
                    f"{arch:8s} {impl:5s} {platform:9s} {plugged:9.1f} "
                    f"{battery:9.1f} {delta:+6.1%}"
                )
                if impl == "java":
                    assert delta == pytest.approx(0.14, abs=1e-9)
                else:
                    assert delta == pytest.approx(0.0, abs=1e-9)
    write_result("battery_mode", lines)

    profiler = profilers["Arch. 1"]
    benchmark(lambda: profiler.sweep(battery=True))
