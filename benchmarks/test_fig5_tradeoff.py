"""E4 — paper Fig. 5: accuracy-vs-performance comparison with TrueNorth.

Assembles the four scatter points (our method + IBM TrueNorth on MNIST
and CIFAR-10) using the best-device C++ runtimes from the Table II/III
simulations and the measured synthetic-data accuracies, and checks the
paper's headline ratios: ~10x faster than TrueNorth on MNIST, ~10x slower
on CIFAR-10.
"""

import numpy as np
import pytest

from .conftest import write_result
from repro.analysis import fig5_points, speedup_vs_truenorth
from repro.embedded import InferenceProfiler
from repro.zoo import ARCH1_INPUT_SIDE, build_arch3


@pytest.fixture(scope="module")
def our_points(trained_arch1, trained_arch3_reduced):
    model1, acc1 = trained_arch1
    _, acc3 = trained_arch3_reduced
    mnist_us = InferenceProfiler(model1, (ARCH1_INPUT_SIDE**2,)).runtime_us(
        "honor6x", "cpp"
    )
    cifar_us = InferenceProfiler(
        build_arch3(rng=np.random.default_rng(0)), (3, 32, 32)
    ).runtime_us("honor6x", "cpp")
    return (100.0 * acc1, mnist_us, 100.0 * acc3, cifar_us)


def test_fig5_points_and_ratios(our_points, benchmark):
    mnist_acc, mnist_us, cifar_acc, cifar_us = our_points
    points = benchmark(fig5_points, mnist_acc, mnist_us, cifar_acc, cifar_us)

    lines = [
        "E4 / Fig. 5 — performance vs accuracy (us/image, %)",
        "",
        f"{'System':15s} {'Dataset':9s} {'Runtime us':>11s} {'Acc %':>7s} {'Cores':>6s}",
    ]
    for point in points:
        lines.append(
            f"{point.system:15s} {point.dataset:9s} "
            f"{point.runtime_us_per_image:11.1f} "
            f"{point.accuracy_percent:7.2f} {point.cores:6d}"
        )
    mnist_speedup = speedup_vs_truenorth("MNIST", mnist_us)
    cifar_speedup = speedup_vs_truenorth("CIFAR-10", cifar_us)
    lines += [
        "",
        f"MNIST: ours vs TrueNorth speedup = {mnist_speedup:.1f}x "
        "(paper: ~10x faster)",
        f"CIFAR-10: ours vs TrueNorth speedup = {cifar_speedup:.2f}x "
        "(paper: ~10x slower, i.e. ~0.1x)",
    ]
    write_result("fig5_tradeoff", lines)

    assert len(points) == 4
    # Paper headline: ~10x faster on MNIST with a little accuracy drop.
    assert 5.0 < mnist_speedup < 20.0
    # Paper headline: ~10x slower on CIFAR-10.
    assert 0.05 < cifar_speedup < 0.2
    # Accuracy relationships of the scatter: TrueNorth slightly above us
    # on CIFAR-10, comparable on MNIST.
    by_key = {(p.system, p.dataset): p for p in points}
    assert (
        abs(
            by_key[("Our Method", "MNIST")].accuracy_percent
            - by_key[("IBM TrueNorth", "MNIST")].accuracy_percent
        )
        < 8.0
    )
