"""E15 — prime-size FFT kernels: Rader vs Bluestein (extension).

Arch. 2's 121-dimensional input (11x11) makes non-power-of-two transforms
relevant.  This bench compares the two prime-capable kernels this package
ships — Bluestein's chirp-z (the dispatcher default) and Rader's
primitive-root reindexing — for correctness-matched timing across prime
sizes.
"""

import time

import numpy as np
import pytest

from .conftest import write_result
from repro.fft import fft_bluestein, fft_rader

PRIMES = (11, 101, 257, 1009)


def _best_of(fn, *args, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - start)
    return best


def test_rader_vs_bluestein(benchmark):
    rng = np.random.default_rng(0)
    lines = [
        "E15 — prime-size FFT kernels: Rader vs Bluestein",
        "",
        f"{'p':>6s} {'Bluestein us':>13s} {'Rader us':>10s} {'max |diff|':>12s}",
    ]
    for p in PRIMES:
        x = rng.normal(size=p) + 1j * rng.normal(size=p)
        fft_rader(x)  # warm plans
        fft_bluestein(x)
        t_blue = _best_of(fft_bluestein, x)
        t_rader = _best_of(fft_rader, x)
        diff = np.abs(fft_rader(x) - fft_bluestein(x)).max()
        lines.append(
            f"{p:6d} {t_blue * 1e6:13.2f} {t_rader * 1e6:10.2f} {diff:12.2e}"
        )
        assert diff < 1e-9
    write_result("prime_kernels", lines)

    x = rng.normal(size=PRIMES[-1]) + 1j * rng.normal(size=PRIMES[-1])
    benchmark(fft_rader, x)


@pytest.mark.parametrize("p", (101, 1009))
@pytest.mark.parametrize("kernel", (fft_rader, fft_bluestein),
                         ids=("rader", "bluestein"))
def test_bench_prime_kernel(benchmark, kernel, p):
    rng = np.random.default_rng(0)
    x = rng.normal(size=p) + 1j * rng.normal(size=p)
    kernel(x)  # warm cached plans
    benchmark(kernel, x)
