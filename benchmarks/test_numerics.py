"""E13 — paper section III-B: FFT round-off error vs the direct DFT.

The paper claims computation time *and round-off error* are both reduced
by roughly ``n / log2(n)``.  This bench measures float64 relative errors
of this package's FFT kernels and the O(n^2) DFT-matrix evaluation
against an extended-precision reference.
"""

import numpy as np
import pytest

from .conftest import write_result
from repro.analysis import (
    dft_roundoff_error,
    fft_roundoff_error,
    matvec_roundoff_comparison,
)

SIZES = (64, 256, 1024, 4096)


def test_roundoff_error_table(benchmark):
    lines = [
        "E13 / section III-B — float64 round-off error vs extended precision",
        "",
        f"{'n':>6s} {'DFT err':>10s} {'FFT err':>10s} {'ratio':>8s} "
        f"{'n/log2 n':>9s}",
    ]
    ratios = []
    for n in SIZES:
        fft_err = fft_roundoff_error(n, np.random.default_rng(7))
        dft_err = dft_roundoff_error(n, np.random.default_rng(7))
        ratio = dft_err / fft_err
        ratios.append(ratio)
        lines.append(
            f"{n:6d} {dft_err:10.2e} {fft_err:10.2e} {ratio:7.0f}x "
            f"{n / np.log2(n):9.1f}"
        )
    lines += [
        "",
        "circulant matvec error (dense pairwise-sum product vs FFT path):",
        f"{'n':>6s} {'dense err':>10s} {'FFT err':>10s}",
    ]
    for n in (256, 4096):
        dense_err, fft_err = matvec_roundoff_comparison(
            n, np.random.default_rng(3)
        )
        lines.append(f"{n:6d} {dense_err:10.2e} {fft_err:10.2e}")
    write_result("numerics_roundoff", lines)

    # The error advantage must grow with n and be decisive at n = 4096.
    assert ratios[-1] > ratios[0]
    assert ratios[-1] > 100.0

    benchmark(fft_roundoff_error, 1024, np.random.default_rng(0))
