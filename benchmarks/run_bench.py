"""Perf-trajectory benchmark runner: times the frequency-domain engine.

Measures the hot paths this engine optimizes and writes a machine-readable
``BENCH_fdx.json`` so future PRs can compare against the recorded
trajectory:

* **inference_forward_cached** — repeated single-sample forwards of a
  ``BlockCirculantLinear`` with the version-keyed spectrum cache and the
  matmul contraction, against the seed behaviour (``rfft(weight)`` on
  every call + ``np.einsum``).  Acceptance floor: >= 5x.
* **train_step_matmul_vs_einsum** — batched forward+backward at
  ``(p, q, b) = (16, 16, 64)``, batch 64, matmul kernels vs the einsum
  reference.  Both sides re-transform the weights once per step, as
  training does.  Acceptance floor: >= 1.5x.
* **equivalence** — max abs deviation of every new kernel from its
  reference implementation (tolerance 1e-10).
* **zoo** — forward / forward+backward / frozen-session inference on the
  MNIST-FC (Arch. 1) and CIFAR-conv (reduced Arch. 3) configurations.
* **pure_backend** — the package's own FFT kernels vs ``numpy.fft`` at
  fp64 and fp32 (transform roundtrip + block-circulant forward), tracked
  release over release.
* **precision** — fp32 (complex64/float32) vs fp64 frozen-session speed
  and accuracy.
* **sharded_predict** — serial vs :class:`ThreadedExecutor` vs
  :class:`ShardedExecutor` predict throughput on a (64, 128)
  block-grid model, batch- and row-sharded; ``--workers`` is clamped
  to the visible CPU count (a pool on a single-core host can only
  lose; requested, host, and schedulable-core counts are recorded).
* **serving** — the asyncio micro-batching server end to end:
  throughput and mean latency at 1/8/32 concurrent clients, pipe vs
  shared-memory fork transport vs in-process threads, plus a parity
  check against the serial session.
* **engine** — the declarative :class:`~repro.engine.Engine` facade
  serving the same model through the same server: single-route
  throughput (facade overhead vs the ``serving`` section) and a
  mixed fp64/fp32 client population routed per-request across the
  per-precision session pool, with parity checks for both routes.
* **arena** — the allocation-free hot path: repeated-forward latency
  and allocation profile (tracemalloc peak bytes + live data blocks
  per forward) for the default arena+fused session vs the fresh-buffer
  unfused reference, plus served rows/s for both configurations, with
  bitwise parity checks throughout.
* **pipeline** — the declarative build pipeline end to end: a tiny
  synthetic-MNIST train -> compress -> 12-bit quantize -> package run,
  recording artifact size (v1 float vs v2 quantized), the quantization
  accuracy delta, and served rows/s for the quantized artifact through
  the engine (with bitwise parity vs a local session and the
  documented quantized-vs-float bound).

Run:  PYTHONPATH=src python benchmarks/run_bench.py [--out BENCH_fdx.json]
      (``--quick`` shrinks repeats/sizes for CI smoke runs)
"""

from __future__ import annotations

import argparse
import asyncio
import gc
import json
import os
import platform
import time
import tracemalloc
from pathlib import Path

import numpy as np

from repro.fft import irfft, rfft
from repro.fft.backend import use_backend
from repro.nn import BlockCirculantLinear, CrossEntropyLoss, Sequential
from repro.runtime import (
    InferenceSession,
    ShardedExecutor,
    ThreadedExecutor,
    effective_cpu_count,
)
from repro.structured import (
    block_circulant_backward_batch,
    block_circulant_backward_batch_einsum,
    block_circulant_forward_batch,
    block_circulant_forward_batch_einsum,
    blockify,
)
from repro.zoo import build_arch1, build_arch3_reduced

TOLERANCE = 1e-10


def _effective_cpus() -> int:
    """Schedulable cores (``sched_getaffinity``), not the host total.

    Every parallel section records this next to ``os.cpu_count()`` so a
    number taken inside a 1-core cgroup on a 64-core machine can't
    masquerade as a 64-core measurement.
    """
    return effective_cpu_count()


def best_of(fn, repeats: int, inner: int = 1) -> float:
    """Best wall-clock seconds for one call of ``fn`` over ``repeats`` trials."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(inner):
            fn()
        best = min(best, (time.perf_counter() - start) / inner)
    return best


# ----------------------------------------------------------------------
# Seed-behaviour baselines (pure numpy, no autograd overhead — which
# biases the comparison *against* the new layer path, keeping the
# reported speedups conservative)
# ----------------------------------------------------------------------
def seed_forward(weight: np.ndarray, x: np.ndarray, b: int,
                 bias: np.ndarray, out_features: int) -> np.ndarray:
    """The seed hot path: re-transform weights, einsum contraction."""
    x_blocks = blockify(x, b)
    spectra = rfft(weight)
    y = block_circulant_forward_batch_einsum(spectra, x_blocks)
    return y.reshape(x.shape[0], -1)[:, :out_features] + bias


def bench_inference_forward(repeats: int) -> dict:
    """Repeated-forward inference: frozen session (cached spectra in
    frequency-major layout, matmul contraction, fused bias) vs the seed
    behaviour (re-transform weights + einsum on every call)."""
    rng = np.random.default_rng(0)
    p, q, b = 32, 64, 128  # CIFAR-FC-layer scale: 8192 -> 4096
    layer = BlockCirculantLinear(q * b, p * b, b, rng=rng)
    layer.eval()
    x = rng.normal(size=(1, q * b))
    weight = layer.weight.data
    bias = layer.bias.data
    session = InferenceSession.freeze(Sequential(layer))

    new_out = session.forward(x)
    base_out = seed_forward(weight, x, b, bias, layer.out_features)
    max_err = float(np.abs(new_out - base_out).max())

    baseline_s = best_of(
        lambda: seed_forward(weight, x, b, bias, layer.out_features),
        repeats, inner=20,
    )
    new_s = best_of(lambda: session.forward(x), repeats, inner=20)
    layer_s = best_of(lambda: layer(x), repeats, inner=20)
    return {
        "config": {"p": p, "q": q, "b": b, "batch": 1},
        "baseline_us": baseline_s * 1e6,
        "new_us": new_s * 1e6,
        "layer_forward_us": layer_s * 1e6,
        "speedup": baseline_s / new_s,
        "layer_speedup": baseline_s / layer_s,
        "max_abs_err": max_err,
    }


def bench_train_step(repeats: int) -> dict:
    """Batched forward+backward kernels: matmul vs einsum reference."""
    rng = np.random.default_rng(1)
    p = q = 16
    b = 64
    batch = 64
    weight = rng.normal(size=(p, q, b))
    x_blocks = rng.normal(size=(batch, q, b))
    grad_blocks = rng.normal(size=(batch, p, b))

    def einsum_step():
        spectra = rfft(weight)
        y = block_circulant_forward_batch_einsum(spectra, x_blocks)
        gw, gx = block_circulant_backward_batch_einsum(
            spectra, x_blocks, grad_blocks
        )
        return y, gw, gx

    def matmul_step():
        spectra = rfft(weight)
        y = block_circulant_forward_batch(spectra, x_blocks)
        gw, gx = block_circulant_backward_batch(spectra, x_blocks, grad_blocks)
        return y, gw, gx

    ref = einsum_step()
    new = matmul_step()
    max_err = float(max(np.abs(a - c).max() for a, c in zip(new, ref)))

    einsum_s = best_of(einsum_step, repeats, inner=3)
    matmul_s = best_of(matmul_step, repeats, inner=3)
    return {
        "config": {"p": p, "q": q, "b": b, "batch": batch},
        "einsum_ms": einsum_s * 1e3,
        "matmul_ms": matmul_s * 1e3,
        "speedup": einsum_s / matmul_s,
        "max_abs_err": max_err,
    }


def check_equivalence() -> dict:
    """Max deviation of every new kernel from its reference, to 1e-10."""
    rng = np.random.default_rng(2)
    errs: dict[str, float] = {}

    # Contractions, ragged p != q.
    p, q, b, batch = 5, 7, 16, 9
    spectra = rfft(rng.normal(size=(p, q, b)))
    x_blocks = rng.normal(size=(batch, q, b))
    grad_blocks = rng.normal(size=(batch, p, b))
    errs["forward_matmul_vs_einsum"] = float(np.abs(
        block_circulant_forward_batch(spectra, x_blocks)
        - block_circulant_forward_batch_einsum(spectra, x_blocks)
    ).max())
    fast = block_circulant_backward_batch(spectra, x_blocks, grad_blocks)
    ref = block_circulant_backward_batch_einsum(spectra, x_blocks, grad_blocks)
    errs["backward_w_matmul_vs_einsum"] = float(np.abs(fast[0] - ref[0]).max())
    errs["backward_x_matmul_vs_einsum"] = float(np.abs(fast[1] - ref[1]).max())

    # Pure-backend packed real transforms vs numpy.fft.
    worst_r = 0.0
    for n in (8, 12, 64, 100, 128):
        x = rng.normal(size=(4, n))
        with use_backend("pure"):
            worst_r = max(worst_r, float(np.abs(rfft(x) - np.fft.rfft(x)).max()))
    errs["packed_rfft_vs_numpy"] = worst_r

    return {
        "errors": errs,
        "tolerance": TOLERANCE,
        "pass": all(err <= TOLERANCE for err in errs.values()),
    }


def bench_zoo(repeats: int) -> dict:
    """Forward / forward+backward / frozen inference on the model zoo."""
    results: dict[str, dict] = {}
    loss_fn = CrossEntropyLoss()
    configs = {
        "mnist_fc": (
            build_arch1(rng=np.random.default_rng(3)),
            np.random.default_rng(4).normal(size=(64, 256)),
        ),
        "cifar_conv": (
            build_arch3_reduced(width=12, block_size=4,
                                rng=np.random.default_rng(5)),
            np.random.default_rng(6).normal(size=(8, 3, 32, 32)),
        ),
    }
    for name, (model, x) in configs.items():
        labels = np.arange(x.shape[0]) % 10
        batch = x.shape[0]

        def forward():
            return model(x)

        def forward_backward():
            model.zero_grad()
            loss_fn(model(x), labels).backward()

        model.eval()
        session = InferenceSession.freeze(model)
        forward_s = best_of(forward, repeats)
        fb_s = best_of(forward_backward, repeats)
        infer_s = best_of(lambda: session.forward(x), repeats)
        results[name] = {
            "batch": batch,
            "forward_ms": forward_s * 1e3,
            "forward_backward_ms": fb_s * 1e3,
            "session_inference_ms": infer_s * 1e3,
            "session_us_per_image": infer_s / batch * 1e6,
        }
    return results


def bench_pure_backend(repeats: int, quick: bool = False) -> dict:
    """Pure FFT backend vs numpy.fft, fp64 and fp32 (ROADMAP open item)."""
    rng = np.random.default_rng(7)
    batch, n = (16, 64) if quick else (64, 128)
    p = q = 8 if quick else 16
    b = n
    x64 = rng.normal(size=(batch, n))
    x32 = x64.astype(np.float32)
    weight = rng.normal(size=(p, q, b))
    blocks64 = rng.normal(size=(8, q, b))
    results: dict[str, dict] = {"config": {"batch": batch, "n": n, "p": p, "q": q}}

    def roundtrip(x):
        return irfft(rfft(x), n=x.shape[-1])

    for name, x in (("fp64", x64), ("fp32", x32)):
        spectra = rfft(weight.astype(x.dtype))
        blocks = blocks64.astype(x.dtype)
        with use_backend("numpy"):
            numpy_rt = best_of(lambda: roundtrip(x), repeats, inner=5)
            numpy_fwd = best_of(
                lambda: block_circulant_forward_batch(spectra, blocks),
                repeats, inner=5,
            )
        with use_backend("pure"):
            pure_rt = best_of(lambda: roundtrip(x), repeats, inner=5)
            pure_fwd = best_of(
                lambda: block_circulant_forward_batch(spectra, blocks),
                repeats, inner=5,
            )
            pure_spectrum = rfft(x)
            pure_back = roundtrip(x)
        results[name] = {
            "rfft_irfft_numpy_us": numpy_rt * 1e6,
            "rfft_irfft_pure_us": pure_rt * 1e6,
            "bc_forward_numpy_us": numpy_fwd * 1e6,
            "bc_forward_pure_us": pure_fwd * 1e6,
            "pure_vs_numpy_slowdown": pure_rt / numpy_rt,
            "spectrum_dtype": str(pure_spectrum.dtype),
            "roundtrip_max_err": float(np.abs(pure_back - x).max()),
        }
    return results


def bench_precision(repeats: int, quick: bool = False) -> dict:
    """fp32 vs fp64 frozen-session inference: speed and accuracy."""
    rng = np.random.default_rng(8)
    p, q, b = (8, 16, 64) if quick else (32, 64, 128)
    batch = 16
    layer = BlockCirculantLinear(q * b, p * b, b, rng=rng)
    layer.eval()
    model = Sequential(layer)
    x = rng.normal(size=(batch, q * b))

    fp64 = InferenceSession.freeze(model)
    fp32 = InferenceSession.freeze(model, precision="fp32")
    out64 = fp64.forward(x)
    out32 = fp32.forward(x)
    assert out32.dtype == np.float32

    fp64_s = best_of(lambda: fp64.forward(x), repeats, inner=5)
    fp32_s = best_of(lambda: fp32.forward(x), repeats, inner=5)
    scale = float(np.abs(out64).max())
    return {
        "config": {"p": p, "q": q, "b": b, "batch": batch},
        "fp64_us": fp64_s * 1e6,
        "fp32_us": fp32_s * 1e6,
        "fp32_speedup": fp64_s / fp32_s,
        "max_abs_err": float(np.abs(out64 - out32).max()),
        "max_rel_err": float(np.abs(out64 - out32).max() / scale),
        "spectrum_bytes_fp64": 16 * p * q * (b // 2 + 1),
        "spectrum_bytes_fp32": 8 * p * q * (b // 2 + 1),
    }


def bench_sharded_predict(
    repeats: int, workers: int = 4, quick: bool = False
) -> dict:
    """Serial vs threaded vs fork-pool predict, (64, 128) block grid.

    Multi-process speedup needs physical cores, so the requested
    ``--workers`` is clamped to ``os.cpu_count()`` (a pool on a
    single-core host can only add IPC overhead — the 0.37x this section
    once recorded); the requested count, ``os.cpu_count()``, and the
    schedulable-core count all land in the report.  The threaded rows
    measure the same strategies with in-process thread fan-out (no
    pickling, no transport) — the fork-vs-thread comparison the
    executor selection guide in ``docs/performance.md`` is tuned by.
    """
    rng = np.random.default_rng(9)
    requested = workers
    cpus = os.cpu_count() or 1
    workers = max(1, min(requested, cpus))
    if quick:
        p, q, b, batch = 16, 32, 32, 24
        workers = min(workers, 2)
    else:
        p, q, b, batch = 64, 128, 64, 96
    layer = BlockCirculantLinear(q * b, p * b, b, rng=rng)
    layer.eval()
    model = Sequential(layer)
    x = rng.normal(size=(batch, q * b))
    chunk = max(1, batch // workers)

    serial = InferenceSession.freeze(model)
    sharded = InferenceSession.freeze(
        model, executor=ShardedExecutor(workers=workers, mode="batch")
    )
    rows = InferenceSession.freeze(
        model, executor=ShardedExecutor(workers=workers, mode="rows")
    )
    threaded = InferenceSession.freeze(
        model, executor=ThreadedExecutor(threads=workers, mode="batch")
    )
    threaded_rows = InferenceSession.freeze(
        model, executor=ThreadedExecutor(threads=workers, mode="rows")
    )
    try:
        identical = bool(
            np.array_equal(
                serial.predict(x, batch_size=chunk),
                sharded.predict(x, batch_size=chunk),
            )
        )
        rows_identical = bool(
            np.array_equal(serial.forward(x[:1]), rows.forward(x[:1]))
        )
        threaded_identical = bool(
            np.array_equal(
                serial.predict(x, batch_size=chunk),
                threaded.predict(x, batch_size=chunk),
            )
            and np.array_equal(
                serial.forward(x[:1]), threaded_rows.forward(x[:1])
            )
        )
        sharded.predict(x, batch_size=chunk)  # warm the pool before timing
        rows.forward(x[:1])
        threaded.predict(x, batch_size=chunk)
        threaded_rows.forward(x[:1])
        serial_s = best_of(lambda: serial.predict(x, batch_size=chunk), repeats)
        sharded_s = best_of(lambda: sharded.predict(x, batch_size=chunk), repeats)
        threaded_s = best_of(
            lambda: threaded.predict(x, batch_size=chunk), repeats
        )
        rows_serial_s = best_of(lambda: serial.forward(x[:1]), repeats, inner=3)
        rows_pool_s = best_of(lambda: rows.forward(x[:1]), repeats, inner=3)
        rows_threaded_s = best_of(
            lambda: threaded_rows.forward(x[:1]), repeats, inner=3
        )
    finally:
        sharded.close()
        rows.close()
        threaded.close()
        threaded_rows.close()
    return {
        "config": {"p": p, "q": q, "b": b, "batch": batch, "workers": workers},
        "workers_requested": requested,
        "cpus": os.cpu_count(),
        "effective_cpus": _effective_cpus(),
        "serial_predict_ms": serial_s * 1e3,
        "sharded_predict_ms": sharded_s * 1e3,
        "threaded_predict_ms": threaded_s * 1e3,
        "predict_speedup": serial_s / sharded_s,
        "threaded_predict_speedup": serial_s / threaded_s,
        "rows_serial_forward_ms": rows_serial_s * 1e3,
        "rows_pool_forward_ms": rows_pool_s * 1e3,
        "rows_threaded_forward_ms": rows_threaded_s * 1e3,
        "rows_forward_speedup": rows_serial_s / rows_pool_s,
        "rows_threaded_speedup": rows_serial_s / rows_threaded_s,
        "bitwise_identical": identical,
        "rows_bitwise_identical": rows_identical,
        "threaded_bitwise_identical": threaded_identical,
    }


def bench_serving(repeats: int, quick: bool = False) -> dict:
    """Micro-batching server throughput/latency: pipe vs shm vs threads.

    Each configuration starts an in-process asyncio server over a
    parallel session (2 workers, so the fan-out actually carries
    chunks) and fires N concurrent async clients; recorded per client
    count: fused-batch rows/s, mean request latency, and the worst
    deviation from the serial session (the parity the serving tests
    assert bitwise).  ``pipe``/``shm`` shard over a fork pool through
    the named transport; ``threaded`` runs the same shard closures on
    an in-process thread pool (no pickling, no transport).  On few-core
    hosts the absolute numbers measure dispatch overhead, not speedup —
    ``cpus``/``effective_cpus`` qualify them.
    """
    from repro.engine import Engine
    from repro.serving import AsyncServeClient, InferenceServer

    rng = np.random.default_rng(10)
    if quick:
        p, q, b = 8, 12, 32
        client_counts = (1, 4)
        requests_per_client, rows = 3, 4
    else:
        p, q, b = 16, 24, 64
        client_counts = (1, 8, 32)
        requests_per_client, rows = 6, 8
    layer = BlockCirculantLinear(q * b, p * b, b, rng=rng)
    layer.eval()
    model = Sequential(layer)
    serial = InferenceSession.freeze(model)
    workers = 2

    async def run_config(engine, n_clients: int) -> dict:
        server = InferenceServer(
            engine, port=0, max_batch=4 * rows, max_wait_ms=2.0
        )
        async with server:
            async def one_client(client_id: int):
                # Only the awaited request sits in the timed region; the
                # parity check against the serial session runs after the
                # gather, off the clock (a blocking predict inside the
                # loop would stall every other client's responses and
                # corrupt the recorded latency).
                c_rng = np.random.default_rng(100 + client_id)
                client = await AsyncServeClient.connect(port=server.port)
                latencies, exchanges = [], []
                try:
                    for _ in range(requests_per_client):
                        x = c_rng.normal(size=(rows, q * b))
                        start = time.perf_counter()
                        proba = await client.predict_proba(x)
                        latencies.append(time.perf_counter() - start)
                        exchanges.append((x, proba))
                finally:
                    await client.close()
                return latencies, exchanges

            start = time.perf_counter()
            outcomes = await asyncio.gather(
                *[one_client(i) for i in range(n_clients)]
            )
            wall = time.perf_counter() - start
        latencies = [lat for lats, _ in outcomes for lat in lats]
        worst = max(
            float(np.abs(proba - serial.predict_proba(x)).max())
            for _, exchanges in outcomes
            for x, proba in exchanges
        )
        total_rows = n_clients * requests_per_client * rows
        return {
            "clients": n_clients,
            "rows_per_s": total_rows / wall,
            "requests_per_s": len(latencies) / wall,
            "mean_latency_ms": 1e3 * sum(latencies) / len(latencies),
            "max_abs_err_vs_serial": worst,
        }

    results: dict = {
        "config": {
            "p": p, "q": q, "b": b, "rows_per_request": rows,
            "requests_per_client": requests_per_client,
            "pool_workers": workers,
        },
        "cpus": os.cpu_count(),
        "effective_cpus": _effective_cpus(),
    }
    for configuration in ("pipe", "shm", "threaded"):
        if configuration == "threaded":
            executor = ThreadedExecutor(threads=workers, mode="batch")
        else:
            executor = ShardedExecutor(
                workers=workers, mode="batch", transport=configuration
            )
        session = InferenceSession.freeze(model, executor=executor)
        # Adopt the explicitly-built sharded session through the
        # facade (the supported way to serve a pre-built session —
        # the session-to-server shim is deprecated).
        engine = Engine.from_session(session)
        rows_by_clients = {}
        try:
            for n_clients in client_counts:
                best = None
                for _ in range(max(1, repeats // 2)):
                    outcome = asyncio.run(run_config(engine, n_clients))
                    if best is None or (
                        outcome["rows_per_s"] > best["rows_per_s"]
                    ):
                        best = outcome
                rows_by_clients[str(n_clients)] = best
        finally:
            session.close()
        results[configuration] = rows_by_clients
    return results


def bench_engine(repeats: int, quick: bool = False) -> dict:
    """Engine facade serving: single-route and mixed-precision routing.

    Two configurations over the same block-circulant model:

    * ``single_route`` — every client hits the default fp64 route; the
      numbers are directly comparable to the ``serving`` section's
      serial-session path (the facade adds one dict lookup per fused
      batch, so rows/s should match within noise — the no-regression
      acceptance gate).
    * ``mixed_precision`` — half the clients request fp32 per-request;
      the server routes each to its pooled session (two batchers, one
      inference thread).  ``max_abs_err`` records fp64-route parity vs
      the serial session (bitwise -> 0.0) and the worst fp32 deviation
      (<= 1e-5).
    """
    from repro.engine import Engine
    from repro.serving import AsyncServeClient, InferenceServer

    rng = np.random.default_rng(11)
    if quick:
        p, q, b = 8, 12, 32
        client_counts = (1, 4)
        requests_per_client, rows = 3, 4
    else:
        p, q, b = 16, 24, 64
        client_counts = (1, 8, 32)
        requests_per_client, rows = 6, 8
    layer = BlockCirculantLinear(q * b, p * b, b, rng=rng)
    layer.eval()
    model = Sequential(layer)
    serial = InferenceSession.freeze(model)
    serial32 = InferenceSession.freeze(model, precision="fp32")

    async def run_config(engine, n_clients: int, mixed: bool) -> dict:
        server = InferenceServer(
            engine, port=0, max_batch=4 * rows, max_wait_ms=2.0
        )
        async with server:
            async def one_client(client_id: int):
                # Even client ids stay on the default fp64 route; odd
                # ones ask for fp32 per-request when `mixed`.  Parity
                # checks run after the gather, off the clock.
                precision = "fp32" if mixed and client_id % 2 else None
                c_rng = np.random.default_rng(200 + client_id)
                client = await AsyncServeClient.connect(port=server.port)
                latencies, exchanges = [], []
                try:
                    for _ in range(requests_per_client):
                        x = c_rng.normal(size=(rows, q * b))
                        start = time.perf_counter()
                        proba = await client.predict_proba(
                            x, precision=precision
                        )
                        latencies.append(time.perf_counter() - start)
                        exchanges.append((x, proba, precision))
                finally:
                    await client.close()
                return latencies, exchanges

            start = time.perf_counter()
            outcomes = await asyncio.gather(
                *[one_client(i) for i in range(n_clients)]
            )
            wall = time.perf_counter() - start
        latencies = [lat for lats, _ in outcomes for lat in lats]
        worst64 = worst32 = 0.0
        for _, exchanges in outcomes:
            for x, proba, precision in exchanges:
                if precision == "fp32":
                    reference = serial32.predict_proba(
                        x.astype(np.float32)
                    )
                    worst32 = max(
                        worst32, float(np.abs(proba - reference).max())
                    )
                else:
                    reference = serial.predict_proba(x)
                    worst64 = max(
                        worst64, float(np.abs(proba - reference).max())
                    )
        total_rows = n_clients * requests_per_client * rows
        return {
            "clients": n_clients,
            "rows_per_s": total_rows / wall,
            "requests_per_s": len(latencies) / wall,
            "mean_latency_ms": 1e3 * sum(latencies) / len(latencies),
            "max_abs_err_fp64_route": worst64,
            "max_abs_err_fp32_route": worst32,
        }

    results: dict = {
        "config": {
            "p": p, "q": q, "b": b, "rows_per_request": rows,
            "requests_per_client": requests_per_client,
        },
        "cpus": os.cpu_count(),
        "effective_cpus": _effective_cpus(),
    }
    for mode, mixed, precisions in (
        ("single_route", False, ("fp64",)),
        ("mixed_precision", True, ("fp64", "fp32")),
    ):
        engine = Engine(model=model, precisions=precisions)
        rows_by_clients = {}
        try:
            for n_clients in client_counts:
                best = None
                for _ in range(max(1, repeats // 2)):
                    outcome = asyncio.run(
                        run_config(engine, n_clients, mixed)
                    )
                    if best is None or (
                        outcome["rows_per_s"] > best["rows_per_s"]
                    ):
                        best = outcome
                rows_by_clients[str(n_clients)] = best
        finally:
            engine.close()
        results[mode] = rows_by_clients
    serial.close()
    serial32.close()
    return results


def bench_pipeline(repeats: int, quick: bool = False) -> dict:
    """Build pipeline end to end: sizes, accuracy delta, served rows/s.

    One declarative :class:`~repro.pipeline.PipelineConfig` trains a
    dense FC net on the synthetic MNIST stand-in, compresses it to
    block-circulant, quantizes to 12-bit fixed point, and packages the
    format-v2 artifact; the float twin is saved as a format-v1
    artifact for the size comparison.  The quantized artifact is then
    served through the engine with concurrent async clients —
    responses are checked bitwise against a local session and against
    the float model within the documented ``10 x max_weight_error``
    bound, off the timed path.
    """
    import tempfile

    from repro.embedded import DeployedModel
    from repro.engine import Engine
    from repro.pipeline import Pipeline, PipelineConfig
    from repro.serving import AsyncServeClient, InferenceServer

    if quick:
        train_size, test_size, epochs = 200, 50, 1
        n_clients, requests_per_client, rows = 4, 3, 4
    else:
        train_size, test_size, epochs = 600, 150, 3
        n_clients, requests_per_client, rows = 8, 6, 8
    quantize_bits = 12

    with tempfile.TemporaryDirectory() as tmp:
        artifact = Path(tmp) / "built.npz"
        config = PipelineConfig(
            architecture="121-64F-64F-10F",
            train_size=train_size,
            test_size=test_size,
            epochs=epochs,
            block_size=16,
            fine_tune_epochs=1,
            quantize_bits=quantize_bits,
            out=artifact,
        )
        pipeline = Pipeline(config)
        result = pipeline.run()

        float_deployed = DeployedModel.from_model(pipeline.model)
        float_path = Path(tmp) / "float_v1.npz"
        float_deployed.save(float_path, version=1)
        quantized = result.package.deployed
        bound = 10.0 * result.quantize.max_weight_error

        local = InferenceSession.from_deployed(quantized)

        async def run_serving() -> dict:
            engine = Engine(model=str(artifact))
            server = InferenceServer(
                engine, port=0, max_batch=4 * rows, max_wait_ms=2.0
            )
            try:
                async with server:
                    async def one_client(client_id: int):
                        c_rng = np.random.default_rng(300 + client_id)
                        client = await AsyncServeClient.connect(
                            port=server.port
                        )
                        exchanges = []
                        try:
                            for _ in range(requests_per_client):
                                x = c_rng.normal(size=(rows, 121))
                                proba = await client.predict_proba(x)
                                exchanges.append((x, proba))
                        finally:
                            await client.close()
                        return exchanges

                    start = time.perf_counter()
                    outcomes = await asyncio.gather(
                        *[one_client(i) for i in range(n_clients)]
                    )
                    wall = time.perf_counter() - start
            finally:
                engine.close()
            worst_session = worst_float = 0.0
            for exchanges in outcomes:
                for x, proba in exchanges:
                    worst_session = max(
                        worst_session,
                        float(np.abs(proba - local.predict_proba(x)).max()),
                    )
                    worst_float = max(
                        worst_float,
                        float(np.abs(
                            proba - float_deployed.predict_proba(x)
                        ).max()),
                    )
            total_rows = n_clients * requests_per_client * rows
            return {
                "rows_per_s": total_rows / wall,
                "max_abs_err_vs_session": worst_session,
                "max_abs_err_vs_float": worst_float,
            }

        best = None
        for _ in range(max(1, repeats // 2)):
            outcome = asyncio.run(run_serving())
            if best is None or outcome["rows_per_s"] > best["rows_per_s"]:
                best = outcome
        local.close()

        # File bytes include the .npz container; array bytes are the
        # weight payload alone (the honest compression number at this
        # tiny scale, where zip headers dominate the file size).
        v1_bytes = float_path.stat().st_size
        v2_bytes = artifact.stat().st_size
        v1_array_bytes = float_deployed.storage_bytes()
        v2_array_bytes = quantized.storage_bytes()
        return {
            "config": {
                "architecture": "121-64F-64F-10F",
                "train_size": train_size,
                "epochs": epochs,
                "block_size": 16,
                "quantize_bits": quantize_bits,
                "clients": n_clients,
                "rows_per_request": rows,
            },
            "cpus": os.cpu_count(),
            "effective_cpus": _effective_cpus(),
            "artifact_v1_float_bytes": int(v1_bytes),
            "artifact_v2_quantized_bytes": int(v2_bytes),
            "size_ratio": v1_bytes / v2_bytes,
            "array_v1_float_bytes": int(v1_array_bytes),
            "array_v2_quantized_bytes": int(v2_array_bytes),
            "array_size_ratio": v1_array_bytes / v2_array_bytes,
            "float_accuracy": result.quantize.float_accuracy,
            "quantized_accuracy": result.quantize.test_accuracy,
            "accuracy_delta": result.quantize.accuracy_delta,
            "max_weight_error": result.quantize.max_weight_error,
            "parity_bound": bound,
            "served": {
                **best,
                "parity_ok": bool(
                    best["max_abs_err_vs_session"] == 0.0
                    and best["max_abs_err_vs_float"] <= bound
                ),
            },
        }


def _alloc_profile(session: InferenceSession, x: np.ndarray) -> dict:
    """Allocation profile of one forward, measured off the clock.

    ``peak_kb_per_call``: tracemalloc peak traced bytes for one
    ``forward`` with tracing started *after* warm-up, so arena buffers
    (allocated at warm-up) are untracked and only per-call allocations
    count.  ``alloc_blocks_per_forward``: live data blocks >= 1 KiB
    after stepping the plan op by op while holding every op output —
    the fresh path allocates one result array per op, the arena path
    returns views of pre-traced workspace buffers.
    """
    session.forward(x)
    session.forward(x)  # warm: every arena slot exists before tracing
    gc.collect()
    tracemalloc.start()
    session.forward(x)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    executor = session.executor
    ws = (
        executor._workspace()
        if executor._arena_buckets is not None
        else None
    )
    y0 = np.asarray(x, dtype=session.policy.real_dtype)
    gc.collect()
    tracemalloc.start()
    held, y = [], y0
    for op in session.ops:
        y = op.run(y, ws) if ws is not None else op(y)
        held.append(y)
    snapshot = tracemalloc.take_snapshot()
    blocks = sum(1 for trace in snapshot.traces if trace.size >= 1024)
    tracemalloc.stop()
    return {
        "peak_kb_per_call": peak / 1024,
        "alloc_blocks_per_forward": blocks,
    }


def bench_arena(repeats: int, quick: bool = False) -> dict:
    """Arena + fusion A/B: repeated forward, allocations, served rows/s.

    Compares three sessions over the MNIST-FC (Arch. 1) model:

    * ``fresh`` — ``arena=False, fuse=False``: the pre-arena reference
      path (fresh buffers every call, unfused plan),
    * ``fused_only`` — ``arena=False``: the fuse_plan pass alone,
    * ``arena_fused`` — the default: fused plan + workspace arena.

    Timing runs *without* tracemalloc (tracing slows every allocation);
    the allocation profile is measured separately.  All comparisons
    assert bitwise parity — the speedup must come from allocator and
    dispatch savings, never from different arithmetic.
    """
    from repro.engine import Engine
    from repro.serving import AsyncServeClient, InferenceServer

    model = build_arch1(rng=np.random.default_rng(0)).eval()
    rng = np.random.default_rng(5)
    batches = (1, 32) if quick else (1, 8, 32, 37)
    inner = 20 if quick else 50

    fresh = InferenceSession.freeze(model, arena=False, fuse=False)
    fused_only = InferenceSession.freeze(model, arena=False)
    arena_fused = InferenceSession.freeze(model)

    forward: dict = {}
    for batch in batches:
        x = rng.normal(size=(batch, 256))
        for session in (fresh, fused_only, arena_fused):
            session.forward(x)  # warm caches and arena slots
        # Interleave the three variants inside every round so background
        # load hits all of them equally; best-of then drops the noisy
        # rounds for each variant independently.
        fresh_s = fused_s = arena_s = float("inf")
        for _ in range(max(repeats, 3)):
            fresh_s = min(
                fresh_s, best_of(lambda: fresh.forward(x), 1, inner=inner)
            )
            fused_s = min(
                fused_s, best_of(lambda: fused_only.forward(x), 1, inner=inner)
            )
            arena_s = min(
                arena_s, best_of(lambda: arena_fused.forward(x), 1, inner=inner)
            )
        reference = fresh.forward(x)
        forward[str(batch)] = {
            "fresh_us": 1e6 * fresh_s,
            "fused_only_us": 1e6 * fused_s,
            "arena_fused_us": 1e6 * arena_s,
            "speedup": fresh_s / arena_s,
            "fused_only_speedup": fresh_s / fused_s,
            "bitwise_identical": bool(
                np.array_equal(arena_fused.forward(x), reference)
                and np.array_equal(fused_only.forward(x), reference)
            ),
        }

    x_alloc = rng.normal(size=(32, 256))
    allocations = {
        "batch": 32,
        "fresh": _alloc_profile(fresh, x_alloc),
        "arena_fused": _alloc_profile(arena_fused, x_alloc),
    }

    # Served rows/s A/B: the same engine/server stack, arena on vs off.
    n_clients = 2 if quick else 4
    requests_per_client = 3 if quick else 6
    rows = 16

    async def run_served(engine) -> dict:
        server = InferenceServer(
            engine, port=0, max_batch=4 * rows, max_wait_ms=1.0
        )
        async with server:
            async def one_client(client_id: int):
                c_rng = np.random.default_rng(300 + client_id)
                client = await AsyncServeClient.connect(port=server.port)
                exchanges = []
                try:
                    for _ in range(requests_per_client):
                        x = c_rng.normal(size=(rows, 256))
                        proba = await client.predict_proba(x)
                        exchanges.append((x, proba))
                finally:
                    await client.close()
                return exchanges

            start = time.perf_counter()
            outcomes = await asyncio.gather(
                *[one_client(i) for i in range(n_clients)]
            )
            wall = time.perf_counter() - start
        worst = 0.0
        for exchanges in outcomes:
            for x, proba in exchanges:
                reference = fresh.predict_proba(x)
                worst = max(worst, float(np.abs(proba - reference).max()))
        total_rows = n_clients * requests_per_client * rows
        return {
            "rows_per_s": total_rows / wall,
            "max_abs_err_vs_fresh": worst,
        }

    served: dict = {"clients": n_clients, "rows_per_request": rows}
    for label, config in (
        ("fresh", dict(arena=False, fuse=False)),
        ("arena_fused", {}),
    ):
        engine = Engine(model=model, **config)
        best = None
        try:
            for _ in range(max(1, repeats // 2)):
                outcome = asyncio.run(run_served(engine))
                if best is None or (
                    outcome["rows_per_s"] > best["rows_per_s"]
                ):
                    best = outcome
        finally:
            engine.close()
        served[label] = best
    served["speedup"] = (
        served["arena_fused"]["rows_per_s"] / served["fresh"]["rows_per_s"]
    )

    # Fused-plan evidence for the CI smoke assertion: arch1 carries
    # activation fusion; the conv zoo model additionally folds its
    # flatten into the preceding pool.
    conv_session = InferenceSession.freeze(
        build_arch3_reduced(rng=np.random.default_rng(0)).eval()
    )
    result = {
        "plan": arena_fused.describe(),
        "conv_plan": conv_session.describe(),
        "arena_info": arena_fused.executor.arena_info(),
        "forward": forward,
        "allocations": allocations,
        "served": served,
    }
    fresh.close()
    fused_only.close()
    arena_fused.close()
    conv_session.close()
    return result


def bench_resilience(repeats: int, quick: bool = False) -> dict:
    """Fault-tolerance cost: throughput under worker faults, shed rate.

    Two measurements (see ``docs/robustness.md``):

    * ``worker_faults`` — the same sharded predict loop run clean and
      with ~10% of calls hit by an injected ``worker.kill``.  The first
      fault costs a pool respawn + retry; a second degrades the
      executor to serial.  Either way every result stays bitwise-equal
      to the serial session — the recorded ratio is the throughput
      price of surviving.
    * ``over_admission`` — an admission-bounded server
      (``max_queue_rows`` = one fused batch) offered 2x its capacity by
      fail-fast (``retries=0``) clients; records the shed rate and that
      every non-shed response kept bitwise parity.
    """
    import warnings

    from repro.engine import Engine
    from repro.exceptions import Overloaded
    from repro.serving import AsyncServeClient, InferenceServer
    from repro.testing import faults

    rng = np.random.default_rng(11)
    if quick:
        p, q, b = 8, 12, 32
        calls, rows = 6, 32
    else:
        p, q, b = 16, 24, 64
        calls, rows = 12, 64
    chunk = rows // 4  # 4 pooled chunks per call
    layer = BlockCirculantLinear(q * b, p * b, b, rng=rng)
    layer.eval()
    model = Sequential(layer)
    serial = InferenceSession.freeze(model)
    x = rng.normal(size=(rows, q * b))
    ref = serial.predict_proba(x)

    def run_calls(kill_times: int | None) -> dict:
        faults.reset()
        if kill_times:
            faults.arm("worker.kill", times=kill_times)
        executor = ShardedExecutor(workers=2, mode="batch",
                                   task_timeout=30.0)
        session = InferenceSession.freeze(model, executor=executor)
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                session.warm_up()
                start = time.perf_counter()
                bitwise = all(
                    np.array_equal(
                        session.predict_proba(x, batch_size=chunk), ref
                    )
                    for _ in range(calls)
                )
                wall = time.perf_counter() - start
            return {
                "rows_per_s": calls * rows / wall,
                "bitwise_identical": bitwise,
                "fault_stats": dict(executor.fault_stats),
            }
        finally:
            session.close()
            faults.reset()

    fault_budget = max(1, calls // 10)
    clean = faulted = None
    for _ in range(max(1, repeats // 2)):
        c = run_calls(None)
        f = run_calls(fault_budget)
        if clean is None or c["rows_per_s"] > clean["rows_per_s"]:
            clean = c
        if faulted is None or f["rows_per_s"] > faulted["rows_per_s"]:
            faulted = f

    async def over_admit() -> dict:
        per_req = max(1, rows // 2)
        concurrent = 4  # 4 x (rows/2) = 2x the queue budget
        waves = 3 if quick else 6
        shed = served = 0
        parity = True
        with Engine(model=model, max_queue_rows=rows) as engine:
            server = InferenceServer(
                engine, port=0, max_batch=rows, max_wait_ms=1.0
            )
            async with server:
                async def one() -> None:
                    nonlocal shed, served, parity
                    client = await AsyncServeClient.connect(
                        port=server.port, retries=0
                    )
                    try:
                        out = await client.predict_proba(x[:per_req])
                    except Overloaded:
                        shed += 1
                    else:
                        served += 1
                        parity &= bool(np.array_equal(out, ref[:per_req]))
                    finally:
                        await client.close()

                for _ in range(waves):
                    await asyncio.gather(*[one() for _ in range(concurrent)])
        total = shed + served
        return {
            "offered": total,
            "served": served,
            "shed": shed,
            "shed_rate": shed / total if total else 0.0,
            "served_bitwise_identical": parity,
        }

    return {
        "config": {
            "p": p, "q": q, "b": b, "rows": rows, "calls": calls,
            "batch_size": chunk, "kill_budget": fault_budget,
            "pool_workers": 2,
        },
        "cpus": os.cpu_count(),
        "effective_cpus": _effective_cpus(),
        "worker_faults": {
            "clean": clean,
            "faulted": faulted,
            "throughput_ratio": (
                faulted["rows_per_s"] / clean["rows_per_s"]
                if clean["rows_per_s"] else 0.0
            ),
        },
        "over_admission": asyncio.run(over_admit()),
    }


def bench_router(repeats: int, quick: bool = False) -> dict:
    """Front-tier routing cost: rows/s through 1 vs 2 local backends.

    The same engine/server stack measured twice behind a
    :class:`~repro.router.RouterServer` — once fronting a single
    backend (the pure indirection cost vs ``serving``'s direct
    numbers) and once fronting two (what least-loaded-of-two placement
    buys when cores allow; on a single effective CPU the two backends
    just time-slice).  Every response is checked bitwise against the
    serial session: the router forwards payloads as opaque bytes, so
    parity must be exact at any concurrency.
    """
    from contextlib import AsyncExitStack

    from repro.engine import Engine
    from repro.router import RouterConfig, RouterServer
    from repro.serving import AsyncServeClient, InferenceServer

    rng = np.random.default_rng(23)
    p, q, b = (8, 12, 32) if quick else (16, 24, 64)
    layer = BlockCirculantLinear(q * b, p * b, b, rng=rng)
    layer.eval()
    model = Sequential(layer)
    serial = InferenceSession.freeze(model)
    rows = 8
    requests_per_client = 2 if quick else 4
    client_counts = (1, 4) if quick else (1, 8, 32)

    async def run_fleet(n_backends: int, n_clients: int) -> dict:
        engines = [Engine(model=model) for _ in range(n_backends)]
        try:
            async with AsyncExitStack() as stack:
                servers = []
                for engine in engines:
                    server = InferenceServer(engine, port=0, max_wait_ms=1.0)
                    await stack.enter_async_context(server)
                    servers.append(server)
                router = RouterServer(RouterConfig(
                    backends=tuple(
                        f"127.0.0.1:{s.port}" for s in servers
                    ),
                    probe_interval_s=0.2,
                ))
                await stack.enter_async_context(router)
                parity = True

                async def one_client(client_id: int) -> None:
                    nonlocal parity
                    c_rng = np.random.default_rng(400 + client_id)
                    client = await AsyncServeClient.connect(
                        "127.0.0.1", router.port
                    )
                    try:
                        for _ in range(requests_per_client):
                            x = c_rng.normal(size=(rows, q * b))
                            proba = await client.predict_proba(x)
                            parity &= bool(np.array_equal(
                                proba, serial.predict_proba(x)
                            ))
                    finally:
                        await client.close()

                start = time.perf_counter()
                await asyncio.gather(
                    *[one_client(i) for i in range(n_clients)]
                )
                wall = time.perf_counter() - start
                forwards = router.stats["forwards"]
            total_rows = n_clients * requests_per_client * rows
            return {
                "rows_per_s": total_rows / wall,
                "bitwise_identical": parity,
                "forwards": forwards,
            }
        finally:
            for engine in engines:
                engine.close()

    fleets: dict = {}
    for n_backends in (1, 2):
        per_clients: dict = {}
        for n_clients in client_counts:
            best = None
            for _ in range(max(1, repeats // 2)):
                outcome = asyncio.run(run_fleet(n_backends, n_clients))
                if best is None or (
                    outcome["rows_per_s"] > best["rows_per_s"]
                ):
                    best = outcome
            per_clients[str(n_clients)] = best
        fleets[f"backends_{n_backends}"] = per_clients

    return {
        "config": {
            "p": p, "q": q, "b": b, "rows": rows,
            "requests_per_client": requests_per_client,
            "client_counts": list(client_counts),
        },
        "cpus": os.cpu_count(),
        "effective_cpus": _effective_cpus(),
        **fleets,
        "two_backend_speedup": {
            clients: (
                fleets["backends_2"][clients]["rows_per_s"]
                / fleets["backends_1"][clients]["rows_per_s"]
            )
            for clients in fleets["backends_1"]
        },
    }


def bench_streaming(repeats: int, quick: bool = False) -> dict:
    """Streaming serving: per-push latency + fused multi-stream throughput.

    N concurrent clients each hold one open stream against an
    in-process :class:`InferenceServer` and push ragged chunks of a
    causal FFTNet sequence; the micro-batcher fuses concurrent pushes
    into shared ``push_many`` steps.  Reported per stream count: push
    latency p50/p99, fused rows/s, the fused-streams high-water mark,
    and a bitwise parity flag — each stream's concatenated incremental
    rows vs the offline batch session (the `docs/streaming.md`
    contract; any drift is a FAIL, not a tolerance).
    """
    from repro.engine import Engine, EngineConfig
    from repro.serving import AsyncServeClient, InferenceServer
    from repro.zoo import build_fftnet

    model = build_fftnet(
        channels=8, depth=3, classes=6, rng=np.random.default_rng(29)
    )
    offline = InferenceSession.freeze(model)
    stream_counts = (1, 8) if quick else (1, 8, 32)
    pushes = 4 if quick else 16
    chunk_rows = 4

    async def run_streams(n_streams: int) -> dict:
        engine = Engine(config=EngineConfig(
            models={"fftnet": model},
            default_model="fftnet",
            max_streams=max(stream_counts) + 1,
        ))
        try:
            async with InferenceServer(
                engine, port=0, max_wait_ms=1.0
            ) as server:
                parity = True
                latencies: list[float] = []

                async def one_stream(stream_id: int) -> None:
                    nonlocal parity
                    s_rng = np.random.default_rng(500 + stream_id)
                    total = pushes * chunk_rows
                    full = s_rng.normal(size=(total, 1))
                    client = await AsyncServeClient.connect(
                        "127.0.0.1", server.port
                    )
                    outs = []
                    try:
                        async with await client.stream() as stream:
                            for k in range(pushes):
                                chunk = full[
                                    k * chunk_rows : (k + 1) * chunk_rows
                                ]
                                start = time.perf_counter()
                                outs.append(await stream.push(chunk))
                                latencies.append(
                                    time.perf_counter() - start
                                )
                    finally:
                        await client.close()
                    expected = offline.predict_proba(full[None])[0]
                    parity &= bool(np.array_equal(
                        np.concatenate(outs), expected
                    ))

                start = time.perf_counter()
                await asyncio.gather(
                    *[one_stream(i) for i in range(n_streams)]
                )
                wall = time.perf_counter() - start
                fused_max = max(
                    b.stats["fused_streams_max"]
                    for b in server._batchers.values()
                )
            ordered = sorted(latencies)
            return {
                "rows_per_s": n_streams * pushes * chunk_rows / wall,
                "push_p50_ms": 1e3 * ordered[len(ordered) // 2],
                "push_p99_ms": 1e3 * ordered[
                    min(len(ordered) - 1, int(len(ordered) * 0.99))
                ],
                "fused_streams_max": fused_max,
                "bitwise_identical": parity,
            }
        finally:
            engine.close()

    per_count: dict = {}
    for n_streams in stream_counts:
        best = None
        for _ in range(max(1, repeats // 2)):
            outcome = asyncio.run(run_streams(n_streams))
            if best is None or outcome["rows_per_s"] > best["rows_per_s"]:
                best = outcome
        per_count[str(n_streams)] = best

    return {
        "config": {
            "arch": "fftnet(channels=8, depth=3, classes=6)",
            "pushes": pushes,
            "chunk_rows": chunk_rows,
            "stream_counts": list(stream_counts),
        },
        "cpus": os.cpu_count(),
        "effective_cpus": _effective_cpus(),
        "streams": per_count,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default=str(Path(__file__).parent.parent / "BENCH_fdx.json"),
        help="output JSON path (default: repo-root BENCH_fdx.json)",
    )
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument(
        "--quick", action="store_true",
        help="small sizes / few repeats for CI smoke runs",
    )
    parser.add_argument(
        "--workers", type=int, default=4,
        help="pool size for the sharded-predict benchmark",
    )
    args = parser.parse_args(argv)
    repeats = 2 if args.quick else args.repeats

    report = {
        "meta": {
            "numpy": np.__version__,
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpus": os.cpu_count(),
            "effective_cpus": _effective_cpus(),
            "quick": args.quick,
        },
        "inference_forward_cached": bench_inference_forward(repeats),
        "train_step_matmul_vs_einsum": bench_train_step(repeats),
        "equivalence": check_equivalence(),
        "zoo": bench_zoo(repeats),
        "pure_backend": bench_pure_backend(repeats, quick=args.quick),
        "precision": bench_precision(repeats, quick=args.quick),
        "sharded_predict": bench_sharded_predict(
            repeats, workers=args.workers, quick=args.quick
        ),
        "serving": bench_serving(repeats, quick=args.quick),
        "engine": bench_engine(repeats, quick=args.quick),
        "arena": bench_arena(repeats, quick=args.quick),
        "pipeline": bench_pipeline(repeats, quick=args.quick),
        "resilience": bench_resilience(repeats, quick=args.quick),
        "router": bench_router(repeats, quick=args.quick),
        "streaming": bench_streaming(repeats, quick=args.quick),
    }

    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    inf = report["inference_forward_cached"]
    train = report["train_step_matmul_vs_einsum"]
    print(f"inference forward (cached): {inf['speedup']:.1f}x "
          f"({inf['baseline_us']:.0f} -> {inf['new_us']:.0f} us)")
    print(f"train step (matmul vs einsum): {train['speedup']:.1f}x "
          f"({train['einsum_ms']:.2f} -> {train['matmul_ms']:.2f} ms)")
    print(f"kernel equivalence <= {TOLERANCE:g}: "
          f"{'PASS' if report['equivalence']['pass'] else 'FAIL'}")
    for name, row in report["zoo"].items():
        print(f"{name}: fwd {row['forward_ms']:.1f} ms, "
              f"fwd+bwd {row['forward_backward_ms']:.1f} ms, "
              f"frozen inference {row['session_us_per_image']:.0f} us/image")
    pure = report["pure_backend"]
    for prec in ("fp64", "fp32"):
        row = pure[prec]
        print(f"pure backend ({prec}): rfft+irfft "
              f"{row['rfft_irfft_pure_us']:.0f} us vs numpy "
              f"{row['rfft_irfft_numpy_us']:.0f} us "
              f"({row['pure_vs_numpy_slowdown']:.1f}x slower), "
              f"roundtrip err {row['roundtrip_max_err']:.2g}")
    prec = report["precision"]
    print(f"fp32 session: {prec['fp32_speedup']:.2f}x vs fp64 "
          f"({prec['fp64_us']:.0f} -> {prec['fp32_us']:.0f} us), "
          f"max abs err {prec['max_abs_err']:.2g}, "
          f"spectrum bytes halved "
          f"{prec['spectrum_bytes_fp64']} -> {prec['spectrum_bytes_fp32']}")
    shard = report["sharded_predict"]
    print(f"sharded predict ({shard['config']['workers']} workers "
          f"of {shard['workers_requested']} requested, "
          f"{shard['effective_cpus']}/{shard['cpus']} cpu(s)): "
          f"fork {shard['predict_speedup']:.2f}x batch / "
          f"{shard['rows_forward_speedup']:.2f}x rows, "
          f"threaded {shard['threaded_predict_speedup']:.2f}x batch / "
          f"{shard['rows_threaded_speedup']:.2f}x rows, "
          f"bitwise identical: {shard['bitwise_identical']} "
          f"(threaded: {shard['threaded_bitwise_identical']})")
    serving = report["serving"]
    for transport in ("pipe", "shm", "threaded"):
        rows = serving[transport]
        summary = ", ".join(
            f"{n} client(s): {row['rows_per_s']:.0f} rows/s "
            f"@ {row['mean_latency_ms']:.1f} ms"
            for n, row in rows.items()
        )
        worst = max(row["max_abs_err_vs_serial"] for row in rows.values())
        print(f"serving ({transport}): {summary}; "
              f"max err vs serial {worst:.2g}")
    eng = report["engine"]
    for mode in ("single_route", "mixed_precision"):
        rows = eng[mode]
        summary = ", ".join(
            f"{n} client(s): {row['rows_per_s']:.0f} rows/s "
            f"@ {row['mean_latency_ms']:.1f} ms"
            for n, row in rows.items()
        )
        worst64 = max(r["max_abs_err_fp64_route"] for r in rows.values())
        worst32 = max(r["max_abs_err_fp32_route"] for r in rows.values())
        print(f"engine ({mode}): {summary}; fp64 err {worst64:.2g}, "
              f"fp32 err {worst32:.2g}")
    arena = report["arena"]
    for batch, row in arena["forward"].items():
        print(f"arena (batch {batch}): {row['speedup']:.2f}x vs fresh "
              f"({row['fresh_us']:.0f} -> {row['arena_fused_us']:.0f} us, "
              f"fusion alone {row['fused_only_speedup']:.2f}x), "
              f"bitwise {'OK' if row['bitwise_identical'] else 'FAIL'}")
    alloc = arena["allocations"]
    print(f"arena allocations (batch {alloc['batch']}): peak "
          f"{alloc['fresh']['peak_kb_per_call']:.0f} -> "
          f"{alloc['arena_fused']['peak_kb_per_call']:.0f} KiB/call, "
          f"blocks {alloc['fresh']['alloc_blocks_per_forward']} -> "
          f"{alloc['arena_fused']['alloc_blocks_per_forward']} per forward")
    served_ab = arena["served"]
    print(f"arena served ({served_ab['clients']} clients): "
          f"{served_ab['fresh']['rows_per_s']:.0f} -> "
          f"{served_ab['arena_fused']['rows_per_s']:.0f} rows/s "
          f"({served_ab['speedup']:.2f}x)")
    pipe_line = report["pipeline"]
    print(f"pipeline: v1 float {pipe_line['artifact_v1_float_bytes']} B -> "
          f"v2 quantized {pipe_line['artifact_v2_quantized_bytes']} B "
          f"({pipe_line['size_ratio']:.2f}x file, "
          f"{pipe_line['array_size_ratio']:.2f}x arrays), "
          f"accuracy {pipe_line['float_accuracy']:.3f} -> "
          f"{pipe_line['quantized_accuracy']:.3f} "
          f"(delta {pipe_line['accuracy_delta']:+.3f}), "
          f"served {pipe_line['served']['rows_per_s']:.0f} rows/s, "
          f"parity {'OK' if pipe_line['served']['parity_ok'] else 'FAIL'}")
    res = report["resilience"]
    wf = res["worker_faults"]
    oa = res["over_admission"]
    print(f"resilience: {wf['clean']['rows_per_s']:.0f} rows/s clean -> "
          f"{wf['faulted']['rows_per_s']:.0f} rows/s under worker.kill "
          f"({wf['throughput_ratio']:.2f}x, "
          f"bitwise {'OK' if wf['faulted']['bitwise_identical'] else 'FAIL'}); "
          f"2x over-admission: {oa['shed']}/{oa['offered']} shed "
          f"({oa['shed_rate']:.0%}), served parity "
          f"{'OK' if oa['served_bitwise_identical'] else 'FAIL'}")
    rtr = report["router"]
    for fleet in ("backends_1", "backends_2"):
        cells = rtr[fleet]
        summary = ", ".join(
            f"{n} client(s): {row['rows_per_s']:.0f} rows/s"
            for n, row in cells.items()
        )
        parity = all(row["bitwise_identical"] for row in cells.values())
        print(f"router ({fleet.replace('_', ' ')}, "
              f"{rtr['effective_cpus']}/{rtr['cpus']} cpu(s)): {summary}; "
              f"bitwise {'OK' if parity else 'FAIL'}")
    strm = report["streaming"]
    stream_cells = strm["streams"]
    stream_summary = ", ".join(
        f"{n} stream(s): {row['rows_per_s']:.0f} rows/s "
        f"(push p50 {row['push_p50_ms']:.1f}/p99 {row['push_p99_ms']:.1f} ms, "
        f"fused<={row['fused_streams_max']})"
        for n, row in stream_cells.items()
    )
    stream_parity = all(
        row["bitwise_identical"] for row in stream_cells.values()
    )
    print(f"streaming ({strm['effective_cpus']}/{strm['cpus']} cpu(s)): "
          f"{stream_summary}; incremental-vs-batch bitwise "
          f"{'OK' if stream_parity else 'FAIL'}")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
