"""Perf-trajectory benchmark runner: times the frequency-domain engine.

Measures the hot paths this engine optimizes and writes a machine-readable
``BENCH_fdx.json`` so future PRs can compare against the recorded
trajectory:

* **inference_forward_cached** — repeated single-sample forwards of a
  ``BlockCirculantLinear`` with the version-keyed spectrum cache and the
  matmul contraction, against the seed behaviour (``rfft(weight)`` on
  every call + ``np.einsum``).  Acceptance floor: >= 5x.
* **train_step_matmul_vs_einsum** — batched forward+backward at
  ``(p, q, b) = (16, 16, 64)``, batch 64, matmul kernels vs the einsum
  reference.  Both sides re-transform the weights once per step, as
  training does.  Acceptance floor: >= 1.5x.
* **equivalence** — max abs deviation of every new kernel from its
  reference implementation (tolerance 1e-10).
* **zoo** — forward / forward+backward / frozen-session inference on the
  MNIST-FC (Arch. 1) and CIFAR-conv (reduced Arch. 3) configurations.

Run:  PYTHONPATH=src python benchmarks/run_bench.py [--out BENCH_fdx.json]
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.fft import rfft
from repro.fft.backend import use_backend
from repro.nn import BlockCirculantLinear, CrossEntropyLoss, Sequential
from repro.runtime import InferenceSession
from repro.structured import (
    block_circulant_backward_batch,
    block_circulant_backward_batch_einsum,
    block_circulant_forward_batch,
    block_circulant_forward_batch_einsum,
    blockify,
)
from repro.zoo import build_arch1, build_arch3_reduced

TOLERANCE = 1e-10


def best_of(fn, repeats: int, inner: int = 1) -> float:
    """Best wall-clock seconds for one call of ``fn`` over ``repeats`` trials."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(inner):
            fn()
        best = min(best, (time.perf_counter() - start) / inner)
    return best


# ----------------------------------------------------------------------
# Seed-behaviour baselines (pure numpy, no autograd overhead — which
# biases the comparison *against* the new layer path, keeping the
# reported speedups conservative)
# ----------------------------------------------------------------------
def seed_forward(weight: np.ndarray, x: np.ndarray, b: int,
                 bias: np.ndarray, out_features: int) -> np.ndarray:
    """The seed hot path: re-transform weights, einsum contraction."""
    x_blocks = blockify(x, b)
    spectra = rfft(weight)
    y = block_circulant_forward_batch_einsum(spectra, x_blocks)
    return y.reshape(x.shape[0], -1)[:, :out_features] + bias


def bench_inference_forward(repeats: int) -> dict:
    """Repeated-forward inference: frozen session (cached spectra in
    frequency-major layout, matmul contraction, fused bias) vs the seed
    behaviour (re-transform weights + einsum on every call)."""
    rng = np.random.default_rng(0)
    p, q, b = 32, 64, 128  # CIFAR-FC-layer scale: 8192 -> 4096
    layer = BlockCirculantLinear(q * b, p * b, b, rng=rng)
    layer.eval()
    x = rng.normal(size=(1, q * b))
    weight = layer.weight.data
    bias = layer.bias.data
    session = InferenceSession.freeze(Sequential(layer))

    new_out = session.forward(x)
    base_out = seed_forward(weight, x, b, bias, layer.out_features)
    max_err = float(np.abs(new_out - base_out).max())

    baseline_s = best_of(
        lambda: seed_forward(weight, x, b, bias, layer.out_features),
        repeats, inner=20,
    )
    new_s = best_of(lambda: session.forward(x), repeats, inner=20)
    layer_s = best_of(lambda: layer(x), repeats, inner=20)
    return {
        "config": {"p": p, "q": q, "b": b, "batch": 1},
        "baseline_us": baseline_s * 1e6,
        "new_us": new_s * 1e6,
        "layer_forward_us": layer_s * 1e6,
        "speedup": baseline_s / new_s,
        "layer_speedup": baseline_s / layer_s,
        "max_abs_err": max_err,
    }


def bench_train_step(repeats: int) -> dict:
    """Batched forward+backward kernels: matmul vs einsum reference."""
    rng = np.random.default_rng(1)
    p = q = 16
    b = 64
    batch = 64
    weight = rng.normal(size=(p, q, b))
    x_blocks = rng.normal(size=(batch, q, b))
    grad_blocks = rng.normal(size=(batch, p, b))

    def einsum_step():
        spectra = rfft(weight)
        y = block_circulant_forward_batch_einsum(spectra, x_blocks)
        gw, gx = block_circulant_backward_batch_einsum(
            spectra, x_blocks, grad_blocks
        )
        return y, gw, gx

    def matmul_step():
        spectra = rfft(weight)
        y = block_circulant_forward_batch(spectra, x_blocks)
        gw, gx = block_circulant_backward_batch(spectra, x_blocks, grad_blocks)
        return y, gw, gx

    ref = einsum_step()
    new = matmul_step()
    max_err = float(max(np.abs(a - c).max() for a, c in zip(new, ref)))

    einsum_s = best_of(einsum_step, repeats, inner=3)
    matmul_s = best_of(matmul_step, repeats, inner=3)
    return {
        "config": {"p": p, "q": q, "b": b, "batch": batch},
        "einsum_ms": einsum_s * 1e3,
        "matmul_ms": matmul_s * 1e3,
        "speedup": einsum_s / matmul_s,
        "max_abs_err": max_err,
    }


def check_equivalence() -> dict:
    """Max deviation of every new kernel from its reference, to 1e-10."""
    rng = np.random.default_rng(2)
    errs: dict[str, float] = {}

    # Contractions, ragged p != q.
    p, q, b, batch = 5, 7, 16, 9
    spectra = rfft(rng.normal(size=(p, q, b)))
    x_blocks = rng.normal(size=(batch, q, b))
    grad_blocks = rng.normal(size=(batch, p, b))
    errs["forward_matmul_vs_einsum"] = float(np.abs(
        block_circulant_forward_batch(spectra, x_blocks)
        - block_circulant_forward_batch_einsum(spectra, x_blocks)
    ).max())
    fast = block_circulant_backward_batch(spectra, x_blocks, grad_blocks)
    ref = block_circulant_backward_batch_einsum(spectra, x_blocks, grad_blocks)
    errs["backward_w_matmul_vs_einsum"] = float(np.abs(fast[0] - ref[0]).max())
    errs["backward_x_matmul_vs_einsum"] = float(np.abs(fast[1] - ref[1]).max())

    # Pure-backend packed real transforms vs numpy.fft.
    worst_r = 0.0
    for n in (8, 12, 64, 100, 128):
        x = rng.normal(size=(4, n))
        with use_backend("pure"):
            worst_r = max(worst_r, float(np.abs(rfft(x) - np.fft.rfft(x)).max()))
    errs["packed_rfft_vs_numpy"] = worst_r

    return {
        "errors": errs,
        "tolerance": TOLERANCE,
        "pass": all(err <= TOLERANCE for err in errs.values()),
    }


def bench_zoo(repeats: int) -> dict:
    """Forward / forward+backward / frozen inference on the model zoo."""
    results: dict[str, dict] = {}
    loss_fn = CrossEntropyLoss()
    configs = {
        "mnist_fc": (
            build_arch1(rng=np.random.default_rng(3)),
            np.random.default_rng(4).normal(size=(64, 256)),
        ),
        "cifar_conv": (
            build_arch3_reduced(width=12, block_size=4,
                                rng=np.random.default_rng(5)),
            np.random.default_rng(6).normal(size=(8, 3, 32, 32)),
        ),
    }
    for name, (model, x) in configs.items():
        labels = np.arange(x.shape[0]) % 10
        batch = x.shape[0]

        def forward():
            return model(x)

        def forward_backward():
            model.zero_grad()
            loss_fn(model(x), labels).backward()

        model.eval()
        session = InferenceSession.freeze(model)
        forward_s = best_of(forward, repeats)
        fb_s = best_of(forward_backward, repeats)
        infer_s = best_of(lambda: session.forward(x), repeats)
        results[name] = {
            "batch": batch,
            "forward_ms": forward_s * 1e3,
            "forward_backward_ms": fb_s * 1e3,
            "session_inference_ms": infer_s * 1e3,
            "session_us_per_image": infer_s / batch * 1e6,
        }
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default=str(Path(__file__).parent.parent / "BENCH_fdx.json"),
        help="output JSON path (default: repo-root BENCH_fdx.json)",
    )
    parser.add_argument("--repeats", type=int, default=5)
    args = parser.parse_args(argv)

    report = {
        "meta": {
            "numpy": np.__version__,
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "inference_forward_cached": bench_inference_forward(args.repeats),
        "train_step_matmul_vs_einsum": bench_train_step(args.repeats),
        "equivalence": check_equivalence(),
        "zoo": bench_zoo(args.repeats),
    }

    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    inf = report["inference_forward_cached"]
    train = report["train_step_matmul_vs_einsum"]
    print(f"inference forward (cached): {inf['speedup']:.1f}x "
          f"({inf['baseline_us']:.0f} -> {inf['new_us']:.0f} us)")
    print(f"train step (matmul vs einsum): {train['speedup']:.1f}x "
          f"({train['einsum_ms']:.2f} -> {train['matmul_ms']:.2f} ms)")
    print(f"kernel equivalence <= {TOLERANCE:g}: "
          f"{'PASS' if report['equivalence']['pass'] else 'FAIL'}")
    for name, row in report["zoo"].items():
        print(f"{name}: fwd {row['forward_ms']:.1f} ms, "
              f"fwd+bwd {row['forward_backward_ms']:.1f} ms, "
              f"frozen inference {row['session_us_per_image']:.0f} us/image")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
