"""Concurrent streaming clients against ``repro serve`` — parity + leaks.

Demonstrates the streaming stack end to end, the way a deployment
would run it:

1. build the streamable FFTNet sequence model, freeze it into a
   deployment artifact,
2. launch the real CLI server as a subprocess:
   ``python -m repro serve artifact.npz --port 0 --max-streams N``,
3. phase 1 — one sync :meth:`ServeClient.stream` pushes a sequence in
   ragged chunks; the concatenated incremental rows are checked
   **bitwise** against the offline batch session,
4. phase 2 — ``--streams`` concurrent :class:`AsyncServeClient`
   streams push interleaved chunks; the server fuses concurrent pushes
   into shared steps and every stream's rows still match its offline
   reference; afterwards ``info`` must report zero open streams and
   zero retained state bytes,
5. phase 3 — a client opens a stream, pushes, and vanishes without
   ``stream_close``; the server must free the orphaned state (polled
   via ``info``) — abrupt disconnects leak nothing,
6. phase 4 — with a stream mid-conversation the server drains:
   ``stream_close`` still completes cleanly (released, not broken)
   and the process exits 0 on its own.

The CI streaming-smoke job runs exactly this script; a non-zero exit
means streaming broke parity, leaked state, or failed to close
cleanly.

Run:  PYTHONPATH=src python examples/stream_client.py
      [--streams 6] [--pushes 8] [--chunk-rows 5]
"""

import argparse
import asyncio
import os
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

SRC = Path(__file__).resolve().parent.parent / "src"
sys.path.insert(0, str(SRC))

from repro.embedded import DeployedModel  # noqa: E402
from repro.engine import Engine  # noqa: E402
from repro.serving import AsyncServeClient, ServeClient  # noqa: E402
from repro.serving.protocol import (  # noqa: E402
    pack_array,
    parse_banner,
    read_frame_sync,
    send_frame_sync,
)
from repro.zoo import build_fftnet  # noqa: E402


def launch_server(artifact: Path, args) -> tuple[subprocess.Popen, str, int]:
    """Start ``repro serve`` on an ephemeral port; parse the banner."""
    import selectors

    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve", str(artifact),
            "--port", "0",
            "--max-streams", str(args.streams + 2),
            "--max-wait-ms", "2",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    selector = selectors.DefaultSelector()
    selector.register(proc.stdout, selectors.EVENT_READ)
    deadline = time.monotonic() + 30
    try:
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not selector.select(timeout=remaining):
                raise RuntimeError("timed out waiting for the server banner")
            line = proc.stdout.readline()
            if not line:
                raise RuntimeError("server exited before announcing its port")
            parsed = parse_banner(line)
            if parsed is not None:
                return proc, parsed[0], parsed[1]
    finally:
        selector.close()


def ragged_cuts(total: int, pushes: int, rng) -> list[int]:
    """Split ``total`` rows into ``pushes`` positive ragged chunks."""
    cuts = sorted(rng.choice(range(1, total), size=pushes - 1, replace=False))
    edges = [0, *cuts, total]
    return [b - a for a, b in zip(edges, edges[1:])]


def stream_stats(client: ServeClient) -> dict:
    return client.info()["health"]["streams"]


async def concurrent_streams(host, port, session, args) -> dict:
    """Phase 2: many async streams pushing interleaved ragged chunks."""

    async def one_stream(stream_id: int) -> tuple[int, list[float]]:
        rng = np.random.default_rng(2000 + stream_id)
        total = args.pushes * args.chunk_rows
        full = rng.normal(size=(total, 1))
        expected = session.predict_proba(full[None])[0]
        client = await AsyncServeClient.connect(host, port)
        latencies, outs, i = [], [], 0
        try:
            async with await client.stream() as stream:
                for rows in ragged_cuts(total, args.pushes, rng):
                    start = time.perf_counter()
                    outs.append(await stream.push(full[i : i + rows]))
                    latencies.append(time.perf_counter() - start)
                    i += rows
        finally:
            await client.close()
        if not np.array_equal(np.concatenate(outs), expected):
            raise AssertionError(
                f"stream {stream_id}: incremental rows deviate from the "
                f"offline batch session"
            )
        return total, latencies

    start = time.perf_counter()
    outcomes = await asyncio.gather(
        *[one_stream(i) for i in range(args.streams)]
    )
    wall = time.perf_counter() - start
    latencies = sorted(
        1e3 * lat for _, lats in outcomes for lat in lats
    )
    return {
        "streams": args.streams,
        "rows_per_s": sum(rows for rows, _ in outcomes) / wall,
        "p50_ms": latencies[len(latencies) // 2],
        "p99_ms": latencies[min(len(latencies) - 1,
                                int(len(latencies) * 0.99))],
        "wall_s": wall,
    }


def abrupt_disconnect(host: str, port: int) -> None:
    """Phase 3: open, push, vanish — the server must free the state."""
    raw = socket.create_connection((host, port), timeout=10)
    send_frame_sync(raw, {"op": "stream_open"})
    opened, _ = read_frame_sync(raw)
    assert opened["status"] == "ok", opened
    chunk = np.random.default_rng(99).normal(size=(4, 1))
    send_frame_sync(
        raw, {"op": "stream_push", "stream": opened["stream"]},
        pack_array(chunk),
    )
    pushed, _ = read_frame_sync(raw)
    assert pushed["status"] == "ok", pushed
    raw.close()  # no stream_close — simulate a crashed client


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--streams", type=int, default=6)
    parser.add_argument("--pushes", type=int, default=8)
    parser.add_argument("--chunk-rows", type=int, default=5)
    args = parser.parse_args()

    model = build_fftnet(
        channels=8, depth=3, classes=6, rng=np.random.default_rng(0)
    )
    deployed = DeployedModel.from_model(model)

    with tempfile.TemporaryDirectory() as tmp:
        artifact = Path(tmp) / "fftnet.npz"
        deployed.save(artifact)
        # Artifacts persist weights at fp32, so the offline reference is
        # the artifact's own frozen session — the server must match it
        # bitwise, push boundaries notwithstanding.
        session = Engine(model=DeployedModel.load(artifact)).session()
        proc, host, port = launch_server(artifact, args)
        try:
            # Phase 1: one sync stream, ragged pushes, bitwise parity.
            rng = np.random.default_rng(7)
            full = rng.normal(size=(48, 1))
            expected = session.predict_proba(full[None])[0]
            with ServeClient(host, port) as client:
                with client.stream() as stream:
                    outs, i = [], 0
                    for rows in (1, 5, 2, 17, 3, 20):
                        outs.append(stream.push(full[i : i + rows]))
                        i += rows
                assert np.array_equal(np.concatenate(outs), expected), \
                    "incremental rows are not bitwise-identical to batch"
                stats = stream_stats(client)
                assert stats["open"] == 0 and stats["state_bytes"] == 0, stats
            print("phase 1: ragged pushes bitwise-identical to batch — OK")

            # Phase 2: concurrent streams, fused across connections.
            summary = asyncio.run(
                concurrent_streams(host, port, session, args)
            )
            with ServeClient(host, port) as client:
                stats = stream_stats(client)
                assert stats["open"] == 0, stats
                assert stats["state_bytes"] == 0, stats
                assert stats["opened"] >= args.streams + 1, stats
            print(
                f"phase 2: {summary['streams']} concurrent streams — "
                f"{summary['rows_per_s']:.0f} rows/s, push p50 "
                f"{summary['p50_ms']:.1f} ms / p99 {summary['p99_ms']:.1f} "
                f"ms, wall {summary['wall_s']:.2f} s — all rows match batch"
            )

            # Phase 3: abrupt disconnect must leak nothing.
            abrupt_disconnect(host, port)
            with ServeClient(host, port) as client:
                deadline = time.monotonic() + 10
                while time.monotonic() < deadline:
                    stats = stream_stats(client)
                    if stats["open"] == 0 and stats["state_bytes"] == 0:
                        break
                    time.sleep(0.05)
                assert stats["open"] == 0 and stats["state_bytes"] == 0, \
                    f"orphaned stream state leaked: {stats}"
            print("phase 3: abrupt disconnect leaked no stream state — OK")

            # Phase 4: drain — new pushes are refused, but stream_close
            # stays clean (the handle is released, not broken) and the
            # server exits 0 on its own.
            client = ServeClient(host, port)
            stream = client.stream()
            out = stream.push(full[:8])
            assert np.array_equal(out, expected[:8])
            with ServeClient(host, port) as drainer:
                drainer.drain()
            stream.close()
            assert not stream.broken, \
                "stream_close during drain was not clean"
            client.close()
            try:
                code = proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                raise AssertionError("server did not exit after drain")
            assert code == 0, f"server exited {code} after drain"
            print("phase 4: clean stream_close on drain, server exited 0 — OK")
        finally:
            if proc.poll() is None:
                proc.terminate()
                try:
                    proc.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    proc.kill()
    print("streaming smoke passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
