"""Quickstart: the paper's core idea in thirty lines.

Builds a block-circulant FC layer, shows that its FFT-based product
matches the dense expansion exactly (paper Eqn. 3), trains it for a few
steps (paper Algorithm 2), and reports the compression ratio.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.nn import SGD, BlockCirculantLinear, MSELoss, Tensor

rng = np.random.default_rng(0)

# A 512 -> 256 fully-connected layer stored as 8 x 16 circulant blocks of
# size 32: 4096 weights instead of 131072.
layer = BlockCirculantLinear(512, 256, block_size=32, rng=rng)
print(f"layer:             {layer}")
print(f"stored parameters: {layer.weight.size + layer.bias.size}")
print(f"dense equivalent:  {512 * 256 + 256}")
print(f"compression:       {layer.compression_ratio:.0f}x")

# Eqn. 3: FFT -> componentwise multiply -> IFFT equals the dense product.
x = rng.normal(size=(4, 512))
fft_out = layer(Tensor(x)).data
dense_out = x @ layer.dense_weight().T + layer.bias.data
print(f"FFT vs dense max |diff|: {np.abs(fft_out - dense_out).max():.2e}")

# Algorithm 2: train with FFT-domain gradients.
target = rng.normal(size=(4, 256))
loss_fn = MSELoss()
optimizer = SGD(layer.parameters(), lr=0.05)
for step in range(10):
    optimizer.zero_grad()
    loss = loss_fn(layer(Tensor(x)), Tensor(target))
    loss.backward()
    optimizer.step()
    if step % 3 == 0:
        print(f"step {step}: loss {loss.item():.4f}")
print("loss decreases through the FFT-based backward pass — done.")
