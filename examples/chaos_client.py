"""Chaos smoke: kill the server's pool workers and verify parity anyway.

Exercises the fault-tolerance stack (``docs/robustness.md``) against a
real ``repro serve`` subprocess, the way the CI chaos-smoke job runs it:

1. build Arch. 1, freeze it into a deployment artifact, and launch the
   CLI server with an **unlimited worker-kill fault** armed via
   ``REPRO_FAULTS=worker.kill*0`` — every pooled task dies until the
   executor gives up on the pool,
2. phase 1 — a client (with retries) sends batches while workers are
   being killed; the executor respawns once, then degrades to serial,
   and every response must still be **bitwise-identical** to a local
   serial :class:`~repro.runtime.InferenceSession`,
3. phase 2 — ``info`` must report the degraded executor in its
   ``health`` block (skipped on single-CPU hosts, where the CLI clamps
   to serial and no pool ever exists),
4. phase 3 — a mid-flight ``drain`` flushes an in-flight request
   bitwise-intact, refuses new work with ``server_unavailable``, and
   the server process exits ``0``.

A non-zero exit means a fault leaked to a client, parity broke, or the
drain dropped work.

Run:  PYTHONPATH=src python examples/chaos_client.py
      [--rows 8] [--requests 6] [--workers 2] [--transport shm]
"""

import argparse
import asyncio
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

SRC = Path(__file__).resolve().parent.parent / "src"
sys.path.insert(0, str(SRC))

from repro.embedded import DeployedModel  # noqa: E402
from repro.exceptions import ServerUnavailable  # noqa: E402
from repro.runtime import InferenceSession  # noqa: E402
from repro.serving import AsyncServeClient, ServeClient  # noqa: E402
from repro.serving.protocol import parse_banner  # noqa: E402
from repro.zoo import build_arch1  # noqa: E402



def launch_server(artifact: Path, args, fault_spec: str):
    """Start ``repro serve`` with faults armed; parse the banner."""
    import selectors

    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_FAULTS"] = fault_spec
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve", str(artifact),
            "--port", "0",
            "--workers", str(args.workers),
            "--transport", args.transport,
            "--max-batch", "32",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    selector = selectors.DefaultSelector()
    selector.register(proc.stdout, selectors.EVENT_READ)
    deadline = time.monotonic() + 30
    try:
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not selector.select(timeout=remaining):
                raise RuntimeError("timed out waiting for the server banner")
            line = proc.stdout.readline()
            if not line:
                raise RuntimeError("server exited before announcing its port")
            parsed = parse_banner(line)
            if parsed is not None:
                return proc, parsed[0], parsed[1]
    finally:
        selector.close()


async def chaos_phases(host, port, expected_session, args) -> None:
    pooled_possible = args.workers > 1 and (os.cpu_count() or 1) > 1
    rng = np.random.default_rng(42)

    # Phase 1: serve through the kill storm, bitwise-correct throughout.
    client = await AsyncServeClient.connect(
        host, port, retries=4, backoff_ms=10.0
    )
    try:
        for i in range(args.requests):
            rows = rng.normal(size=(args.rows, 256))
            proba = await client.predict_proba(rows)
            expected = expected_session.predict_proba(rows)
            if not np.array_equal(proba, expected):
                raise AssertionError(
                    f"request {i}: response deviates from serial under "
                    f"worker faults (max "
                    f"{np.abs(proba - expected).max():.3g})"
                )
        print(
            f"phase 1: {args.requests} requests bitwise-identical to serial "
            f"under worker.kill*0 — OK"
        )

        # Phase 2: the executor must have degraded (pool hosts only —
        # the CLI clamps to serial on one CPU and no pool ever forks).
        info = await client.info()
        health = info["health"]
        if pooled_possible:
            if not health["degraded"]:
                raise AssertionError(
                    f"expected a degraded executor after unlimited worker "
                    f"kills; health={health!r}"
                )
            print("phase 2: health reports degraded executor — OK")
        else:
            print("phase 2: single-CPU host, serial from the start — skipped")

        # Phase 3: drain mid-flight.  The pending request must complete
        # bitwise-intact; new work must be refused with a typed error.
        rows = rng.normal(size=(args.rows, 256))
        pending = asyncio.ensure_future(client.predict_proba(rows))
        await asyncio.sleep(0.01)
        drainer = await AsyncServeClient.connect(host, port, retries=0)
        try:
            await drainer.drain()
            out = await asyncio.wait_for(pending, timeout=30.0)
            if not np.array_equal(out, expected_session.predict_proba(rows)):
                raise AssertionError("drained in-flight request lost parity")
            try:
                await drainer.predict_proba(rows)
            except ServerUnavailable:
                pass
            else:
                raise AssertionError(
                    "draining server accepted a new request"
                )
        finally:
            await drainer.close()
        print("phase 3: drain flushed in-flight work bitwise-intact — OK")
    finally:
        await client.close()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=8)
    parser.add_argument("--requests", type=int, default=6)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--transport", choices=("pipe", "shm"), default="shm")
    args = parser.parse_args()

    model = build_arch1(rng=np.random.default_rng(0)).eval()
    deployed = DeployedModel.from_model(model)
    expected_session = InferenceSession.from_deployed(deployed)

    with tempfile.TemporaryDirectory() as tmp:
        artifact = Path(tmp) / "arch1.npz"
        deployed.save(artifact)
        proc, host, port = launch_server(artifact, args, "worker.kill*0")
        try:
            asyncio.run(chaos_phases(host, port, expected_session, args))
            # The drain must let the process exit cleanly on its own.
            try:
                code = proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                raise AssertionError("server did not exit after drain")
            if code != 0:
                raise AssertionError(f"server exited {code} after drain")
            print("phase 3b: server exited 0 after drain — OK")
        finally:
            if proc.poll() is None:
                proc.terminate()
                try:
                    proc.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    proc.kill()
    print("chaos smoke passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
