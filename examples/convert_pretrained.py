"""Compress a pre-trained dense network into block-circulant form.

The deployment workflow when a dense model already exists: project each
weight matrix onto the nearest block-circulant matrix, inspect the
projection error per layer, fine-tune briefly, and compare storage +
accuracy against the dense original — the paper's compression story
applied post hoc rather than trained from scratch.

Run:  python examples/convert_pretrained.py
"""

import numpy as np

from repro.analysis import storage_report
from repro.data import (
    ArrayDataset,
    DataLoader,
    bilinear_resize,
    flatten_images,
    load_synthetic_mnist,
)
from repro.nn import (
    Adam,
    CrossEntropyLoss,
    Linear,
    ReLU,
    Sequential,
    Trainer,
    accuracy,
    conversion_report,
    convert_to_block_circulant,
    predict_in_batches,
)


def main():
    train, test = load_synthetic_mnist(
        train_size=2000, test_size=600, seed=0, noise=0.15
    )

    def preprocess(images):
        return flatten_images(bilinear_resize(images, 16, 16))

    train_set = ArrayDataset(preprocess(train.inputs), train.labels)
    test_set = ArrayDataset(preprocess(test.inputs), test.labels)

    # 1. Train the dense baseline.
    rng = np.random.default_rng(2)
    dense = Sequential(
        Linear(256, 128, rng=rng), ReLU(),
        Linear(128, 128, rng=rng), ReLU(),
        Linear(128, 10, rng=rng),
    )
    loader = DataLoader(train_set, batch_size=64, shuffle=True, seed=0)
    Trainer(dense, CrossEntropyLoss(), Adam(dense.parameters(), lr=0.003)).fit(
        loader, epochs=10
    )
    dense.eval()
    dense_acc = accuracy(predict_in_batches(dense, test_set.inputs),
                         test_set.labels)
    print(f"dense baseline: {100 * dense_acc:.2f}% "
          f"({storage_report(dense).stored_params} params)")

    # 2. Inspect projection error before committing to a block size.
    print("\nprojection error by block size (hidden layers):")
    for block in (8, 16, 32, 64):
        rows = conversion_report(dense, block, skip=(4,))
        errors = ", ".join(f"{row.relative_error:.3f}" for row in rows)
        print(f"  block {block:3d}: [{errors}]")

    # 3. Convert at block 32 and fine-tune (classifier stays dense).
    converted = convert_to_block_circulant(dense, block_size=32, skip=(4,))
    converted.eval()
    projected_acc = accuracy(
        predict_in_batches(converted, test_set.inputs), test_set.labels
    )
    Trainer(
        converted, CrossEntropyLoss(), Adam(converted.parameters(), lr=0.001)
    ).fit(DataLoader(train_set, batch_size=64, shuffle=True, seed=1), epochs=5)
    converted.eval()
    tuned_acc = accuracy(
        predict_in_batches(converted, test_set.inputs), test_set.labels
    )
    report = storage_report(converted)
    print(f"\nprojected (block 32):  {100 * projected_acc:.2f}%")
    print(f"after fine-tuning:     {100 * tuned_acc:.2f}%")
    print(f"storage: {report.stored_params} params "
          f"({report.compression:.1f}x compression vs dense)")


if __name__ == "__main__":
    main()
