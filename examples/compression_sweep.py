"""Block-size trade-off study (paper section II, contribution (1)).

Sweeps the circulant block size of Arch. 1 from mild (8) to the
whole-circulant extreme (128), training each variant on the synthetic
MNIST stand-in, and prints the accuracy / compression / predicted-runtime
frontier — the trade-off that motivates *block*-circulant over the
whole-circulant matrices of prior work [19].  Also applies 12-bit
fixed-point quantization (the related-work extension) on top of the best
variant to show the two compression axes compose.

Run:  python examples/compression_sweep.py
"""

import numpy as np

from repro.analysis import storage_report
from repro.data import (
    ArrayDataset,
    DataLoader,
    bilinear_resize,
    flatten_images,
    load_synthetic_mnist,
)
from repro.embedded import InferenceProfiler
from repro.nn import Adam, CrossEntropyLoss, Trainer, accuracy, predict_in_batches
from repro.nn.convert import conversion_report
from repro.quantize import quantize_model
from repro.zoo import build_arch1

BLOCK_SIZES = (8, 16, 32, 64, 128)
QUANTIZE_BITS = 12


def main():
    train, test = load_synthetic_mnist(
        train_size=2000, test_size=600, seed=0, noise=0.15
    )

    def preprocess(images):
        return flatten_images(bilinear_resize(images, 16, 16))

    train_set = ArrayDataset(preprocess(train.inputs), train.labels)
    test_set = ArrayDataset(preprocess(test.inputs), test.labels)

    # Pre-training frontier: per-layer projection error of converting a
    # *dense* Arch.-1-shaped network at each block size, with the
    # quantization-error column showing what 12-bit fixed point would
    # add on top — both compression axes, measured before any training.
    from repro.nn import Linear, ReLU, Sequential

    dense_ref = Sequential(
        Linear(256, 128, rng=np.random.default_rng(0)), ReLU(),
        Linear(128, 128, rng=np.random.default_rng(0)), ReLU(),
        Linear(128, 10, rng=np.random.default_rng(0)),
    )
    print(f"projection / quantization frontier (dense reference, "
          f"{QUANTIZE_BITS}-bit):")
    print(f"{'block':>6s} {'layer':>6s} {'proj err':>9s} {'quant err':>10s} "
          f"{'compression':>12s}")
    for block in BLOCK_SIZES:
        for row in conversion_report(
            dense_ref, block, skip=(4,), quantize_bits=QUANTIZE_BITS
        ):
            print(f"{block:6d} {row.index:6d} {row.relative_error:9.3f} "
                  f"{row.quantization_error:10.2e} {row.compression:11.1f}x")

    print(f"\n{'block':>6s} {'accuracy %':>11s} {'compression':>12s} "
          f"{'params':>8s} {'C++ us (honor6x)':>17s}")
    best = None
    for block in BLOCK_SIZES:
        model = build_arch1(block_size=block, rng=np.random.default_rng(1))
        loader = DataLoader(train_set, batch_size=64, shuffle=True, seed=0)
        trainer = Trainer(
            model, CrossEntropyLoss(), Adam(model.parameters(), lr=0.003)
        )
        trainer.fit(loader, epochs=8)
        model.eval()
        score = accuracy(
            predict_in_batches(model, test_set.inputs), test_set.labels
        )
        report = storage_report(model)
        runtime = InferenceProfiler(model, (256,)).runtime_us("honor6x", "cpp")
        print(f"{block:6d} {100 * score:11.2f} {report.compression:11.1f}x "
              f"{report.stored_params:8d} {runtime:17.1f}")
        if best is None or score > best[1]:
            best = (model, score, block)

    model, score, block = best
    quantize_model(model, total_bits=QUANTIZE_BITS)
    model.eval()
    quantized_score = accuracy(
        predict_in_batches(model, test_set.inputs), test_set.labels
    )
    print(f"\nbest variant (block {block}): {100 * score:.2f}% float  ->  "
          f"{100 * quantized_score:.2f}% at {QUANTIZE_BITS}-bit fixed point")


if __name__ == "__main__":
    main()
