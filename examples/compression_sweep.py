"""Block-size trade-off study (paper section II, contribution (1)).

Sweeps the circulant block size of Arch. 1 from mild (8) to the
whole-circulant extreme (128), training each variant on the synthetic
MNIST stand-in, and prints the accuracy / compression / predicted-runtime
frontier — the trade-off that motivates *block*-circulant over the
whole-circulant matrices of prior work [19].  Also applies 12-bit
fixed-point quantization (the related-work extension) on top of the best
variant to show the two compression axes compose.

Run:  python examples/compression_sweep.py
"""

import numpy as np

from repro.analysis import storage_report
from repro.data import (
    ArrayDataset,
    DataLoader,
    bilinear_resize,
    flatten_images,
    load_synthetic_mnist,
)
from repro.embedded import InferenceProfiler
from repro.nn import Adam, CrossEntropyLoss, Trainer, accuracy, predict_in_batches
from repro.quantize import quantize_model
from repro.zoo import build_arch1

BLOCK_SIZES = (8, 16, 32, 64, 128)


def main():
    train, test = load_synthetic_mnist(
        train_size=2000, test_size=600, seed=0, noise=0.15
    )

    def preprocess(images):
        return flatten_images(bilinear_resize(images, 16, 16))

    train_set = ArrayDataset(preprocess(train.inputs), train.labels)
    test_set = ArrayDataset(preprocess(test.inputs), test.labels)

    print(f"{'block':>6s} {'accuracy %':>11s} {'compression':>12s} "
          f"{'params':>8s} {'C++ us (honor6x)':>17s}")
    best = None
    for block in BLOCK_SIZES:
        model = build_arch1(block_size=block, rng=np.random.default_rng(1))
        loader = DataLoader(train_set, batch_size=64, shuffle=True, seed=0)
        trainer = Trainer(
            model, CrossEntropyLoss(), Adam(model.parameters(), lr=0.003)
        )
        trainer.fit(loader, epochs=8)
        model.eval()
        score = accuracy(
            predict_in_batches(model, test_set.inputs), test_set.labels
        )
        report = storage_report(model)
        runtime = InferenceProfiler(model, (256,)).runtime_us("honor6x", "cpp")
        print(f"{block:6d} {100 * score:11.2f} {report.compression:11.1f}x "
              f"{report.stored_params:8d} {runtime:17.1f}")
        if best is None or score > best[1]:
            best = (model, score, block)

    model, score, block = best
    quantize_model(model, total_bits=12)
    model.eval()
    quantized_score = accuracy(
        predict_in_batches(model, test_set.inputs), test_set.labels
    )
    print(f"\nbest variant (block {block}): {100 * score:.2f}% float  ->  "
          f"{100 * quantized_score:.2f}% at 12-bit fixed point")


if __name__ == "__main__":
    main()
