"""Paper Fig. 4 end to end: parse -> train -> deploy -> infer -> profile.

Walks the complete software pipeline of the paper's section V:

1. the architecture parser reads the network description string,
2. the model trains on the synthetic MNIST stand-in,
3. the parameters are exported in FFT form (section IV-A) and the whole
   model frozen into a deployment artifact,
4. the inputs parser loads a test batch from a file,
5. the artifact is compiled into a frozen InferenceSession (flat op
   plan, precomputed spectra, fused bias+activation) that streams the
   test batch through the standalone inference engine,
6. the platform simulator prices the engine on the Table I devices,
   including battery mode.

Run:  python examples/deploy_embedded.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.data import (
    ArrayDataset,
    DataLoader,
    bilinear_resize,
    flatten_images,
    load_synthetic_mnist,
)
from repro.embedded import DeployedModel, InferenceProfiler
from repro.engine import Engine
from repro.io import build_model_from_string, load_inputs, save_inputs
from repro.nn import Adam, CrossEntropyLoss, Trainer

ARCHITECTURE = "256-128CFb64-128CFb64-10F"  # paper Arch. 1


def main():
    workdir = Path(tempfile.mkdtemp(prefix="repro_deploy_"))

    # 1. Architecture parser (Fig. 4, module 1).
    print(f"architecture: {ARCHITECTURE}")
    model = build_model_from_string(ARCHITECTURE, rng=np.random.default_rng(1))

    # 2. Training on synthetic MNIST resized to 16x16.
    train, test = load_synthetic_mnist(
        train_size=2000, test_size=400, seed=0, noise=0.15
    )

    def preprocess(images):
        return flatten_images(bilinear_resize(images, 16, 16))

    loader = DataLoader(
        ArrayDataset(preprocess(train.inputs), train.labels),
        batch_size=64, shuffle=True, seed=0,
    )
    trainer = Trainer(model, CrossEntropyLoss(), Adam(model.parameters(), lr=0.003))
    history = trainer.fit(loader, epochs=8)
    print(f"trained: final train accuracy {history.final.train_accuracy:.3f}")

    # 3. Freeze to the FFT-domain deployment artifact (Fig. 4, module 2).
    model.eval()
    deployed = DeployedModel.from_model(model)
    model_path = workdir / "arch1_deployed.npz"
    deployed.save(model_path)
    print(f"deployed artifact: {model_path} "
          f"({deployed.storage_bytes() / 1024:.1f} KB, FFT-domain weights)")

    # 4. Inputs parser (Fig. 4, module 3).
    inputs_path = workdir / "test_inputs.npz"
    save_inputs(inputs_path, preprocess(test.inputs), test.labels)
    inputs, labels = load_inputs(inputs_path)

    # 5. Standalone inference engine (Fig. 4, module 4), behind the
    # declarative Engine facade: one object pools a lazily-frozen
    # session per precision (spectra materialized once, bias+activation
    # fused) and routes each call to the right one.
    #
    # PrecisionPolicy guidance: the artifact stores complex64 spectra, so
    # precision="fp32" runs them exactly as stored — half the resident
    # spectrum memory and memory traffic of the default fp64 session,
    # with ~1e-6 agreement.  Use fp32 on RAM/bandwidth-constrained
    # targets (the paper's embedded setting); keep fp64 when chaining
    # further numerical analysis off the logits.  For many-core hosts,
    # EngineConfig(executor="sharded") additionally spreads predict
    # batches and large block-circulant layers over a process pool.
    artifact = DeployedModel.load(model_path)
    engine = Engine(model=artifact, precisions=("fp32", "fp64"))
    print("frozen plan: " + " -> ".join(engine.session().describe()))
    predictions = engine.predict(inputs, batch_size=256)
    test_accuracy = (predictions == labels).mean()
    fp64_predictions = engine.predict(
        inputs, precision="fp64", batch_size=256
    )
    agreement = (predictions == fp64_predictions).mean()
    host_us = artifact.time_inference(inputs[:200], repeats=3)
    engine.close()
    print(f"inference engine (fp32): accuracy {100 * test_accuracy:.2f}%, "
          f"fp64 label agreement {100 * agreement:.2f}%, "
          f"host latency {host_us:.1f} us/image")

    # 6. Embedded platform predictions (Tables I/II).
    profiler = InferenceProfiler(model, (256,))
    print("\npredicted on-device latency (us/image):")
    print(f"{'platform':10s} {'Java':>8s} {'C++':>8s} {'Java+battery':>13s}")
    for platform in ("nexus5", "xu3", "honor6x"):
        java = profiler.runtime_us(platform, "java")
        cpp = profiler.runtime_us(platform, "cpp")
        battery = profiler.runtime_us(platform, "java", battery=True)
        print(f"{platform:10s} {java:8.1f} {cpp:8.1f} {battery:13.1f}")


if __name__ == "__main__":
    main()
