"""Paper section V-C: train the CIFAR-10 CONV network (reduced width).

Trains the width-reduced Arch. 3 — same topology as the paper's
``64Conv3-64Conv3-128Conv3-128Conv3-512F-1024F-1024F-10F`` with dense
first CONV pair and block-circulant everything else — on the synthetic
CIFAR-10 stand-in, then predicts the full-width Arch. 3's on-device
runtime for Table III.

Run:  python examples/cifar_conv.py
"""

import numpy as np

from repro.analysis import storage_report
from repro.data import DataLoader, load_synthetic_cifar
from repro.embedded import InferenceProfiler
from repro.nn import Adam, CrossEntropyLoss, Trainer, accuracy, predict_in_batches
from repro.zoo import build_arch3, build_arch3_reduced


def main():
    train, test = load_synthetic_cifar(
        train_size=1200, test_size=400, seed=0, noise=0.10
    )
    model = build_arch3_reduced(
        width=12, block_size=4, rng=np.random.default_rng(1)
    )
    loader = DataLoader(train, batch_size=32, shuffle=True, seed=0)
    trainer = Trainer(model, CrossEntropyLoss(), Adam(model.parameters(), lr=0.002))
    print("=== reduced Arch. 3 on synthetic CIFAR-10 ===")
    trainer.fit(loader, epochs=5, verbose=True)

    model.eval()
    score = accuracy(predict_in_batches(model, test.inputs, batch_size=100),
                     test.labels)
    print(f"test accuracy: {100 * score:.2f}% (paper Arch. 3: 80.2%)")

    print("\n=== full-width Arch. 3: storage + predicted runtime ===")
    full = build_arch3(rng=np.random.default_rng(0))
    report = storage_report(full)
    print(f"dense params:  {report.dense_params:,}")
    print(f"stored params: {report.stored_params:,} "
          f"({report.compression:.1f}x compression)")
    profiler = InferenceProfiler(full, (3, 32, 32))
    for platform in ("xu3", "honor6x"):
        java = profiler.runtime_us(platform, "java")
        cpp = profiler.runtime_us(platform, "cpp")
        print(f"predicted us/image on {platform:8s}: "
              f"Java {java:8.0f}   C++ {cpp:8.0f}   "
              f"(paper: Java 21032/19785, C++ 8912/8244)")


if __name__ == "__main__":
    main()
