"""Concurrent async clients against ``repro serve`` — and a parity check.

Demonstrates the serving stack end to end, the way a deployment would
run it:

1. build the paper's Arch. 1 model and freeze it into a deployment
   artifact (``repro deploy`` equivalent),
2. launch the real CLI server as a subprocess:
   ``python -m repro serve artifact.npz --port 0 ...``,
3. phase 1 — a single client sends one batch and the response is
   checked **bitwise** against a local serial
   :class:`~repro.runtime.InferenceSession`,
4. phase 2 — ``--clients`` concurrent :class:`AsyncServeClient`\\ s each
   fire ``--requests`` batches; the server micro-batches across them,
   and every client's rows still match the serial session,
5. print the throughput/latency summary.

The CI serving-smoke job runs exactly this script; a non-zero exit
means the server broke parity.

Run:  PYTHONPATH=src python examples/serve_client.py
      [--clients 8] [--requests 8] [--rows 4] [--workers 1]
      [--transport pipe|shm] [--max-batch 32]
"""

import argparse
import asyncio
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

SRC = Path(__file__).resolve().parent.parent / "src"
sys.path.insert(0, str(SRC))

from repro.embedded import DeployedModel  # noqa: E402
from repro.runtime import InferenceSession  # noqa: E402
from repro.serving import AsyncServeClient, ServeClient  # noqa: E402
from repro.serving.protocol import parse_banner  # noqa: E402
from repro.zoo import build_arch1  # noqa: E402



def launch_server(artifact: Path, args) -> tuple[subprocess.Popen, str, int]:
    """Start ``repro serve`` on an ephemeral port; parse the banner.

    The banner wait uses ``select`` so a server that hangs before
    printing fails this script in 30 s instead of blocking ``readline``
    until the CI job times out.
    """
    import selectors

    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve", str(artifact),
            "--port", "0",
            "--workers", str(args.workers),
            "--transport", args.transport,
            "--max-batch", str(args.max_batch),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    selector = selectors.DefaultSelector()
    selector.register(proc.stdout, selectors.EVENT_READ)
    deadline = time.monotonic() + 30
    try:
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not selector.select(timeout=remaining):
                raise RuntimeError("timed out waiting for the server banner")
            line = proc.stdout.readline()
            if not line:
                raise RuntimeError("server exited before announcing its port")
            parsed = parse_banner(line)
            if parsed is not None:
                return proc, parsed[0], parsed[1]
    finally:
        selector.close()


async def run_clients(host, port, expected_session, args) -> dict:
    """Fire concurrent async clients; verify every response row."""

    async def one_client(client_id: int) -> tuple[int, float]:
        rng = np.random.default_rng(1000 + client_id)
        client = await AsyncServeClient.connect(host, port)
        latencies = []
        try:
            for _ in range(args.requests):
                rows = rng.normal(size=(args.rows, 256))
                start = time.perf_counter()
                proba = await client.predict_proba(rows)
                latencies.append(time.perf_counter() - start)
                expected = expected_session.predict_proba(rows)
                if not np.allclose(proba, expected, atol=1e-9):
                    raise AssertionError(
                        f"client {client_id}: served probabilities deviate "
                        f"from the serial session by "
                        f"{np.abs(proba - expected).max():.3g}"
                    )
                labels = await client.predict(rows)
                if not np.array_equal(labels, expected.argmax(axis=-1)):
                    raise AssertionError(f"client {client_id}: label mismatch")
        finally:
            await client.close()
        return args.requests * args.rows * 2, sum(latencies) / len(latencies)

    start = time.perf_counter()
    outcomes = await asyncio.gather(
        *[one_client(i) for i in range(args.clients)]
    )
    wall = time.perf_counter() - start
    total_rows = sum(rows for rows, _ in outcomes)
    return {
        "clients": args.clients,
        "rows_per_s": total_rows / wall,
        "mean_latency_ms": 1e3 * sum(lat for _, lat in outcomes) / len(outcomes),
        "wall_s": wall,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--requests", type=int, default=8)
    parser.add_argument("--rows", type=int, default=4)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--transport", choices=("pipe", "shm"), default="pipe")
    parser.add_argument("--max-batch", type=int, default=32)
    args = parser.parse_args()

    model = build_arch1(rng=np.random.default_rng(0)).eval()
    deployed = DeployedModel.from_model(model)
    # serial fp64 reference (the low-level runtime primitive on purpose:
    # the server under test must match it bitwise)
    expected_session = InferenceSession.from_deployed(deployed)

    with tempfile.TemporaryDirectory() as tmp:
        artifact = Path(tmp) / "arch1.npz"
        deployed.save(artifact)
        proc, host, port = launch_server(artifact, args)
        try:
            # Phase 1: one lone batch must match the serial session bitwise
            # (alone in its micro-batch, the server runs the same rows
            # through the same frozen plan).
            x = np.random.default_rng(7).normal(size=(16, 256))
            with ServeClient(host, port) as client:
                served = client.predict_proba(x)
            assert np.array_equal(served, expected_session.predict_proba(x)), \
                "single-client response is not bitwise-identical to serial"
            print("phase 1: single client bitwise-identical to serial — OK")

            # Phase 2: concurrent clients, micro-batched together.
            summary = asyncio.run(
                run_clients(host, port, expected_session, args)
            )
            print(
                f"phase 2: {summary['clients']} concurrent clients — "
                f"{summary['rows_per_s']:.0f} rows/s, "
                f"mean latency {summary['mean_latency_ms']:.1f} ms, "
                f"wall {summary['wall_s']:.2f} s — all rows match serial"
            )
        finally:
            proc.terminate()
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()
    print("serving smoke passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
