"""Paper section V-B: train Arch. 1 and Arch. 2 on (synthetic) MNIST.

Reproduces the workflow behind Table II's accuracy column: resize MNIST
bilinearly (28x28 -> 16x16 for Arch. 1, -> 11x11 for Arch. 2), train the
two block-circulant FC networks, and compare their accuracy, size, and
predicted on-device runtime.

Run:  python examples/mnist_fc.py
"""

import numpy as np

from repro.analysis import storage_report
from repro.data import (
    ArrayDataset,
    DataLoader,
    bilinear_resize,
    flatten_images,
    load_synthetic_mnist,
)
from repro.embedded import InferenceProfiler
from repro.nn import Adam, CrossEntropyLoss, Trainer, accuracy, predict_in_batches
from repro.zoo import ARCH1_INPUT_SIDE, ARCH2_INPUT_SIDE, build_arch1, build_arch2


def train_architecture(name, builder, side, train, test, epochs=10):
    def preprocess(images):
        return flatten_images(bilinear_resize(images, side, side))

    train_set = ArrayDataset(preprocess(train.inputs), train.labels)
    test_set = ArrayDataset(preprocess(test.inputs), test.labels)

    model = builder(rng=np.random.default_rng(1))
    loader = DataLoader(train_set, batch_size=64, shuffle=True, seed=0)
    trainer = Trainer(model, CrossEntropyLoss(), Adam(model.parameters(), lr=0.003))
    print(f"\n=== {name} (input {side}x{side} = {side * side} neurons) ===")
    trainer.fit(loader, epochs=epochs, verbose=True)

    model.eval()
    score = accuracy(predict_in_batches(model, test_set.inputs), test_set.labels)
    report = storage_report(model)
    profiler = InferenceProfiler(model, (side * side,))
    print(f"test accuracy:        {100 * score:.2f}%")
    print(f"weight compression:   {report.compression:.1f}x "
          f"({report.stored_params} vs {report.dense_params} params)")
    for platform in ("nexus5", "xu3", "honor6x"):
        java = profiler.runtime_us(platform, "java")
        cpp = profiler.runtime_us(platform, "cpp")
        print(f"predicted us/image on {platform:8s}: "
              f"Java {java:7.1f}   C++ {cpp:7.1f}")
    return score


def main():
    train, test = load_synthetic_mnist(
        train_size=2000, test_size=600, seed=0, noise=0.15
    )
    acc1 = train_architecture("Arch. 1", build_arch1, ARCH1_INPUT_SIDE, train, test)
    acc2 = train_architecture("Arch. 2", build_arch2, ARCH2_INPUT_SIDE, train, test)
    print(f"\nArch. 1 vs Arch. 2 accuracy: {100 * acc1:.2f}% vs {100 * acc2:.2f}% "
          f"(paper: 95.47% vs 93.59%)")


if __name__ == "__main__":
    main()
