"""One declarative build, served — the pipeline smoke test.

Runs the paper's whole workflow from a single
:class:`~repro.pipeline.PipelineConfig` and proves the produced
format-v2 artifact serves through the engine unchanged:

1. **build** — 2-epoch synthetic-MNIST training of a dense FC network,
   block-circulant compression (block 16), 12-bit fixed-point
   quantization, packaged as a format-v2 artifact,
2. **serve** — launch the real CLI server on the artifact:
   ``python -m repro serve artifact.npz --port 0``,
3. **parity** — a client's served probabilities must be bitwise
   identical to a local fp64 session frozen from the same artifact,
   and within the documented quantization parity bound
   (``10 x max_weight_error``, the per-layer relative quantization
   error recorded in the artifact metadata) of the *float* model the
   pipeline trained.

The CI pipeline-smoke job runs exactly this script; a non-zero exit
means the build pipeline or the artifact format broke.

Run:  PYTHONPATH=src python examples/pipeline_quickstart.py
      [--epochs 2] [--train-size 400] [--quantize-bits 12]
"""

import argparse
import os
import re
import selectors
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

SRC = Path(__file__).resolve().parent.parent / "src"
sys.path.insert(0, str(SRC))

from repro.embedded import DeployedModel  # noqa: E402
from repro.pipeline import Pipeline, PipelineConfig  # noqa: E402
from repro.runtime import InferenceSession  # noqa: E402
from repro.serving import ServeClient  # noqa: E402

BANNER = re.compile(r"serving on (\S+):(\d+)")
PARITY_FACTOR = 10.0  # documented bound: 10 x max per-layer weight error


def launch_server(artifact: Path) -> tuple[subprocess.Popen, str, int]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", str(artifact), "--port", "0"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
    )
    selector = selectors.DefaultSelector()
    selector.register(proc.stdout, selectors.EVENT_READ)
    deadline = time.monotonic() + 30
    try:
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not selector.select(timeout=remaining):
                raise RuntimeError("timed out waiting for the server banner")
            line = proc.stdout.readline()
            if not line:
                raise RuntimeError("server exited before announcing its port")
            match = BANNER.match(line)
            if match:
                return proc, match.group(1), int(match.group(2))
    finally:
        selector.close()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--epochs", type=int, default=2)
    parser.add_argument("--train-size", type=int, default=400)
    parser.add_argument("--test-size", type=int, default=100)
    parser.add_argument("--quantize-bits", type=int, default=12)
    args = parser.parse_args()

    with tempfile.TemporaryDirectory() as tmp:
        artifact = Path(tmp) / "built.npz"
        config = PipelineConfig(
            architecture="121-64F-10F",  # dense: the compress stage works
            train_size=args.train_size,
            test_size=args.test_size,
            epochs=args.epochs,
            block_size=16,
            fine_tune_epochs=1,
            quantize_bits=args.quantize_bits,
            out=artifact,
            precisions=("fp64",),
        )
        pipeline = Pipeline(config)
        result = pipeline.run()
        quantize = result.quantize
        print(
            f"build: train acc {result.train.test_accuracy:.3f} -> "
            f"compressed acc {result.compress.test_accuracy:.3f} -> "
            f"quantized acc {quantize.test_accuracy:.3f} "
            f"({args.quantize_bits}-bit, delta {quantize.accuracy_delta:+.3f}), "
            f"artifact {result.package.storage_bytes / 1024:.1f} KB (v2)"
        )
        assert artifact.exists(), "package stage wrote no artifact"

        # The float twin of the built artifact (same trained model,
        # no quantization) anchors the parity bound.
        float_deployed = DeployedModel.from_model(pipeline.model)
        loaded = DeployedModel.load(artifact)
        assert loaded.quantized and loaded.source_version == 2
        local_session = InferenceSession.from_deployed(loaded)
        bound = PARITY_FACTOR * quantize.max_weight_error

        proc, host, port = launch_server(artifact)
        try:
            x = np.random.default_rng(7).normal(size=(32, 121))
            with ServeClient(host, port) as client:
                served = client.predict_proba(x)
            expected = local_session.predict_proba(x)
            assert np.array_equal(served, expected), (
                "served quantized artifact is not bitwise-identical to a "
                "local session on the same artifact"
            )
            deviation = float(
                np.abs(served - float_deployed.predict_proba(x)).max()
            )
            assert deviation <= bound, (
                f"served-vs-float deviation {deviation:.3g} exceeds the "
                f"documented parity bound {bound:.3g}"
            )
            print(
                f"serve: bitwise vs local session OK; vs float model "
                f"{deviation:.2e} <= bound {bound:.2e} "
                f"({PARITY_FACTOR:g} x max weight error "
                f"{quantize.max_weight_error:.2e})"
            )
        finally:
            proc.terminate()
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()
    print("pipeline smoke passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
