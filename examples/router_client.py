"""Router smoke test: a 2-backend fleet, a kill, and bitwise parity.

Demonstrates (and asserts) the ``repro route`` front tier end to end:

1. deploy the paper's arch1 as an artifact,
2. launch ``repro route --spawn 2`` — the router spawns two local
   ``repro serve`` backends on ephemeral ports and fronts them on one,
3. phase 1 — a single :class:`~repro.serving.ServeClient` (the same
   client class used against a lone server: the router speaks the
   identical protocol) sends one batch, checked **bitwise** against a
   local serial :class:`~repro.runtime.InferenceSession`,
4. phase 2 — ``--clients`` concurrent
   :class:`~repro.serving.AsyncServeClient`\\ s fire ``--requests``
   batches while one backend (pid read from the router's aggregated
   ``info`` op) is SIGKILLed mid-traffic.  Every accepted request must
   come back, and come back bitwise-identical — the router replays
   requests that died with the backend on the survivor,
5. phase 3 — the router's ``info`` must report the killed backend
   ``down`` and the survivor still routable,
6. phase 4 — ``drain`` fans out to the surviving child and the router
   process exits 0 on its own.

The CI router-smoke job runs exactly this script; a non-zero exit
means the router lost a request, broke parity, or misreported health.

Usage::

    python examples/router_client.py [--clients 6] [--requests 6] [--rows 4]
"""

import argparse
import asyncio
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

SRC = Path(__file__).resolve().parent.parent / "src"
sys.path.insert(0, str(SRC))

from repro.embedded import DeployedModel  # noqa: E402
from repro.runtime import InferenceSession  # noqa: E402
from repro.serving import AsyncServeClient, ServeClient  # noqa: E402
from repro.serving.protocol import parse_banner  # noqa: E402
from repro.zoo import build_arch1  # noqa: E402


def launch_router(artifact: Path, args) -> tuple[subprocess.Popen, str, int]:
    """Start ``repro route --spawn 2`` on an ephemeral port."""
    import selectors

    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "route",
            "--spawn",
            "2",
            "--model",
            f"default={artifact}",
            "--port",
            "0",
            "--probe-interval",
            "0.2",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    selector = selectors.DefaultSelector()
    selector.register(proc.stdout, selectors.EVENT_READ)
    deadline = time.monotonic() + 120.0
    try:
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not selector.select(timeout=remaining):
                raise RuntimeError("timed out waiting for the router banner")
            line = proc.stdout.readline()
            if not line:
                raise RuntimeError("router exited before announcing its port")
            parsed = parse_banner(line)
            if parsed is not None:
                return proc, parsed[0], parsed[1]
    finally:
        selector.close()


def spawned_pids(info: dict) -> dict[str, int]:
    """address -> pid of every spawned backend in a router info reply."""
    return {
        address: desc["pid"]
        for address, desc in info["backends"].items()
        if desc.get("spawned") and desc.get("pid") is not None
    }


async def run_chaos_clients(host, port, expected_session, args) -> dict:
    """Concurrent clients; one backend is killed mid-traffic."""
    rng = np.random.default_rng(11)
    batches = [
        rng.normal(size=(args.rows, 256))
        for _ in range(args.clients * args.requests)
    ]
    expected = [expected_session.predict_proba(x) for x in batches]
    kill_at = (args.clients * args.requests) // 3
    done = 0
    killed = {"pid": None, "address": None}
    lock = asyncio.Lock()

    async def kill_one_backend(client) -> None:
        info = await client.info()
        pids = spawned_pids(info)
        assert len(pids) == 2, f"expected 2 spawned backends, got {pids}"
        address, pid = sorted(pids.items())[0]
        os.kill(pid, signal.SIGKILL)
        killed["pid"], killed["address"] = pid, address

    async def one_client(client_id: int) -> None:
        nonlocal done
        client = await AsyncServeClient.connect(host, port, retries=4)
        try:
            for request_id in range(args.requests):
                index = client_id * args.requests + request_id
                async with lock:
                    if done == kill_at and killed["pid"] is None:
                        await kill_one_backend(client)
                proba = await client.predict_proba(batches[index])
                if not np.array_equal(proba, expected[index]):
                    raise AssertionError(
                        f"client {client_id} request {request_id}: response "
                        "is not bitwise-identical to the serial session "
                        "(max abs diff "
                        f"{np.abs(proba - expected[index]).max():.3g})"
                    )
                async with lock:
                    done += 1
        finally:
            await client.close()

    start = time.perf_counter()
    await asyncio.gather(*(one_client(i) for i in range(args.clients)))
    wall = time.perf_counter() - start
    assert killed["pid"] is not None, "the kill phase never fired"
    assert done == args.clients * args.requests
    return {
        "completed": done,
        "wall_s": wall,
        "rows_per_s": done * args.rows / wall,
        "killed_address": killed["address"],
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=6)
    parser.add_argument("--requests", type=int, default=6)
    parser.add_argument("--rows", type=int, default=4)
    args = parser.parse_args()

    model = build_arch1(rng=np.random.default_rng(0)).eval()
    deployed = DeployedModel.from_model(model)
    expected_session = InferenceSession.from_deployed(deployed)

    with tempfile.TemporaryDirectory() as tmp:
        artifact = Path(tmp) / "arch1.npz"
        deployed.save(artifact)
        proc, host, port = launch_router(artifact, args)
        try:
            # Phase 1: a lone batch through the router must match the
            # serial session bitwise — the router forwards payloads as
            # opaque bytes, so there is nothing it *could* perturb.
            x = np.random.default_rng(7).normal(size=(16, 256))
            with ServeClient(host, port) as client:
                info = client.info()
                assert info.get("router") is True
                assert len(spawned_pids(info)) == 2, info["backends"]
                served = client.predict_proba(x)
            expected = expected_session.predict_proba(x)
            assert np.array_equal(served, expected), "phase 1 parity broke"
            print("phase 1: single client bitwise-identical through router")

            # Phase 2: concurrent clients, one backend SIGKILLed
            # mid-traffic.  Zero lost requests, all bitwise.
            summary = asyncio.run(
                run_chaos_clients(host, port, expected_session, args)
            )
            print(
                f"phase 2: {args.clients} clients x {args.requests} requests "
                f"— killed backend {summary['killed_address']} mid-traffic, "
                f"{summary['completed']}/{summary['completed']} completed "
                f"bitwise at {summary['rows_per_s']:.0f} rows/s"
            )

            # Phase 3: the router's info must have noticed the death.
            with ServeClient(host, port) as client:
                deadline = time.monotonic() + 10.0
                while True:
                    info = client.info()
                    state = info["backends"][summary["killed_address"]][
                        "state"
                    ]
                    if state == "down":
                        break
                    if time.monotonic() > deadline:
                        raise AssertionError(
                            f"killed backend never reported down: {state}"
                        )
                    time.sleep(0.1)
                health = info["health"]
                assert health["backends_routable"] >= 1, health
                # Traffic still flows on the survivor.
                tail = client.predict_proba(x)
                assert np.array_equal(tail, expected)
            print(
                "phase 3: router info reports the killed backend down, "
                "survivor still serving bitwise"
            )

            # Phase 4: drain — the surviving child is drained and the
            # router exits 0 on its own.
            with ServeClient(host, port) as client:
                reply = client.drain()
                assert reply.get("draining") is True, reply
            code = proc.wait(timeout=60)
            assert code == 0, f"router exited {code} after drain"
            print("phase 4: drain fanned out, router exited cleanly")
        finally:
            if proc.poll() is None:
                proc.terminate()
                try:
                    proc.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    proc.kill()
    print("router smoke: all phases passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
