"""Tests for the command-line interface (Fig. 4 workflow as a tool)."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.data import bilinear_resize, flatten_images, load_synthetic_mnist
from repro.io import save_inputs

ARCH = "121-64CFb32-64CFb32-10F"


@pytest.fixture(scope="module")
def data_files(tmp_path_factory):
    root = tmp_path_factory.mktemp("cli")
    train, test = load_synthetic_mnist(train_size=300, test_size=80, seed=0)

    def preprocess(images):
        return flatten_images(bilinear_resize(images, 11, 11))

    train_path = root / "train.npz"
    test_path = root / "test.npz"
    save_inputs(train_path, preprocess(train.inputs), train.labels)
    save_inputs(test_path, preprocess(test.inputs), test.labels)
    return root, train_path, test_path


@pytest.fixture(scope="module")
def trained_checkpoint(data_files):
    root, train_path, _ = data_files
    checkpoint = root / "ckpt.npz"
    code = main([
        "train", ARCH, "--data", str(train_path), "--out", str(checkpoint),
        "--epochs", "4", "--lr", "0.005",
    ])
    assert code == 0
    return checkpoint


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_args(self):
        args = build_parser().parse_args(
            ["train", ARCH, "--data", "d.npz", "--out", "o.npz"]
        )
        assert args.command == "train"
        assert args.epochs == 10

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explode"])


class TestTrain:
    def test_creates_checkpoint(self, trained_checkpoint):
        assert trained_checkpoint.exists()

    def test_missing_labels_fails(self, data_files, capsys):
        root, _, _ = data_files
        unlabeled = root / "unlabeled.npz"
        save_inputs(unlabeled, np.zeros((4, 121)))
        code = main([
            "train", ARCH, "--data", str(unlabeled),
            "--out", str(root / "x.npz"),
        ])
        assert code == 2


class TestDeployPredict:
    def test_deploy_then_predict(self, data_files, trained_checkpoint, capsys):
        root, _, test_path = data_files
        artifact = root / "model.npz"
        assert main([
            "deploy", ARCH, "--weights", str(trained_checkpoint),
            "--out", str(artifact),
        ]) == 0
        assert artifact.exists()
        capsys.readouterr()

        assert main(["predict", str(artifact), "--data", str(test_path)]) == 0
        captured = capsys.readouterr()
        predictions = captured.out.strip().splitlines()[0].split()
        assert len(predictions) == 80
        assert all(p.isdigit() and 0 <= int(p) <= 9 for p in predictions)
        assert "accuracy:" in captured.err

    def test_predict_proba(self, data_files, trained_checkpoint, capsys):
        root, _, test_path = data_files
        artifact = root / "model2.npz"
        main(["deploy", ARCH, "--weights", str(trained_checkpoint),
              "--out", str(artifact)])
        capsys.readouterr()
        assert main([
            "predict", str(artifact), "--data", str(test_path), "--proba"
        ]) == 0
        first_row = capsys.readouterr().out.strip().splitlines()[0].split()
        values = [float(v) for v in first_row]
        assert len(values) == 10
        assert sum(values) == pytest.approx(1.0, abs=1e-3)


class TestProfileInfo:
    def test_profile_lists_all_cells(self, capsys):
        assert main(["profile", ARCH]) == 0
        out = capsys.readouterr().out
        for platform in ("nexus5", "xu3", "honor6x"):
            assert out.count(platform) == 2  # java + cpp rows

    def test_profile_battery_flag(self, capsys):
        assert main(["profile", ARCH, "--battery"]) == 0
        assert "(battery)" in capsys.readouterr().out

    def test_info_reports_compression(self, capsys):
        assert main(["info", ARCH]) == 0
        out = capsys.readouterr().out
        assert "total:" in out
        assert "x" in out.splitlines()[-1]
