"""Tests for the command-line interface (Fig. 4 workflow as a tool)."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.data import bilinear_resize, flatten_images, load_synthetic_mnist
from repro.io import save_inputs

ARCH = "121-64CFb32-64CFb32-10F"


@pytest.fixture(scope="module")
def data_files(tmp_path_factory):
    root = tmp_path_factory.mktemp("cli")
    train, test = load_synthetic_mnist(train_size=300, test_size=80, seed=0)

    def preprocess(images):
        return flatten_images(bilinear_resize(images, 11, 11))

    train_path = root / "train.npz"
    test_path = root / "test.npz"
    save_inputs(train_path, preprocess(train.inputs), train.labels)
    save_inputs(test_path, preprocess(test.inputs), test.labels)
    return root, train_path, test_path


@pytest.fixture(scope="module")
def trained_checkpoint(data_files):
    root, train_path, _ = data_files
    checkpoint = root / "ckpt.npz"
    code = main([
        "train", ARCH, "--data", str(train_path), "--out", str(checkpoint),
        "--epochs", "4", "--lr", "0.005",
    ])
    assert code == 0
    return checkpoint


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_args(self):
        args = build_parser().parse_args(
            ["train", ARCH, "--data", "d.npz", "--out", "o.npz"]
        )
        assert args.command == "train"
        assert args.epochs == 10

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explode"])

    def test_serve_args(self):
        args = build_parser().parse_args(
            ["serve", "model.npz", "--port", "0", "--workers", "2",
             "--transport", "shm", "--max-batch", "8"]
        )
        assert args.command == "serve"
        assert args.port == 0
        assert args.workers == 2
        assert args.transport == "shm"
        assert args.max_batch == 8
        assert args.max_wait_ms == 2.0

    def test_serve_rejects_bad_transport(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["serve", "model.npz", "--transport", "smoke-signals"]
            )


class TestTrain:
    def test_creates_checkpoint(self, trained_checkpoint):
        assert trained_checkpoint.exists()

    def test_missing_labels_fails(self, data_files, capsys):
        root, _, _ = data_files
        unlabeled = root / "unlabeled.npz"
        save_inputs(unlabeled, np.zeros((4, 121)))
        code = main([
            "train", ARCH, "--data", str(unlabeled),
            "--out", str(root / "x.npz"),
        ])
        assert code == 2


class TestDeployPredict:
    def test_deploy_then_predict(self, data_files, trained_checkpoint, capsys):
        root, _, test_path = data_files
        artifact = root / "model.npz"
        assert main([
            "deploy", ARCH, "--weights", str(trained_checkpoint),
            "--out", str(artifact),
        ]) == 0
        assert artifact.exists()
        capsys.readouterr()

        assert main(["predict", str(artifact), "--data", str(test_path)]) == 0
        captured = capsys.readouterr()
        predictions = captured.out.strip().splitlines()[0].split()
        assert len(predictions) == 80
        assert all(p.isdigit() and 0 <= int(p) <= 9 for p in predictions)
        assert "accuracy:" in captured.err

    def test_predict_proba(self, data_files, trained_checkpoint, capsys):
        root, _, test_path = data_files
        artifact = root / "model2.npz"
        main(["deploy", ARCH, "--weights", str(trained_checkpoint),
              "--out", str(artifact)])
        capsys.readouterr()
        assert main([
            "predict", str(artifact), "--data", str(test_path), "--proba"
        ]) == 0
        first_row = capsys.readouterr().out.strip().splitlines()[0].split()
        values = [float(v) for v in first_row]
        assert len(values) == 10
        assert sum(values) == pytest.approx(1.0, abs=1e-3)


class TestWorkersFallback:
    def test_single_cpu_host_warns_and_runs_serial(
        self, data_files, trained_checkpoint, capsys, monkeypatch
    ):
        import os

        root, _, test_path = data_files
        artifact = root / "model_workers.npz"
        main(["deploy", ARCH, "--weights", str(trained_checkpoint),
              "--out", str(artifact)])
        capsys.readouterr()
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        assert main([
            "predict", str(artifact), "--data", str(test_path),
            "--workers", "4",
        ]) == 0
        captured = capsys.readouterr()
        assert "single CPU" in captured.err
        assert "running serial" in captured.err
        # Predictions still came out on the serial path.
        assert len(captured.out.strip().splitlines()[0].split()) == 80

    def test_multi_cpu_host_keeps_workers(self, monkeypatch):
        # The clamp counts *schedulable* cores (sched_getaffinity), not
        # the host total — a 1-core cgroup on a big machine must clamp.
        import repro.cli as cli_mod
        import repro.runtime.executors as executors_mod

        monkeypatch.setattr(executors_mod, "effective_cpu_count", lambda: 8)
        assert cli_mod._effective_workers(4) == 4
        monkeypatch.setattr(executors_mod, "effective_cpu_count", lambda: 1)
        assert cli_mod._effective_workers(4) == 1
        assert cli_mod._effective_workers(1) == 1

    def test_runtime_helper_warns(self, monkeypatch):
        import repro.runtime.executors as executors_mod
        from repro.runtime.executors import effective_workers

        monkeypatch.setattr(executors_mod, "effective_cpu_count", lambda: 1)
        with pytest.warns(RuntimeWarning, match="single CPU"):
            assert effective_workers(4) == 1
        monkeypatch.setattr(executors_mod, "effective_cpu_count", lambda: 8)
        assert effective_workers(4) == 4


class TestServeCommand:
    def test_serve_end_to_end(self, data_files, trained_checkpoint):
        import os
        import re
        import subprocess
        import sys as _sys

        root, _, test_path = data_files
        artifact = root / "model_serve.npz"
        assert main([
            "deploy", ARCH, "--weights", str(trained_checkpoint),
            "--out", str(artifact),
        ]) == 0

        from pathlib import Path

        import repro

        src = str(Path(repro.__file__).resolve().parent.parent)
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [_sys.executable, "-m", "repro", "serve", str(artifact),
             "--port", "0", "--max-batch", "8"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
            env=env,
        )
        try:
            banner = proc.stdout.readline()
            match = re.match(r"serving on (\S+):(\d+)", banner)
            assert match, f"unexpected banner: {banner!r}"
            from repro.io import load_inputs
            from repro.embedded import DeployedModel
            from repro.serving import ServeClient

            inputs, _ = load_inputs(test_path)
            from repro.engine import Engine

            engine = Engine(model=DeployedModel.load(artifact))
            session = engine.session()
            with ServeClient(match.group(1), int(match.group(2))) as client:
                assert client.ping()
                served = client.predict_proba(inputs)
                labels = client.predict(inputs)
            assert np.array_equal(served, session.predict_proba(inputs))
            assert np.array_equal(labels, session.predict(inputs))
        finally:
            proc.terminate()
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()


class TestProfileInfo:
    def test_profile_lists_all_cells(self, capsys):
        assert main(["profile", ARCH]) == 0
        out = capsys.readouterr().out
        for platform in ("nexus5", "xu3", "honor6x"):
            assert out.count(platform) == 2  # java + cpp rows

    def test_profile_battery_flag(self, capsys):
        assert main(["profile", ARCH, "--battery"]) == 0
        assert "(battery)" in capsys.readouterr().out

    def test_info_reports_compression(self, capsys):
        assert main(["info", ARCH]) == 0
        out = capsys.readouterr().out
        assert "total:" in out
        assert "x" in out.splitlines()[-1]


class TestServeEngineFlags:
    """The engine-era serve surface: --model name=path, --precisions."""

    def test_repeatable_model_flag_parses(self):
        args = build_parser().parse_args(
            ["serve", "--model", "mnist=a.npz", "--model", "cifar=b.npz",
             "--precisions", "fp64,fp32"]
        )
        assert args.model is None
        assert args.models == ["mnist=a.npz", "cifar=b.npz"]
        assert args.precisions == "fp64,fp32"

    def test_positional_artifact_still_accepted(self):
        args = build_parser().parse_args(["serve", "model.npz"])
        assert args.model == "model.npz"
        assert args.models == []
        assert args.precisions is None

    def test_no_model_is_an_error(self, capsys):
        assert main(["serve"]) == 2
        assert "no model" in capsys.readouterr().err

    def test_registry_parsing(self):
        from types import SimpleNamespace

        from repro.cli import _parse_model_registry

        args = SimpleNamespace(model=None,
                               models=["a=x.npz", "b=y.npz"])
        models, default = _parse_model_registry(args)
        assert models == {"a": "x.npz", "b": "y.npz"}
        assert default == "a"
        # A bare --model PATH registers as the default name.
        args = SimpleNamespace(model=None, models=["plain.npz"])
        models, default = _parse_model_registry(args)
        assert default in models and models[default] == "plain.npz"
        # Duplicates are rejected.
        args = SimpleNamespace(model="pos.npz", models=["lone.npz"])
        with pytest.raises(ValueError, match="twice"):
            _parse_model_registry(args)

    def test_multi_model_serve_end_to_end(self, data_files,
                                          trained_checkpoint, tmp_path):
        # Two names backed by the same artifact, served from one port,
        # routed per request; fp32 requests hit the pooled fp32 session.
        root, _, test_path = data_files
        artifact = root / "model_multi.npz"
        assert main([
            "deploy", ARCH, "--weights", str(trained_checkpoint),
            "--out", str(artifact),
        ]) == 0

        import os
        import re
        import subprocess
        import sys as _sys
        from pathlib import Path

        import repro

        src = str(Path(repro.__file__).resolve().parent.parent)
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [_sys.executable, "-m", "repro", "serve",
             "--model", f"alpha={artifact}",
             "--model", f"beta={artifact}",
             "--precisions", "fp64,fp32",
             "--port", "0"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
            env=env,
        )
        try:
            banner = proc.stdout.readline()
            match = re.match(r"serving on (\S+):(\d+)", banner)
            assert match, f"unexpected banner: {banner!r}"
            from repro.embedded import DeployedModel
            from repro.engine import Engine
            from repro.io import load_inputs
            from repro.serving import ServeClient

            inputs, _ = load_inputs(test_path)
            with Engine(model=DeployedModel.load(artifact),
                        precisions=("fp64", "fp32")) as engine:
                expected64 = engine.predict_proba(inputs)
                expected32 = engine.predict_proba(inputs, precision="fp32")
                with ServeClient(match.group(1), int(match.group(2))) as c:
                    a64 = c.predict_proba(inputs, model="alpha")
                    b64 = c.predict_proba(inputs, model="beta")
                    a32 = c.predict_proba(inputs, model="alpha",
                                          precision="fp32")
                assert np.array_equal(a64, expected64)
                assert np.array_equal(b64, expected64)
                assert a32.dtype == np.float32
                assert np.array_equal(a32, expected32)
        finally:
            proc.terminate()
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()


class TestServePrecisionFlags:
    def test_bad_precisions_value_errors_cleanly(self, capsys):
        assert main(["serve", "m.npz", "--precisions", "fp16"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_duplicate_precisions_error_cleanly(self, capsys):
        assert main(["serve", "m.npz", "--precisions", "fp64,fp64"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_comma_only_precisions_error_cleanly(self, capsys):
        assert main(["serve", "m.npz", "--precisions", ","]) == 2
        assert "at least one precision" in capsys.readouterr().err

    def test_precisions_alone_sets_pool_and_default(self, monkeypatch):
        # --precisions fp32 with no --precision must NOT re-add fp64:
        # the pool is exactly fp32 and fp32 is the default.
        captured = {}

        from repro.engine import Engine

        def fake_serve(self, host="127.0.0.1", port=None, on_ready=None):
            captured["precisions"] = self.config.precisions
            captured["precision"] = self.config.precision

        monkeypatch.setattr(Engine, "serve", fake_serve)
        monkeypatch.setattr(Engine, "load_sources", lambda self: self)
        assert main(["serve", "m.npz", "--precisions", "fp32"]) == 0
        assert captured["precisions"] == ("fp32",)
        assert captured["precision"] == "fp32"

    def test_explicit_precision_joins_the_pool(self, monkeypatch):
        captured = {}

        from repro.engine import Engine

        def fake_serve(self, host="127.0.0.1", port=None, on_ready=None):
            captured["precisions"] = self.config.precisions
            captured["precision"] = self.config.precision

        monkeypatch.setattr(Engine, "serve", fake_serve)
        monkeypatch.setattr(Engine, "load_sources", lambda self: self)
        assert main(["serve", "m.npz", "--precisions", "fp32",
                     "--precision", "fp64"]) == 0
        assert captured["precisions"] == ("fp64", "fp32")
        assert captured["precision"] == "fp64"


class TestServeFaultSurface:
    def test_port_collision_exits_2_with_clean_error(self, monkeypatch,
                                                     capsys):
        import socket

        from repro.engine import Engine

        holder = socket.socket()
        holder.bind(("127.0.0.1", 0))
        holder.listen(1)
        busy_port = holder.getsockname()[1]

        def fake_serve(self, host="127.0.0.1", port=None, on_ready=None):
            probe = socket.socket()
            probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            try:
                probe.bind((host, port))
            finally:
                probe.close()

        monkeypatch.setattr(Engine, "serve", fake_serve)
        monkeypatch.setattr(Engine, "load_sources", lambda self: self)
        try:
            assert main(["serve", "m.npz", "--port", str(busy_port)]) == 2
        finally:
            holder.close()
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_bad_fault_spec_exits_2(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_FAULTS", "*3")
        assert main(["serve", "m.npz"]) == 2
        assert "bad REPRO_FAULTS" in capsys.readouterr().err

    def test_fault_spec_armed_before_engine(self, monkeypatch):
        from repro.engine import Engine
        from repro.testing import faults

        captured = {}

        def fake_serve(self, host="127.0.0.1", port=None, on_ready=None):
            captured["armed"] = faults.is_armed("server.delay_response")

        monkeypatch.setenv(
            "REPRO_FAULTS", "server.delay_response:seconds=0.01"
        )
        monkeypatch.setattr(Engine, "serve", fake_serve)
        monkeypatch.setattr(Engine, "load_sources", lambda self: self)
        try:
            assert main(["serve", "m.npz"]) == 0
        finally:
            faults.reset()
        assert captured["armed"] is True


class TestBuildCommand:
    def test_list_archs(self, capsys):
        assert main(["build", "--list-archs"]) == 0
        out = capsys.readouterr().out
        for name in ("arch1", "arch2", "arch3", "arch3_reduced"):
            assert name in out

    def test_build_flags_end_to_end(self, tmp_path, capsys):
        out = tmp_path / "built.npz"
        assert main([
            "build", "--arch", "arch2", "--train-size", "80",
            "--test-size", "30", "--epochs", "1",
            "--quantize-bits", "12", "--out", str(out),
        ]) == 0
        assert out.exists()
        captured = capsys.readouterr().out
        assert "train:" in captured
        assert "quantize: 12-bit" in captured
        assert "format v2" in captured

    def test_build_config_file_with_flag_override(self, tmp_path, capsys):
        import json

        config = tmp_path / "cfg.json"
        config.write_text(json.dumps({
            "architecture": "16-8F-10F",
            "train_size": 60, "test_size": 24,
            "epochs": 5, "block_size": 4,
        }))
        out = tmp_path / "built.npz"
        assert main([
            "build", "--config", str(config),
            "--epochs", "1", "--out", str(out),
        ]) == 0
        captured = capsys.readouterr().out
        assert "train: 1 epochs" in captured  # flag overrode the file
        assert "compress: block 4" in captured
        assert "quantize: skipped" in captured

    def test_bad_arch_fails_cleanly(self, capsys):
        assert main(["build", "--arch", "not-an-arch!!"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_arch_fails_cleanly(self, capsys):
        assert main(["build"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_unwritable_out_fails_before_training(self, capsys):
        # The output path is probed up front: no epochs are spent, and
        # the failure is the CLI's clean `error:` contract, not a
        # traceback after the run.
        assert main([
            "build", "--arch", "arch2", "--train-size", "50000000",
            "--epochs", "1000",
            "--out", "/proc/definitely/not/writable/x.npz",
        ]) == 2
        captured = capsys.readouterr()
        assert "error:" in captured.err
        assert "train:" not in captured.out  # never started training


class TestInspectCommand:
    @pytest.fixture(scope="class")
    def built_artifact(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("inspect") / "built.npz"
        assert main([
            "build", "--arch", "arch2", "--train-size", "60",
            "--test-size", "24", "--epochs", "1",
            "--quantize-bits", "12", "--out", str(out),
            "--precisions", "fp64,fp32",
        ]) == 0
        return out

    def test_inspect_table(self, built_artifact, capsys):
        capsys.readouterr()
        assert main(["inspect", str(built_artifact)]) == 0
        out = capsys.readouterr().out
        assert "format: v2 (quantized)" in out
        assert "bc_linear" in out
        assert "Q" in out  # qformat column
        assert "config hash" in out
        assert "target precisions: fp64,fp32" in out

    def test_inspect_json(self, built_artifact, capsys):
        import json

        capsys.readouterr()
        assert main(["inspect", str(built_artifact), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 2
        assert payload["quantized"] is True
        assert payload["metadata"]["quantization"]["total_bits"] == 12

    def test_inspect_v1_artifact(self, data_files, trained_checkpoint,
                                 capsys, tmp_path):
        artifact = tmp_path / "v1_style.npz"
        assert main([
            "deploy", ARCH, "--weights", str(trained_checkpoint),
            "--out", str(artifact),
        ]) == 0
        capsys.readouterr()
        assert main(["inspect", str(artifact)]) == 0
        out = capsys.readouterr().out
        assert "format: v2" in out  # deploy now writes v2 (unquantized)
        assert "(quantized)" not in out

    def test_inspect_missing_file(self, capsys):
        assert main(["inspect", "/tmp/definitely-absent.npz"]) == 2
        assert "error:" in capsys.readouterr().err


class TestServeFailFast:
    def test_missing_artifact_exits_cleanly_before_banner(self, capsys):
        assert main(["serve", "/tmp/definitely-missing.npz",
                     "--port", "0"]) == 2
        captured = capsys.readouterr()
        assert "error:" in captured.err
        assert "serving on" not in captured.out  # never looked ready
