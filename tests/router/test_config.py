"""RouterConfig / parse_address validation."""

import pytest

from repro.exceptions import ConfigurationError
from repro.router import RouterConfig, parse_address


class TestParseAddress:
    def test_host_port(self):
        assert parse_address("10.0.0.7:7341") == ("10.0.0.7", 7341)

    def test_hostname(self):
        assert parse_address("backend-3.local:80") == ("backend-3.local", 80)

    def test_bracketed_ipv6_uses_last_colon(self):
        assert parse_address("[::1]:7341") == ("::1", 7341)

    @pytest.mark.parametrize(
        "bad",
        ["", "nohost", "host:", "host:abc", "host:0", "host:70000", ":7341"],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            parse_address(bad)


class TestRouterConfig:
    def test_static_backends(self):
        config = RouterConfig(backends=("a:1", "b:2"))
        assert config.backends == ("a:1", "b:2")
        assert config.spawn == 0

    def test_list_backends_coerced_to_tuple(self):
        config = RouterConfig(backends=["a:1"])
        assert config.backends == ("a:1",)

    def test_bare_string_backends_rejected(self):
        # A string would iterate per character into nonsense addresses.
        with pytest.raises(ConfigurationError, match="single string"):
            RouterConfig(backends="127.0.0.1:7341")

    def test_duplicate_backends_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            RouterConfig(backends=("a:1", "a:1"))

    def test_malformed_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            RouterConfig(backends=("nocolon",))

    def test_empty_fleet_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one backend"):
            RouterConfig()

    def test_spawn_needs_models(self):
        with pytest.raises(ConfigurationError, match="model registry"):
            RouterConfig(spawn=2)

    def test_models_need_spawn(self):
        with pytest.raises(ConfigurationError, match="spawn"):
            RouterConfig(backends=("a:1",), models={"m": "p.npz"})

    def test_spawn_fleet(self):
        config = RouterConfig(spawn=3, models={"default": "m.npz"})
        assert config.spawn == 3
        assert config.backends == ()

    def test_negative_spawn_rejected(self):
        with pytest.raises(ConfigurationError):
            RouterConfig(spawn=-1, models={"m": "p"})

    def test_bad_timeouts_rejected(self):
        for field in (
            "probe_interval_s",
            "probe_timeout_s",
            "connect_timeout_s",
            "request_timeout_s",
        ):
            with pytest.raises(ConfigurationError, match=field):
                RouterConfig(backends=("a:1",), **{field: 0})

    def test_bad_pool_and_attempts_rejected(self):
        with pytest.raises(ConfigurationError, match="pool_size"):
            RouterConfig(backends=("a:1",), pool_size=0)
        with pytest.raises(ConfigurationError, match="max_attempts"):
            RouterConfig(backends=("a:1",), max_attempts=0)

    def test_empty_spawn_precisions_rejected(self):
        with pytest.raises(ConfigurationError, match="spawn_precisions"):
            RouterConfig(spawn=1, models={"m": "p"}, spawn_precisions=())

    def test_describe_is_json_able(self):
        import json

        config = RouterConfig(
            backends=("a:1",),
            spawn=0,
        )
        assert json.loads(json.dumps(config.describe()))["backends"] == ["a:1"]


class TestBuildServeCommand:
    def test_command_shape(self):
        from repro.router import build_serve_command

        config = RouterConfig(
            spawn=2,
            models={"default": "m.npz", "alt": "n.npz"},
            spawn_precisions=("fp64", "fp32"),
            spawn_args=("--max-batch", "64"),
        )
        command = build_serve_command(config)
        assert command[1:5] == ["-m", "repro", "serve", "--port"]
        assert command[5] == "0"
        assert "--model" in command
        assert "default=m.npz" in command and "alt=n.npz" in command
        assert command[command.index("--precisions") + 1] == "fp64,fp32"
        assert command[-2:] == ["--max-batch", "64"]
