"""RouterServer e2e: parity, failover semantics, health, drain, faults.

The failover tests drive the router against *stub* backends — tiny
in-process asyncio servers speaking the real frame protocol with
scripted predict behavior (die mid-request, shed with a retry hint,
expire deadlines) — so each semantic case is deterministic.  Parity
tests front real :class:`~repro.serving.InferenceServer`\\ s.
"""

import asyncio
import random

import numpy as np
import pytest

from repro.engine import Engine
from repro.exceptions import Overloaded, ServerUnavailable, ServingError
from repro.serving.batcher import DeadlineExpired
from repro.nn import BlockCirculantLinear, Linear, ReLU, Sequential
from repro.runtime import InferenceSession
from repro.serving import AsyncServeClient, InferenceServer
from repro.serving.protocol import pack_array, read_frame, send_frame
from repro.router import (
    DOWN,
    PlacementPolicy,
    RouterConfig,
    RouterServer,
)
from repro.testing import faults


def small_model():
    rng = np.random.default_rng(0)
    return Sequential(
        BlockCirculantLinear(96, 64, 8, rng=rng),
        ReLU(),
        Linear(64, 10, rng=rng),
    ).eval()


@pytest.fixture(autouse=True)
def clean_faults():
    faults.reset()
    yield
    faults.reset()


class StubBackend:
    """Frame-protocol fake with scripted predict behavior.

    ``behavior``: ``"ok"`` answers a canned array, ``"die"`` closes the
    connection mid-request, ``"overloaded"`` sheds with
    ``retry_after_ms``, ``"deadline"`` answers ``deadline_expired``,
    ``"error"`` answers an untyped error.  ``info`` always answers
    healthy so the stub is routable.
    """

    def __init__(self, behavior="ok", models=("default",),
                 precisions=("fp64",), retry_after_ms=None):
        self.behavior = behavior
        self.models = list(models)
        self.precisions = list(precisions)
        self.retry_after_ms = retry_after_ms
        self.predicts = 0
        self._server = None
        self.port = None

    async def __aenter__(self):
        self._server = await asyncio.start_server(
            self._handle, "127.0.0.1", 0
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def __aexit__(self, *exc):
        self._server.close()
        await self._server.wait_closed()

    @property
    def address(self):
        return f"127.0.0.1:{self.port}"

    async def _handle(self, reader, writer):
        try:
            while True:
                try:
                    header, _ = await read_frame(reader)
                except (asyncio.IncompleteReadError, ConnectionError):
                    return
                if header.get("op") == "info":
                    await send_frame(writer, {
                        "status": "ok",
                        "op": "info",
                        "models": self.models,
                        "precisions": self.precisions,
                        "health": {
                            "draining": False,
                            "degraded": False,
                            "queued_rows": 0,
                            "batch_ms_ema": 0.0,
                            "shed": 0,
                        },
                    })
                    continue
                self.predicts += 1
                if self.behavior == "die":
                    return  # close mid-request: transport failure
                if self.behavior == "overloaded":
                    response = {
                        "status": "error",
                        "code": "overloaded",
                        "message": "stub shed",
                    }
                    if self.retry_after_ms is not None:
                        response["retry_after_ms"] = self.retry_after_ms
                    await send_frame(writer, response)
                elif self.behavior == "deadline":
                    await send_frame(writer, {
                        "status": "error",
                        "code": "deadline_expired",
                        "message": "stub deadline",
                    })
                elif self.behavior == "error":
                    await send_frame(writer, {
                        "status": "error",
                        "message": "stub exploded",
                    })
                else:
                    await send_frame(
                        writer,
                        {"status": "ok", "op": "predict_proba"},
                        pack_array(np.zeros((1, 2))),
                    )
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except BaseException:
                pass


async def start_router(addresses, **config_kw):
    config_kw.setdefault("probe_interval_s", 0.05)
    config = RouterConfig(backends=tuple(addresses), **config_kw)
    router = RouterServer(config, policy=PlacementPolicy(random.Random(0)))
    await router.start()
    return router


def make_sticky(router, address, model=None, precision=None):
    """Pin the next placement (ties go sticky) to one backend."""
    handle = next(b for b in router.backends if b.address == address)
    router.policy.choose([handle], model, precision)


class TestRouterE2E:
    def test_parity_two_real_backends_bitwise(self, rng):
        model = small_model()
        expected_session = InferenceSession.freeze(model)
        x = rng.normal(size=(12, 96))
        expected = expected_session.predict_proba(x)

        async def main():
            async with InferenceServer(Engine(model=model), port=0) as s1, \
                    InferenceServer(Engine(model=model), port=0) as s2:
                router = await start_router(
                    [f"127.0.0.1:{s1.port}", f"127.0.0.1:{s2.port}"]
                )
                try:
                    client = await AsyncServeClient.connect("127.0.0.1", router.port)
                    try:
                        results = [
                            await client.predict_proba(x) for _ in range(6)
                        ]
                        labels = await client.predict(x)
                    finally:
                        await client.close()
                    return results, labels
                finally:
                    await router.stop()

        results, labels = asyncio.run(main())
        for proba in results:
            assert np.array_equal(proba, expected)
        assert np.array_equal(labels, expected.argmax(axis=-1))

    def test_info_aggregates_fleet(self, rng):
        model = small_model()

        async def main():
            async with InferenceServer(Engine(model=model), port=0) as s1, \
                    InferenceServer(Engine(model=model), port=0) as s2:
                addresses = [f"127.0.0.1:{s1.port}", f"127.0.0.1:{s2.port}"]
                router = await start_router(addresses)
                try:
                    client = await AsyncServeClient.connect("127.0.0.1", router.port)
                    try:
                        await client.predict_proba(rng.normal(size=(4, 96)))
                        info = await client.info()
                    finally:
                        await client.close()
                    return addresses, info
                finally:
                    await router.stop()

        addresses, info = asyncio.run(main())
        assert info["router"] is True
        assert set(info["backends"]) == set(addresses)
        for desc in info["backends"].values():
            assert desc["state"] == "healthy"
            assert "default" in desc["models"]
        health = info["health"]
        assert health["backends_total"] == 2
        assert health["backends_routable"] == 2
        assert health["draining"] is False
        assert info["stats"]["forwards"] == 1
        assert "default" in info["models"]

    def test_ping(self):
        async def main():
            async with StubBackend() as stub:
                router = await start_router([stub.address])
                try:
                    client = await AsyncServeClient.connect("127.0.0.1", router.port)
                    try:
                        return await client.ping()
                    finally:
                        await client.close()
                finally:
                    await router.stop()

        assert asyncio.run(main()) is True


class TestFailover:
    def test_backend_death_replays_on_survivor_bitwise(self):
        """A backend dying mid-request is invisible to the client."""
        model = small_model()

        async def main():
            rows = np.random.default_rng(12345).normal(size=(8, 96))
            async with StubBackend(behavior="die") as stub, \
                    InferenceServer(Engine(model=model), port=0) as real:
                router = await start_router(
                    [stub.address, f"127.0.0.1:{real.port}"]
                )
                try:
                    make_sticky(router, stub.address)
                    client = await AsyncServeClient.connect(
                        "127.0.0.1", router.port, retries=0
                    )
                    try:
                        proba = await client.predict_proba(rows)
                    finally:
                        await client.close()
                    stub_handle = next(
                        b for b in router.backends
                        if b.address == stub.address
                    )
                    return (
                        proba,
                        stub.predicts,
                        stub_handle.state,
                        dict(router.stats),
                    )
                finally:
                    await router.stop()

        proba, stub_predicts, stub_state, stats = asyncio.run(main())
        rows = np.random.default_rng(12345).normal(size=(8, 96))
        assert np.array_equal(
            proba, InferenceSession.freeze(model).predict_proba(rows)
        )
        assert stub_predicts == 1  # the doomed attempt
        assert stub_state == DOWN  # marked down on the transport failure
        assert stats["replays"] == 1
        assert stats["forwards"] == 1

    def test_all_backends_shedding_propagates_max_retry_after(self):
        async def main():
            async with StubBackend("overloaded", retry_after_ms=40.0) as a, \
                    StubBackend("overloaded", retry_after_ms=90.0) as b:
                router = await start_router([a.address, b.address])
                try:
                    client = await AsyncServeClient.connect(
                        "127.0.0.1", router.port, retries=0
                    )
                    try:
                        with pytest.raises(Overloaded) as excinfo:
                            await client.predict_proba(np.zeros((2, 4)))
                    finally:
                        await client.close()
                    return (
                        excinfo.value.retry_after_ms,
                        a.predicts + b.predicts,
                        dict(router.stats),
                    )
                finally:
                    await router.stop()

        retry_after_ms, total_predicts, stats = asyncio.run(main())
        # The honest hint is the max across the shedding fleet.
        assert retry_after_ms == 90.0
        assert total_predicts == 2  # both candidates were tried
        assert stats["shed_all"] == 1

    def test_deadline_expired_never_replayed(self):
        async def main():
            async with StubBackend("deadline") as doomed, \
                    StubBackend("ok") as healthy:
                router = await start_router([doomed.address, healthy.address])
                try:
                    make_sticky(router, doomed.address)
                    client = await AsyncServeClient.connect(
                        "127.0.0.1", router.port, retries=0
                    )
                    try:
                        with pytest.raises(DeadlineExpired):
                            await client.predict_proba(np.zeros((2, 4)))
                    finally:
                        await client.close()
                    return doomed.predicts, healthy.predicts
                finally:
                    await router.stop()

        doomed_predicts, healthy_predicts = asyncio.run(main())
        # Exactly one backend saw the request: an expired deadline is no
        # less expired on the next backend.
        assert doomed_predicts == 1
        assert healthy_predicts == 0

    def test_untyped_error_relayed_without_retry(self):
        async def main():
            async with StubBackend("error") as bad, \
                    StubBackend("ok") as good:
                router = await start_router([bad.address, good.address])
                try:
                    make_sticky(router, bad.address)
                    client = await AsyncServeClient.connect(
                        "127.0.0.1", router.port, retries=0
                    )
                    try:
                        with pytest.raises(ServingError, match="exploded"):
                            await client.predict_proba(np.zeros((2, 4)))
                    finally:
                        await client.close()
                    return bad.predicts, good.predicts
                finally:
                    await router.stop()

        bad_predicts, good_predicts = asyncio.run(main())
        assert bad_predicts == 1
        assert good_predicts == 0

    def test_unknown_model_yields_clean_error(self, rng):
        model = small_model()

        async def main():
            async with InferenceServer(Engine(model=model), port=0) as real:
                router = await start_router([f"127.0.0.1:{real.port}"])
                try:
                    client = await AsyncServeClient.connect(
                        "127.0.0.1", router.port, retries=0
                    )
                    try:
                        with pytest.raises(ServingError, match="missing"):
                            await client.predict_proba(
                                rng.normal(size=(2, 96)), model="missing"
                            )
                    finally:
                        await client.close()
                finally:
                    await router.stop()

        asyncio.run(main())

    def test_all_backends_down_yields_server_unavailable(self):
        async def main():
            async with StubBackend("die") as a, StubBackend("die") as b:
                router = await start_router([a.address, b.address])
                try:
                    client = await AsyncServeClient.connect(
                        "127.0.0.1", router.port, retries=0
                    )
                    try:
                        with pytest.raises(ServerUnavailable):
                            await client.predict_proba(np.zeros((2, 4)))
                    finally:
                        await client.close()
                    return a.predicts + b.predicts
                finally:
                    await router.stop()

        assert asyncio.run(main()) == 2  # both were tried before giving up

    def test_probe_revives_downed_backend(self):
        """A backend marked down by a forward failure comes back once a
        probe succeeds (the stub dies on predict but answers info)."""

        async def main():
            async with StubBackend("die") as stub:
                router = await start_router(
                    [stub.address], probe_interval_s=0.05
                )
                try:
                    handle = router.backends[0]
                    handle.mark_down("simulated forward failure")
                    assert handle.state == DOWN
                    for _ in range(100):
                        if handle.routable:
                            break
                        await asyncio.sleep(0.02)
                    return handle.state
                finally:
                    await router.stop()

        assert asyncio.run(main()) == "healthy"


class TestDrain:
    def test_drain_refuses_new_work_then_closes(self, rng):
        model = small_model()

        async def main():
            async with InferenceServer(Engine(model=model), port=0) as real:
                router = await start_router([f"127.0.0.1:{real.port}"])
                try:
                    client = await AsyncServeClient.connect(
                        "127.0.0.1", router.port, retries=0
                    )
                    try:
                        await client.predict_proba(rng.normal(size=(2, 96)))
                        reply = await client.drain()
                        assert reply["draining"] is True
                        with pytest.raises(ServerUnavailable, match="drain"):
                            await client.predict_proba(
                                rng.normal(size=(2, 96))
                            )
                        info = await client.info()
                        return info["health"]["draining"]
                    finally:
                        await client.close()
                finally:
                    await router.stop()

        assert asyncio.run(main()) is True


class TestFaultPoint:
    def test_backend_down_fault_kills_one_spawned_child(self):
        """router.backend_down: one armed firing kills one live child."""

        class FakeProcess:
            def __init__(self):
                self.pid = 4242
                self.exit_code = None

            def poll(self):
                return self.exit_code

        class FakeChild:
            def __init__(self):
                self.process = FakeProcess()
                self.killed = False

            def kill(self):
                self.killed = True
                self.process.exit_code = -9

        async def main():
            async with StubBackend("ok") as stub:
                router = await start_router([stub.address])
                children = [FakeChild(), FakeChild()]
                router.spawned = children
                faults.arm("router.backend_down", times=1)
                try:
                    client = await AsyncServeClient.connect(
                        "127.0.0.1", router.port, retries=0
                    )
                    try:
                        await client.predict_proba(np.zeros((2, 4)))
                        await client.predict_proba(np.zeros((2, 4)))
                    finally:
                        await client.close()
                    return children, dict(router.stats)
                finally:
                    router.spawned = []  # keep stop() off the fakes
                    await router.stop()

        children, stats = asyncio.run(main())
        # Budget of one: exactly one child died, on the first predict.
        assert [c.killed for c in children] == [True, False]
        assert stats["backends_killed"] == 1
        assert faults.fired("router.backend_down") == 1

    def test_fault_point_noop_without_spawned_children(self):
        async def main():
            async with StubBackend("ok") as stub:
                router = await start_router([stub.address])
                faults.arm("router.backend_down", times=1)
                try:
                    client = await AsyncServeClient.connect(
                        "127.0.0.1", router.port, retries=0
                    )
                    try:
                        await client.predict_proba(np.zeros((2, 4)))
                    finally:
                        await client.close()
                    return dict(router.stats)
                finally:
                    await router.stop()

        stats = asyncio.run(main())
        # Static backends are not ours to kill: the firing is consumed
        # but nothing dies.
        assert stats["backends_killed"] == 0
