"""BackendHandle state/placement surface and PlacementPolicy units."""

import random

import pytest

from repro.router import (
    DEGRADED,
    DOWN,
    DRAINING,
    HEALTHY,
    BackendHandle,
    PlacementPolicy,
)


def handle(address="10.0.0.1:7341", state=HEALTHY, models=("default",),
           precisions=("fp64",), queued_rows=0, batch_ms_ema=0.0,
           inflight_rows=0):
    h = BackendHandle(address)
    h.state = state
    h.models = tuple(models)
    h.precisions = tuple(precisions)
    h.queued_rows = queued_rows
    h.batch_ms_ema = batch_ms_ema
    h.inflight_rows = inflight_rows
    return h


class TestBackendHandle:
    def test_starts_down_and_advertises_nothing(self):
        h = BackendHandle("10.0.0.1:7341")
        assert h.state == DOWN
        assert not h.routable
        # Never probed: no route is advertised, not even the default.
        assert h.advertises("default", None) is False
        # But None/None (the "whatever you serve" route) matches, so
        # routability alone gates cold backends.
        assert h.advertises(None, None) is True

    def test_advertises_matches_probe_surface(self):
        h = handle(models=("default", "alt"), precisions=("fp64", "fp32"))
        assert h.advertises("alt", "fp32")
        assert h.advertises(None, None)
        assert h.advertises("default", None)
        assert not h.advertises("missing", None)
        assert not h.advertises("default", "int8")

    def test_load_weights_depth_by_batch_ema(self):
        slow = handle(queued_rows=10, batch_ms_ema=100.0)
        fast = handle("10.0.0.2:7341", queued_rows=10, batch_ms_ema=0.0)
        assert slow.load() == pytest.approx(20.0)  # depth doubled
        assert fast.load() == pytest.approx(10.0)

    def test_load_counts_router_side_inflight(self):
        h = handle(queued_rows=2, inflight_rows=3)
        assert h.load() == pytest.approx(5.0)

    def test_mark_down(self):
        h = handle()
        h.mark_down("kaboom")
        assert h.state == DOWN
        assert not h.routable
        assert h.last_error == "kaboom"
        assert h.stats["failures"] == 1

    def test_routable_states(self):
        assert handle(state=HEALTHY).routable
        assert handle(state=DEGRADED).routable
        assert not handle(state=DRAINING).routable
        assert not handle(state=DOWN).routable

    def test_describe_is_json_able(self):
        import json

        desc = json.loads(json.dumps(handle().describe()))
        assert desc["state"] == HEALTHY
        assert desc["spawned"] is False


class TestPlacementPolicy:
    def test_candidates_filter_state_and_route(self):
        a = handle("a:1", models=("m1",))
        b = handle("b:1", models=("m2",))
        c = handle("c:1", state=DOWN, models=("m1",))
        policy = PlacementPolicy()
        assert policy.candidates([a, b, c], "m1", None) == [a]
        assert policy.candidates([a, b, c], "m2", None) == [b]
        assert policy.candidates([a, b, c], "m3", None) == []

    def test_degraded_only_when_no_healthy(self):
        healthy = handle("a:1")
        degraded = handle("b:1", state=DEGRADED)
        policy = PlacementPolicy()
        assert policy.candidates([degraded, healthy], None, None) == [healthy]
        healthy.state = DOWN
        assert policy.candidates([degraded, healthy], None, None) == [degraded]

    def test_exclude_removes_tried_backends(self):
        a, b = handle("a:1"), handle("b:1")
        policy = PlacementPolicy()
        assert policy.candidates([a, b], None, None, exclude={"a:1"}) == [b]

    def test_choose_prefers_lower_load(self):
        light = handle("a:1", queued_rows=1)
        heavy = handle("b:1", queued_rows=50)
        policy = PlacementPolicy(rng=random.Random(0))
        picks = {policy.choose([light, heavy], None, None).address
                 for _ in range(20)}
        assert picks == {"a:1"}

    def test_choose_tie_goes_sticky(self):
        a, b = handle("a:1"), handle("b:1")
        policy = PlacementPolicy(rng=random.Random(0))
        first = policy.choose([a, b], None, None)
        # All loads equal: every subsequent choice repeats the pick.
        for _ in range(20):
            assert policy.choose([a, b], None, None) is first
        assert policy.sticky_for(None, None) == first.address

    def test_sticky_is_per_route(self):
        a = handle("a:1", models=("m1", "m2"))
        b = handle("b:1", models=("m1", "m2"))
        policy = PlacementPolicy(rng=random.Random(3))
        pick1 = policy.choose([a, b], "m1", None)
        assert policy.sticky_for("m1", None) == pick1.address
        # The other route has no stickiness until it sees traffic.
        assert policy.sticky_for("m2", None) is None

    def test_forget_clears_stickiness(self):
        a, b = handle("a:1"), handle("b:1")
        policy = PlacementPolicy(rng=random.Random(0))
        pick = policy.choose([a, b], None, None)
        policy.forget(pick.address)
        assert policy.sticky_for(None, None) is None

    def test_choose_single_candidate(self):
        a = handle("a:1")
        policy = PlacementPolicy()
        assert policy.choose([a], "m", "fp64") is a
        assert policy.sticky_for("m", "fp64") == "a:1"

    def test_choose_empty_raises(self):
        with pytest.raises(ValueError):
            PlacementPolicy().choose([], None, None)

    def test_load_spreads_across_equal_backends(self):
        # With live inflight accounting the two-choice rule alternates
        # rather than piling onto one backend: simulate the router
        # incrementing inflight_rows per forward.
        a, b = handle("a:1"), handle("b:1")
        policy = PlacementPolicy(rng=random.Random(7))
        counts = {"a:1": 0, "b:1": 0}
        for _ in range(100):
            pick = policy.choose([a, b], None, None)
            pick.inflight_rows += 1
            counts[pick.address] += 1
        assert abs(counts["a:1"] - counts["b:1"]) <= 2
