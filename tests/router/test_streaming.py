"""Router streaming: pinning, id rewriting, no-replay breakage, health.

Streams are stateful, so the router's contract differs from predict:
a stream is pinned to the backend that opened it, pushes are relayed
on a dedicated connection, and a dead backend *breaks* the stream
(``server_unavailable`` → :class:`StreamBroken` at the client) — the
router never replays a push whose application is ambiguous.
"""

import asyncio
import random
import socket

import numpy as np
import pytest

from repro.engine import Engine, EngineConfig
from repro.exceptions import ServerUnavailable, ServingError, StreamBroken
from repro.router import PlacementPolicy, RouterConfig, RouterServer
from repro.serving import InferenceServer, ServeClient
from repro.serving.protocol import read_frame_sync, send_frame_sync
from repro.testing import faults
from repro.zoo import build_fftnet


MODEL = build_fftnet(
    channels=8, depth=3, classes=6, rng=np.random.default_rng(7)
)


@pytest.fixture(autouse=True)
def clean_faults():
    faults.reset()
    yield
    faults.reset()


def backend_server(max_streams=8):
    config = EngineConfig(
        models={"fftnet": MODEL},
        default_model="fftnet",
        max_streams=max_streams,
    )
    return InferenceServer(Engine(config=config), port=0, max_wait_ms=2.0)


async def start_router(addresses, **config_kw):
    # Slow probes: the death tests arm one-shot faults that a probe
    # must not consume before the client's push does.
    config_kw.setdefault("probe_interval_s", 5.0)
    config = RouterConfig(backends=tuple(addresses), **config_kw)
    router = RouterServer(config, policy=PlacementPolicy(random.Random(0)))
    await router.start()
    return router


def in_thread(fn, *args):
    return asyncio.get_running_loop().run_in_executor(None, fn, *args)


class TestRouterStreaming:
    def test_two_streams_one_connection_pinned_and_rewritten(self, rng):
        full = rng.standard_normal((40, 1))
        ref = None

        async def main():
            async with backend_server() as s1, backend_server() as s2:
                nonlocal ref
                ref = s1.engine.session().predict_proba(full[None])[0]
                addresses = [
                    f"127.0.0.1:{s1.port}", f"127.0.0.1:{s2.port}"
                ]
                router = await start_router(addresses)
                try:
                    def go():
                        client = ServeClient(port=router.port, retries=0)
                        sa = client.stream()
                        sb = client.stream()
                        # Router-issued handles, unique per connection.
                        assert sa.stream_id != sb.stream_id
                        assert sa.stream_id.startswith("r")
                        oa, ob, i = [], [], 0
                        for k in (5, 11, 24):
                            oa.append(sa.push(full[i : i + k]))
                            ob.append(sb.push(full[i : i + k]))
                            i += k
                        assert np.array_equal(np.concatenate(oa), ref)
                        assert np.array_equal(np.concatenate(ob), ref)
                        sb.close()
                        sa.close()
                        streams = client.info()["health"]["streams"]
                        client.close()
                        return streams

                    return await in_thread(go)
                finally:
                    await router.stop()

        streams = asyncio.run(main())
        assert streams["pinned"] == 0
        assert streams["opened"] == 2
        assert streams["pushes"] == 6
        assert streams["broken"] == 0

    def test_backend_death_breaks_stream_without_replay(self, rng):
        full = rng.standard_normal((26, 1))

        async def main():
            async with backend_server() as s1, backend_server() as s2:
                ref = s1.engine.session().predict_proba(full[None])[0]
                router = await start_router(
                    [f"127.0.0.1:{s1.port}", f"127.0.0.1:{s2.port}"]
                )
                try:
                    def go():
                        client = ServeClient(
                            port=router.port, retries=2, backoff_ms=1.0
                        )
                        s = client.stream()
                        first = s.push(full[:5])
                        # The pinned backend applies the next push, then
                        # drops the relay connection: application is
                        # ambiguous, so the router must break — never
                        # replay — the stream.
                        faults.arm("server.drop_connection", times=1)
                        with pytest.raises(StreamBroken) as excinfo:
                            s.push(full[5:10])
                        assert excinfo.value.pushed == 5
                        assert s.broken
                        s.close()  # silent on a broken stream
                        # Stateless predicts still fail over.
                        out = client.predict_proba(full[None])
                        assert np.array_equal(out[0], ref)
                        # A fresh stream pins to the survivor and is
                        # bitwise-correct from row zero.
                        with client.stream() as s2_:
                            inc = np.concatenate(
                                [s2_.push(full[:13]), s2_.push(full[13:])]
                            )
                        assert np.array_equal(inc, ref)
                        streams = client.info()["health"]["streams"]
                        client.close()
                        return first, streams

                    first, streams = await in_thread(go)
                    assert np.array_equal(first, ref[:5])
                    return streams
                finally:
                    await router.stop()

        streams = asyncio.run(main())
        assert streams["broken"] == 1
        assert streams["pinned"] == 0

    def test_abrupt_client_disconnect_drops_pins(self, rng):
        async def main():
            async with backend_server() as s1:
                router = await start_router([f"127.0.0.1:{s1.port}"])
                try:
                    def open_and_vanish():
                        raw = socket.create_connection(
                            ("127.0.0.1", router.port), timeout=5
                        )
                        send_frame_sync(raw, {"op": "stream_open"})
                        opened, _ = read_frame_sync(raw)
                        assert opened["status"] == "ok"
                        raw.close()

                    await in_thread(open_and_vanish)
                    deadline = asyncio.get_running_loop().time() + 5.0
                    while asyncio.get_running_loop().time() < deadline:
                        if router._pins_open == 0:
                            break
                        await asyncio.sleep(0.01)
                    pins = router._pins_open
                    # The backend-side stream must be freed too (the
                    # router closes its relay connection on cleanup).
                    backend_deadline = (
                        asyncio.get_running_loop().time() + 5.0
                    )
                    while (
                        asyncio.get_running_loop().time()
                        < backend_deadline
                    ):
                        if s1._streams_open == 0:
                            break
                        await asyncio.sleep(0.01)
                    return pins, s1._streams_open
                finally:
                    await router.stop()

        pins, backend_open = asyncio.run(main())
        assert pins == 0
        assert backend_open == 0

    def test_unknown_stream_push_is_clean_error(self, rng):
        async def main():
            async with backend_server() as s1:
                router = await start_router([f"127.0.0.1:{s1.port}"])
                try:
                    def go():
                        client = ServeClient(port=router.port, retries=0)
                        s = client.stream()
                        real_id, s.stream_id = s.stream_id, "r999"
                        with pytest.raises(ServingError, match="unknown"):
                            s.push(rng.standard_normal((2, 1)))
                        # A typed error does not break the stream.
                        s.stream_id = real_id
                        s.push(rng.standard_normal((2, 1)))
                        s.close()
                        client.close()

                    await in_thread(go)
                finally:
                    await router.stop()

        asyncio.run(main())

    def test_drain_refuses_opens_and_breaks_pushes(self, rng):
        async def main():
            async with backend_server() as s1:
                router = await start_router([f"127.0.0.1:{s1.port}"])
                try:
                    def open_stream():
                        client = ServeClient(port=router.port, retries=0)
                        s = client.stream()
                        s.push(rng.standard_normal((3, 1)))
                        return client, s

                    client, s = await in_thread(open_stream)
                    router.begin_drain()

                    def after_drain():
                        with pytest.raises(StreamBroken):
                            s.push(rng.standard_normal((3, 1)))
                        with pytest.raises(ServerUnavailable):
                            client.stream()
                        client.close()

                    await in_thread(after_drain)
                finally:
                    await router.stop()

        asyncio.run(main())

    def test_probe_surfaces_backend_stream_stats(self, rng):
        async def main():
            async with backend_server() as s1:
                router = await start_router(
                    [f"127.0.0.1:{s1.port}"], probe_interval_s=0.05
                )
                try:
                    def hold_stream():
                        client = ServeClient(port=router.port, retries=0)
                        s = client.stream()
                        s.push(rng.standard_normal((4, 1)))
                        return client, s

                    client, s = await in_thread(hold_stream)
                    handle = router.backends[0]
                    deadline = asyncio.get_running_loop().time() + 5.0
                    while asyncio.get_running_loop().time() < deadline:
                        if handle.streams.get("open") == 1:
                            break
                        await asyncio.sleep(0.02)
                    described = handle.describe()
                    streams = dict(handle.streams)

                    def fleet_info():
                        info = client.info()
                        s.close()
                        client.close()
                        return info

                    info = await in_thread(fleet_info)
                    return described, streams, info
                finally:
                    await router.stop()

        described, streams, info = asyncio.run(main())
        assert streams["open"] == 1
        assert streams["state_bytes"] > 0
        assert described["streams"]["open"] == 1
        # Fleet-aggregated health sums backend stream gauges.
        health = info["health"]["streams"]
        assert health["open"] == 1
        assert health["state_bytes"] == streams["state_bytes"]
        assert health["pinned"] == 1
