"""Tests for image transforms (paper's bilinear resize and helpers)."""

import numpy as np
import pytest

from repro.data import Compose, affine_warp, bilinear_resize, flatten_images, normalize


class TestBilinearResize:
    def test_identity_resize(self, rng):
        image = rng.normal(size=(8, 8))
        assert np.allclose(bilinear_resize(image, 8, 8), image)

    def test_paper_sizes(self, rng):
        # The paper's MNIST preprocessing: 28 -> 16 (Arch. 1), 28 -> 11 (Arch. 2).
        images = rng.normal(size=(5, 28, 28))
        assert bilinear_resize(images, 16, 16).shape == (5, 16, 16)
        assert bilinear_resize(images, 11, 11).shape == (5, 11, 11)

    def test_constant_image_stays_constant(self):
        image = np.full((10, 10), 3.5)
        assert np.allclose(bilinear_resize(image, 7, 13), 3.5)

    def test_preserves_value_range(self, rng):
        images = rng.uniform(0, 1, size=(3, 28, 28))
        resized = bilinear_resize(images, 16, 16)
        assert resized.min() >= 0.0 and resized.max() <= 1.0

    def test_upscale_downscale_roundtrip_smooth(self):
        # A smooth gradient survives a down-up round trip approximately.
        rows = np.linspace(0, 1, 16)
        image = np.tile(rows[:, None], (1, 16))
        down = bilinear_resize(image, 8, 8)
        up = bilinear_resize(down, 16, 16)
        assert np.abs(up - image).max() < 0.1

    def test_single_image_shape(self, rng):
        assert bilinear_resize(rng.normal(size=(28, 28)), 16, 16).shape == (16, 16)

    def test_rejects_bad_target(self, rng):
        with pytest.raises(ValueError):
            bilinear_resize(rng.normal(size=(8, 8)), 0, 4)

    def test_rejects_4d(self, rng):
        with pytest.raises(ValueError):
            bilinear_resize(rng.normal(size=(2, 3, 8, 8)), 4, 4)

    def test_mean_approximately_preserved(self, rng):
        image = rng.uniform(0, 1, size=(28, 28))
        resized = bilinear_resize(image, 14, 14)
        assert resized.mean() == pytest.approx(image.mean(), abs=0.05)


class TestAffineWarp:
    def test_identity_transform(self, rng):
        image = rng.normal(size=(10, 10))
        warped = affine_warp(image, np.eye(2), np.zeros(2))
        assert np.allclose(warped, image)

    def test_translation(self):
        image = np.zeros((8, 8))
        image[2, 3] = 1.0
        # Inverse mapping: output (r, c) samples input (r + 1, c).
        warped = affine_warp(image, np.eye(2), np.array([1.0, 0.0]))
        assert warped[1, 3] == pytest.approx(1.0)

    def test_out_of_range_reads_zero(self):
        image = np.ones((4, 4))
        warped = affine_warp(image, np.eye(2), np.array([10.0, 0.0]))
        assert np.allclose(warped, 0.0)

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError):
            affine_warp(rng.normal(size=(4,)), np.eye(2), np.zeros(2))
        with pytest.raises(ValueError):
            affine_warp(rng.normal(size=(4, 4)), np.eye(3), np.zeros(2))


class TestNormalizeAndFlatten:
    def test_normalize_statistics(self, rng):
        data = rng.normal(loc=5, scale=3, size=(100, 10))
        normalized = normalize(data)
        assert normalized.mean() == pytest.approx(0.0, abs=1e-10)
        assert normalized.std() == pytest.approx(1.0, abs=1e-10)

    def test_normalize_explicit_stats(self, rng):
        data = rng.normal(size=(5, 5))
        assert np.allclose(normalize(data, mean=1.0, std=2.0), (data - 1) / 2)

    def test_normalize_zero_std_raises(self):
        with pytest.raises(ValueError):
            normalize(np.ones((3, 3)), std=0.0)

    def test_flatten_images(self, rng):
        assert flatten_images(rng.normal(size=(4, 7, 7))).shape == (4, 49)
        assert flatten_images(rng.normal(size=(4, 3, 5, 5))).shape == (4, 75)

    def test_flatten_rejects_1d(self, rng):
        with pytest.raises(ValueError):
            flatten_images(rng.normal(size=9))

    def test_compose(self, rng):
        pipeline = Compose(
            lambda x: bilinear_resize(x, 16, 16),
            flatten_images,
        )
        out = pipeline(rng.uniform(size=(3, 28, 28)))
        assert out.shape == (3, 256)

    def test_compose_requires_transform(self):
        with pytest.raises(ValueError):
            Compose()
