"""Tests for ArrayDataset, DataLoader, and splitting."""

import numpy as np
import pytest

from repro.data import ArrayDataset, DataLoader, train_test_split


def make_dataset(rng, n=20):
    return ArrayDataset(rng.normal(size=(n, 4)), np.arange(n) % 3)


class TestArrayDataset:
    def test_len_and_getitem(self, rng):
        ds = make_dataset(rng)
        assert len(ds) == 20
        x, y = ds[3]
        assert x.shape == (4,)
        assert y == 0

    def test_fancy_indexing(self, rng):
        ds = make_dataset(rng)
        x, y = ds[np.array([0, 5, 7])]
        assert x.shape == (3, 4)
        assert list(y) == [0, 2, 1]

    def test_length_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            ArrayDataset(rng.normal(size=(4, 2)), np.zeros(5))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((0, 3)), np.zeros(0))

    def test_subset(self, rng):
        ds = make_dataset(rng)
        sub = ds.subset(np.array([1, 3]))
        assert len(sub) == 2
        assert np.allclose(sub.inputs[0], ds.inputs[1])

    def test_map_inputs(self, rng):
        ds = make_dataset(rng)
        doubled = ds.map_inputs(lambda x: x * 2)
        assert np.allclose(doubled.inputs, ds.inputs * 2)
        assert np.array_equal(doubled.labels, ds.labels)


class TestDataLoader:
    def test_batch_shapes(self, rng):
        loader = DataLoader(make_dataset(rng), batch_size=8)
        batches = list(loader)
        assert [len(b[1]) for b in batches] == [8, 8, 4]

    def test_len(self, rng):
        assert len(DataLoader(make_dataset(rng), batch_size=8)) == 3
        assert len(DataLoader(make_dataset(rng), batch_size=8, drop_last=True)) == 2

    def test_drop_last(self, rng):
        loader = DataLoader(make_dataset(rng), batch_size=8, drop_last=True)
        assert [len(b[1]) for b in loader] == [8, 8]

    def test_covers_all_samples_without_shuffle(self, rng):
        ds = make_dataset(rng)
        loader = DataLoader(ds, batch_size=6)
        seen = np.concatenate([b[0] for b in loader])
        assert np.allclose(seen, ds.inputs)

    def test_shuffle_permutes(self, rng):
        ds = make_dataset(rng, n=50)
        loader = DataLoader(ds, batch_size=50, shuffle=True, seed=1)
        (batch_x, _), = list(loader)
        assert not np.allclose(batch_x, ds.inputs)
        assert np.allclose(np.sort(batch_x, axis=0), np.sort(ds.inputs, axis=0))

    def test_seeded_loaders_replay(self, rng):
        ds = make_dataset(rng, n=30)
        a = [b[1] for b in DataLoader(ds, batch_size=10, shuffle=True, seed=7)]
        b = [b[1] for b in DataLoader(ds, batch_size=10, shuffle=True, seed=7)]
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_epochs_reshuffle(self, rng):
        ds = make_dataset(rng, n=40)
        loader = DataLoader(ds, batch_size=40, shuffle=True, seed=3)
        first = next(iter(loader))[1]
        second = next(iter(loader))[1]
        assert not np.array_equal(first, second)

    def test_invalid_batch_size(self, rng):
        with pytest.raises(ValueError):
            DataLoader(make_dataset(rng), batch_size=0)


class TestTrainTestSplit:
    def test_sizes(self, rng):
        train, test = train_test_split(make_dataset(rng, 100), 0.2, rng=rng)
        assert len(train) == 80
        assert len(test) == 20

    def test_disjoint_and_complete(self, rng):
        ds = ArrayDataset(np.arange(50)[:, None].astype(float), np.zeros(50))
        train, test = train_test_split(ds, 0.3, rng=rng)
        combined = np.sort(
            np.concatenate([train.inputs[:, 0], test.inputs[:, 0]])
        )
        assert np.array_equal(combined, np.arange(50))

    def test_invalid_fraction(self, rng):
        with pytest.raises(ValueError):
            train_test_split(make_dataset(rng), 0.0)
        with pytest.raises(ValueError):
            train_test_split(make_dataset(rng), 1.0)
