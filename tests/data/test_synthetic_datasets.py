"""Tests for the synthetic MNIST / CIFAR-10 stand-ins."""

import numpy as np
import pytest

from repro.data import (
    digit_template,
    generate_cifar,
    generate_mnist,
    load_synthetic_cifar,
    load_synthetic_mnist,
)


class TestDigitTemplates:
    def test_shape_and_range(self):
        for digit in range(10):
            template = digit_template(digit)
            assert template.shape == (28, 28)
            assert template.min() >= 0.0 and template.max() <= 1.0

    def test_templates_nonempty(self):
        for digit in range(10):
            assert digit_template(digit).sum() > 5.0

    def test_templates_pairwise_distinct(self):
        templates = [digit_template(d) for d in range(10)]
        for i in range(10):
            for j in range(i + 1, 10):
                difference = np.abs(templates[i] - templates[j]).sum()
                assert difference > 3.0, (i, j)

    def test_rejects_bad_digit(self):
        with pytest.raises(ValueError):
            digit_template(10)

    def test_rejects_tiny_size(self):
        with pytest.raises(ValueError):
            digit_template(0, size=4)

    def test_eight_contains_zero_segments(self):
        # 8 uses a superset of 0's segments, so its ink covers 0's.
        zero, eight = digit_template(0), digit_template(8)
        assert np.all(eight >= zero - 1e-9)


class TestGenerateMnist:
    def test_shapes_and_range(self, rng):
        images, labels = generate_mnist(20, rng)
        assert images.shape == (20, 28, 28)
        assert labels.shape == (20,)
        assert images.min() >= 0.0 and images.max() <= 1.0
        assert labels.min() >= 0 and labels.max() <= 9

    def test_deterministic_with_seed(self):
        a = generate_mnist(10, np.random.default_rng(5))
        b = generate_mnist(10, np.random.default_rng(5))
        assert np.allclose(a[0], b[0])
        assert np.array_equal(a[1], b[1])

    def test_augmentation_varies_same_class(self):
        rng = np.random.default_rng(0)
        images, labels = generate_mnist(200, rng)
        for digit in range(3):
            same = images[labels == digit]
            if len(same) >= 2:
                assert not np.allclose(same[0], same[1])

    def test_noise_parameter(self):
        clean, _ = generate_mnist(5, np.random.default_rng(1), noise=0.0)
        noisy, _ = generate_mnist(5, np.random.default_rng(1), noise=0.3)
        assert noisy.std() > 0

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            generate_mnist(0, rng)
        with pytest.raises(ValueError):
            generate_mnist(5, rng, noise=-0.1)

    def test_images_classifiable_by_nearest_template(self, rng):
        # A trivial nearest-template classifier must beat chance by a lot,
        # guaranteeing the dataset carries class signal.
        images, labels = generate_mnist(100, rng, noise=0.05)
        templates = np.stack([digit_template(d) for d in range(10)])
        flat_templates = templates.reshape(10, -1)
        flat_images = images.reshape(100, -1)
        predictions = np.argmin(
            ((flat_images[:, None, :] - flat_templates[None]) ** 2).sum(-1), axis=1
        )
        assert (predictions == labels).mean() > 0.5


class TestLoadSyntheticMnist:
    def test_split_sizes(self):
        train, test = load_synthetic_mnist(train_size=50, test_size=20, seed=0)
        assert len(train) == 50
        assert len(test) == 20

    def test_train_test_independent(self):
        train, test = load_synthetic_mnist(train_size=30, test_size=30, seed=0)
        assert not np.allclose(train.inputs[:10], test.inputs[:10])

    def test_seed_reproducibility(self):
        a, _ = load_synthetic_mnist(train_size=10, test_size=5, seed=3)
        b, _ = load_synthetic_mnist(train_size=10, test_size=5, seed=3)
        assert np.allclose(a.inputs, b.inputs)


class TestGenerateCifar:
    def test_shapes_and_range(self, rng):
        images, labels = generate_cifar(12, rng)
        assert images.shape == (12, 3, 32, 32)
        assert images.min() >= 0.0 and images.max() <= 1.0
        assert labels.min() >= 0 and labels.max() <= 9

    def test_deterministic_with_seed(self):
        a = generate_cifar(8, np.random.default_rng(2))
        b = generate_cifar(8, np.random.default_rng(2))
        assert np.allclose(a[0], b[0])

    def test_all_classes_generatable(self):
        rng = np.random.default_rng(0)
        images, labels = generate_cifar(300, rng)
        assert set(labels) == set(range(10))

    def test_classes_have_distinct_statistics(self):
        # Class-mean images must differ between classes (colour/pattern
        # separation the classifier exploits).
        rng = np.random.default_rng(1)
        images, labels = generate_cifar(400, rng)
        means = np.stack(
            [images[labels == c].mean(axis=0) for c in range(10)]
        )
        for i in range(10):
            for j in range(i + 1, 10):
                assert np.abs(means[i] - means[j]).mean() > 0.01, (i, j)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            generate_cifar(0, rng)
        with pytest.raises(ValueError):
            generate_cifar(5, rng, noise=-1)


class TestLoadSyntheticCifar:
    def test_split_sizes(self):
        train, test = load_synthetic_cifar(train_size=40, test_size=10, seed=0)
        assert len(train) == 40
        assert len(test) == 10

    def test_channel_first_layout(self):
        train, _ = load_synthetic_cifar(train_size=4, test_size=2, seed=0)
        assert train.inputs.shape[1:] == (3, 32, 32)
