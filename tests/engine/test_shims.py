"""Deprecation shims: old entry points warn and match the facade bitwise.

This is the only module allowed to *catch* the deprecation warnings —
the CI deprecation lane runs the whole suite under
``-W error::DeprecationWarning``, so any internal code still calling a
shimmed entry point fails there; ``pytest.deprecated_call`` scopes the
expectation to these tests alone.
"""

import asyncio

import numpy as np
import pytest

from repro.embedded import DeployedModel
from repro.engine import Engine
from repro.runtime import InferenceSession, ShardedExecutor
from repro.serving import AsyncServeClient, InferenceServer
from repro.zoo import build_arch1


@pytest.fixture(scope="module")
def deployed():
    return DeployedModel.from_model(
        build_arch1(rng=np.random.default_rng(0)).eval()
    )


class TestToSessionShim:
    def test_warns_and_matches_facade_bitwise(self, deployed, rng):
        x = rng.normal(size=(6, 256))
        with pytest.deprecated_call(match="to_session"):
            shim_session = deployed.to_session()
        with Engine(model=deployed) as engine:
            facade = engine.predict_proba(x)
        assert np.array_equal(shim_session.predict_proba(x), facade)
        shim_session.close()

    def test_fp32_and_executor_kwargs_still_work(self, deployed, rng):
        x = rng.normal(size=(4, 256))
        with pytest.deprecated_call():
            shim_session = deployed.to_session(
                precision="fp32", executor="serial"
            )
        with Engine(model=deployed, precisions=("fp32",)) as engine:
            facade = engine.predict_proba(x)
        assert shim_session.precision == "fp32"
        assert np.array_equal(shim_session.predict_proba(x), facade)
        shim_session.close()

    def test_prebuilt_executor_instance_still_accepted(self, deployed, rng):
        # A PlanExecutor instance cannot live in a declarative config;
        # the shim compiles directly but stays bitwise-equal.
        x = rng.normal(size=(8, 256))
        with pytest.deprecated_call():
            shim_session = deployed.to_session(
                executor=ShardedExecutor(workers=2, mode="batch")
            )
        reference = InferenceSession.from_deployed(deployed)
        assert np.array_equal(
            shim_session.predict_proba(x, batch_size=4),
            reference.predict_proba(x, batch_size=4),
        )
        shim_session.close()
        reference.close()


class TestServerSessionShim:
    def test_warns_wraps_and_matches_engine_path(self, deployed, rng):
        session = InferenceSession.from_deployed(deployed)
        x = rng.normal(size=(5, 256))

        async def roundtrip(server_arg):
            server = InferenceServer(server_arg, port=0)
            async with server:
                async with await AsyncServeClient.connect(
                    port=server.port
                ) as client:
                    return await client.predict_proba(x)

        with pytest.deprecated_call(match="InferenceServer"):
            shim_served = asyncio.run(roundtrip(session))
        with Engine(model=deployed) as engine:
            facade_served = asyncio.run(roundtrip(engine))
        assert np.array_equal(shim_served, facade_served)
        # The shim never took ownership: the session still runs.
        assert session.forward(x).shape == (5, 10)
        session.close()


class TestServeShim:
    def test_deployed_serve_warns(self, deployed, monkeypatch):
        # Intercept Engine.serve so the shim's blocking loop never runs;
        # what matters here is the warning and the config translation.
        captured = {}

        def fake_serve(self, host="127.0.0.1", port=None, on_ready=None):
            captured["models"] = dict(self.config.models)
            captured["precision"] = self.config.precision
            captured["max_batch"] = self.config.max_batch

        monkeypatch.setattr(Engine, "serve", fake_serve)
        with pytest.deprecated_call(match="serve"):
            deployed.serve(port=0, precision="fp32", max_batch=7)
        assert captured["precision"] == "fp32"
        assert captured["max_batch"] == 7
        assert list(captured["models"].values()) == [deployed]
