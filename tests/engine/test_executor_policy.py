"""Engine executor policy: auto heuristic, env default, shared pool."""

import numpy as np
import pytest

import repro.engine.config as config_mod
from repro.engine import Engine, EngineConfig
from repro.exceptions import ConfigurationError
from repro.nn import BlockCirculantLinear, Linear, ReLU, Sequential
from repro.runtime import ThreadWorkerPool, ThreadedExecutor


def small_model(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential(
        BlockCirculantLinear(96, 64, 8, rng=rng),
        ReLU(),
        Linear(64, 10, rng=rng),
    ).eval()


class TestConfigPolicy:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
        config = EngineConfig()
        assert config.executor == "serial"
        assert config.resolve_executor() == "serial"

    def test_env_var_sets_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "threaded")
        assert EngineConfig().executor == "threaded"

    def test_explicit_executor_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "threaded")
        assert EngineConfig(executor="serial").executor == "serial"

    def test_bad_env_value_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "gpu")
        with pytest.raises(ConfigurationError, match="executor must be"):
            EngineConfig()

    def test_unknown_executor_rejected(self):
        with pytest.raises(ConfigurationError, match="executor must be"):
            EngineConfig(executor="gpu")

    def test_auto_resolves_threaded_on_multicore(self, monkeypatch):
        monkeypatch.setattr(config_mod, "effective_cpu_count", lambda: 4)
        assert EngineConfig(executor="auto").resolve_executor() == "threaded"

    def test_auto_resolves_serial_on_one_core(self, monkeypatch):
        monkeypatch.setattr(config_mod, "effective_cpu_count", lambda: 1)
        assert EngineConfig(executor="auto").resolve_executor() == "serial"

    def test_auto_never_picks_fork(self, monkeypatch):
        # Fork sharding is an explicit opt-in; auto only ever picks
        # serial or threaded.
        for cores in (1, 2, 64):
            monkeypatch.setattr(
                config_mod, "effective_cpu_count", lambda n=cores: n
            )
            assert EngineConfig(executor="auto").resolve_executor() in (
                "serial",
                "threaded",
            )

    def test_threads_validation(self):
        with pytest.raises(ConfigurationError, match="threads must be >= 1"):
            EngineConfig(threads=0)

    def test_resolve_threads_precedence(self, monkeypatch):
        monkeypatch.setattr(config_mod, "effective_cpu_count", lambda: 6)
        assert EngineConfig(threads=3, workers=5).resolve_threads() == 3
        assert EngineConfig(workers=5).resolve_threads() == 5
        assert EngineConfig().resolve_threads() == 6

    def test_describe_reports_policy(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
        desc = EngineConfig(
            executor="threaded", threads=2, profile=True
        ).describe()
        assert desc["executor"] == "threaded"
        assert desc["resolved_executor"] == "threaded"
        assert desc["threads"] == 2
        assert desc["profile"] is True


class TestEngineSharedPool:
    def test_threaded_routes_share_one_workpool(self, rng):
        with Engine(
            model=small_model(),
            precisions=("fp64", "fp32"),
            executor="threaded",
            threads=2,
        ) as engine:
            s64 = engine.session(precision="fp64")
            s32 = engine.session(precision="fp32")
            assert isinstance(s64.executor, ThreadedExecutor)
            assert s64.executor.pool is s32.executor.pool
            assert s64.executor.pool is engine._workpool
            assert engine._workpool.describe()["plans"] == 2

    def test_threaded_engine_matches_serial_engine(self, rng):
        model = small_model()
        x = rng.normal(size=(21, 96))
        with Engine(model=model, executor="serial") as serial, Engine(
            model=model, executor="threaded", threads=2
        ) as threaded:
            for precision in ("fp64",):
                assert np.array_equal(
                    threaded.predict_proba(x, batch_size=4),
                    serial.predict_proba(x, batch_size=4),
                )
                assert np.array_equal(
                    threaded.predict(x), serial.predict(x)
                )

    def test_health_reports_shared_pool(self):
        with Engine(
            model=small_model(), executor="threaded", threads=2
        ) as engine:
            engine.session()
            health = engine.health()
            assert health["pool"]["kind"] == "thread"
            assert health["pool"]["workers"] == 2
            assert health["pool"]["plans"] == 1
            assert health["degraded"] is False

    def test_serial_engine_has_no_pool(self):
        with Engine(model=small_model(), executor="serial") as engine:
            assert engine._workpool is None
            assert engine.health()["pool"] is None
            info = engine.executor_info()
            assert info["kind"] == "serial"
            assert info["workers"] == 1
            assert info["shared_pool"] is None

    def test_executor_info_threaded(self):
        with Engine(
            model=small_model(), executor="threaded", threads=2
        ) as engine:
            info = engine.executor_info()
            assert info["requested"] == "threaded"
            assert info["kind"] == "threaded"
            assert info["workers"] == 2
            assert info["shared_pool"]["kind"] == "thread"

    def test_close_closes_shared_pool(self):
        engine = Engine(model=small_model(), executor="threaded", threads=2)
        pool = engine._workpool
        engine.session()
        engine.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.ensure_started()

    def test_env_driven_threaded_engine_end_to_end(self, rng, monkeypatch):
        # The CI lane's shape: REPRO_EXECUTOR=threaded with no explicit
        # executor anywhere in the code path.
        monkeypatch.setenv("REPRO_EXECUTOR", "threaded")
        model = small_model()
        x = rng.normal(size=(9, 96))
        with Engine(model=model) as engine:
            assert isinstance(engine._workpool, ThreadWorkerPool)
            monkeypatch.delenv("REPRO_EXECUTOR")
            with Engine(model=model, executor="serial") as serial:
                assert np.array_equal(
                    engine.predict_proba(x, batch_size=3),
                    serial.predict_proba(x, batch_size=3),
                )


class TestEngineProfiling:
    def test_profile_surfaces_op_stats_in_routes(self, rng):
        with Engine(
            model=small_model(), executor="threaded", threads=2, profile=True
        ) as engine:
            engine.predict_proba(rng.normal(size=(8, 96)), batch_size=2)
            routes = engine.describe_routes()
            stats = routes["default/fp64"]["op_stats"]
            assert "bc_linear" in stats
            assert stats["bc_linear"]["total_ns"] > 0

    def test_profile_on_serial_engine(self, rng):
        with Engine(model=small_model(), profile=True) as engine:
            engine.predict(rng.normal(size=(4, 96)))
            stats = engine.session().executor.op_stats()
            assert "bc_linear" in stats and "linear" in stats

    def test_no_profile_no_op_stats_key(self, rng):
        with Engine(model=small_model()) as engine:
            engine.predict(rng.normal(size=(4, 96)))
            assert "op_stats" not in engine.describe_routes()["default/fp64"]
