"""EngineConfig: declarative validation and resolution rules."""

import numpy as np
import pytest

from repro.engine import DEFAULT_MODEL_NAME, EngineConfig
from repro.exceptions import ConfigurationError
from repro.zoo import build_arch1


@pytest.fixture(scope="module")
def model():
    return build_arch1(rng=np.random.default_rng(0)).eval()


class TestModelRegistry:
    def test_single_model_registers_under_default_name(self, model):
        config = EngineConfig(model=model)
        assert sorted(config.models) == [DEFAULT_MODEL_NAME]
        assert config.default_model == DEFAULT_MODEL_NAME
        assert config.resolve_model(None) == DEFAULT_MODEL_NAME

    def test_named_registry_single_entry_becomes_default(self, model):
        config = EngineConfig(models={"mnist": model})
        assert config.default_model == "mnist"

    def test_model_and_models_are_mutually_exclusive(self, model):
        with pytest.raises(ConfigurationError, match="not both"):
            EngineConfig(model=model, models={"a": model})

    def test_several_models_require_explicit_default(self, model):
        with pytest.raises(ConfigurationError, match="default_model"):
            EngineConfig(models={"a": model, "b": model})
        config = EngineConfig(models={"a": model, "b": model},
                              default_model="b")
        assert config.resolve_model(None) == "b"
        assert config.resolve_model("a") == "a"

    def test_unknown_default_model_rejected(self, model):
        with pytest.raises(ConfigurationError, match="not registered"):
            EngineConfig(models={"a": model}, default_model="z")

    def test_unknown_model_resolution_names_the_registry(self, model):
        config = EngineConfig(models={"a": model, "b": model},
                              default_model="a")
        with pytest.raises(ConfigurationError, match=r"unknown model 'c'"):
            config.resolve_model("c")

    def test_bogus_source_rejected(self):
        with pytest.raises(ConfigurationError, match="expected an artifact"):
            EngineConfig(model=42)

    def test_path_source_accepted(self):
        config = EngineConfig(model="some/artifact.npz")
        assert config.describe()["models"][DEFAULT_MODEL_NAME].endswith(
            "artifact.npz"
        )


class TestPrecisions:
    def test_default_pool_is_fp64(self, model):
        config = EngineConfig(model=model)
        assert config.precisions == ("fp64",)
        assert config.precision == "fp64"
        assert config.resolve_precision(None) == "fp64"

    def test_two_precision_pool_and_default(self, model):
        config = EngineConfig(model=model, precisions=("fp64", "fp32"))
        assert config.resolve_precision("fp32") == "fp32"
        assert config.resolve_precision(None) == "fp64"

    def test_unpooled_precision_rejected_at_resolution(self, model):
        config = EngineConfig(model=model)
        with pytest.raises(ConfigurationError, match="not pooled"):
            config.resolve_precision("fp32")

    def test_unknown_precision_rejected_at_construction(self, model):
        with pytest.raises(ValueError):
            EngineConfig(model=model, precisions=("fp61",))

    def test_default_precision_must_be_pooled(self, model):
        with pytest.raises(ConfigurationError, match="not in the pool"):
            EngineConfig(model=model, precisions=("fp64",), precision="fp32")

    def test_duplicate_precisions_rejected(self, model):
        with pytest.raises(ConfigurationError, match="duplicate"):
            EngineConfig(model=model, precisions=("fp64", "fp64"))


class TestExecutorPolicy:
    def test_invalid_choices_rejected(self, model):
        with pytest.raises(ConfigurationError, match="executor"):
            EngineConfig(model=model, executor="gpu")
        with pytest.raises(ConfigurationError, match="transport"):
            EngineConfig(model=model, transport="carrier-pigeon")
        with pytest.raises(ConfigurationError, match="shard_mode"):
            EngineConfig(model=model, shard_mode="diagonal")
        with pytest.raises(ConfigurationError, match="workers"):
            EngineConfig(model=model, workers=0)
        with pytest.raises(ConfigurationError, match="conv_tile"):
            EngineConfig(model=model, conv_tile=0)

    def test_batching_limits_validated(self, model):
        with pytest.raises(ConfigurationError, match="max_batch"):
            EngineConfig(model=model, max_batch=0)
        with pytest.raises(ConfigurationError, match="max_wait_ms"):
            EngineConfig(model=model, max_wait_ms=-1)


class TestPriorities:
    def test_default_classes_resolve_by_name_and_index(self, model):
        config = EngineConfig(model=model)
        assert config.resolve_priority(None) == 1  # "normal"
        assert config.resolve_priority("interactive") == 2
        assert config.resolve_priority("batch") == 0
        assert config.resolve_priority(2) == 2

    def test_unknown_class_and_out_of_range_index_rejected(self, model):
        config = EngineConfig(model=model)
        with pytest.raises(ConfigurationError, match="unknown priority"):
            config.resolve_priority("ludicrous")
        with pytest.raises(ConfigurationError, match="out of range"):
            config.resolve_priority(17)

    def test_custom_classes(self, model):
        config = EngineConfig(
            model=model,
            priority_classes=("bulk", "rt"),
            default_priority="rt",
        )
        assert config.resolve_priority(None) == 1
        assert config.resolve_priority("bulk") == 0

    def test_default_priority_must_be_a_class(self, model):
        with pytest.raises(ConfigurationError, match="unknown priority"):
            EngineConfig(model=model, default_priority="warp")


class TestDescribe:
    def test_describe_is_jsonable_and_complete(self, model):
        import json

        config = EngineConfig(model=model, precisions=("fp64", "fp32"),
                              executor="sharded", workers=3)
        desc = json.loads(json.dumps(config.describe()))
        assert desc["precisions"] == ["fp64", "fp32"]
        assert desc["executor"] == "sharded"
        assert desc["workers"] == 3
        assert desc["models"][DEFAULT_MODEL_NAME] == "Sequential"


class TestErrorTypes:
    def test_unknown_precision_is_a_configuration_error(self, model):
        # The serving front-end answers ConfigurationError as a clean
        # error frame; a bare ValueError would surface as an opaque
        # "internal error" to clients.
        config = EngineConfig(model=model)
        with pytest.raises(ConfigurationError):
            config.resolve_precision("fp16")
        with pytest.raises(ConfigurationError):
            EngineConfig(model=model, precisions=("fp16",))
