"""Engine facade: pool lifecycle, routing, typed requests, registry."""

import asyncio

import numpy as np
import pytest

from repro.embedded import DeployedModel
from repro.engine import Engine, EngineConfig, InferenceRequest
from repro.exceptions import ConfigurationError
from repro.nn import BlockCirculantLinear, Linear, ReLU, Sequential
from repro.runtime import InferenceSession
from repro.serving import AsyncServeClient, InferenceServer
from repro.zoo import build_arch1


def small_model(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential(
        BlockCirculantLinear(96, 64, 8, rng=rng),
        ReLU(),
        Linear(64, 10, rng=rng),
    ).eval()


class TestSessionPool:
    def test_sessions_freeze_lazily_and_pool_reuses(self, rng):
        engine = Engine(model=small_model(), precisions=("fp64", "fp32"))
        assert engine.describe()["pooled"] == []  # nothing frozen yet
        first = engine.session()
        assert engine.session() is first  # pooled, not re-frozen
        assert engine.describe()["pooled"] == [
            {"model": "default", "precision": "fp64"}
        ]
        engine.close()

    def test_pool_reuse_across_fp64_then_fp32_calls(self, rng):
        engine = Engine(model=small_model(), precisions=("fp64", "fp32"))
        x = rng.normal(size=(5, 96))
        p64_a = engine.predict_proba(x)
        p32_a = engine.predict_proba(x, precision="fp32")
        # Back to fp64: same pooled session, identical output.
        p64_b = engine.predict_proba(x)
        p32_b = engine.predict_proba(x, precision="fp32")
        assert np.array_equal(p64_a, p64_b)
        assert np.array_equal(p32_a, p32_b)
        assert p32_a.dtype == np.float32 and p64_a.dtype == np.float64
        assert np.abs(p64_a - p32_a).max() <= 1e-5
        assert len(engine.describe()["pooled"]) == 2
        engine.close()

    def test_shared_weight_spectra_across_precision_sessions(self, rng):
        # Freezing the same live model at a second precision must not
        # re-transform the weights: the layer's dtype-keyed cache serves
        # both sessions from one base spectrum.
        model = small_model()
        cache = model.layers[0]._spectrum_cache
        engine = Engine(model=model, precisions=("fp64", "fp32"))
        engine.session(precision="fp64")
        base = cache._base  # the one complex128 rfft of the weights
        engine.session(precision="fp32")
        # fp32 session derived its complex64 spectra from the same base
        # (one rounding), instead of re-running the transform.
        assert cache._base is base
        assert np.dtype(np.complex64) in cache._spectra
        engine.close()

    def test_warm_up_freezes_the_full_grid(self):
        engine = Engine(
            models={"a": small_model(0), "b": small_model(1)},
            default_model="a",
            precisions=("fp64", "fp32"),
        )
        engine.warm_up()
        assert len(engine.describe()["pooled"]) == 4
        engine.close()


class TestLifecycle:
    def test_double_close_is_idempotent(self):
        engine = Engine(model=small_model())
        engine.session()
        engine.close()
        engine.close()  # second close: no error
        assert engine.closed

    def test_closed_engine_refuses_work(self, rng):
        engine = Engine(model=small_model())
        engine.close()
        with pytest.raises(ConfigurationError, match="closed"):
            engine.predict(rng.normal(size=(2, 96)))

    def test_context_manager_closes_pool(self):
        with Engine(model=small_model()) as engine:
            session = engine.session()
            executor = session.executor
        assert engine.closed
        # The pooled session was closed with the engine: its executor
        # rejects rebinding (bound) but run on closed serial is still
        # fine; assert via a second close being a no-op.
        session.close()  # idempotent with the engine's close
        assert executor is session.executor

    def test_context_manager_exit_under_in_flight_requests(self, rng):
        # A server draining while requests are still queued: the engine
        # context exits only after the server drained its batchers, and
        # every in-flight request still got a real answer.
        engine = Engine(model=small_model())
        serial = InferenceSession.freeze(small_model())
        x = rng.normal(size=(3, 96))

        async def scenario():
            with engine:
                server = InferenceServer(engine, port=0, max_wait_ms=50.0)
                await server.start()
                client = await AsyncServeClient.connect(port=server.port)
                # Submit and stop the server while the request is still
                # waiting in the batcher's flush window.
                pending = asyncio.create_task(client.predict_proba(x))
                await asyncio.sleep(0)  # request reaches the server
                await asyncio.sleep(0.005)
                await server.stop()  # drains pending batches
                result = await pending
                await client.close()
            return result

        result = asyncio.run(scenario())
        assert np.array_equal(result, serial.predict_proba(x))
        assert engine.closed

    def test_adopted_session_stays_open_after_engine_close(self):
        session = InferenceSession.freeze(small_model())
        engine = Engine.from_session(session)
        assert engine.session() is session
        engine.close()
        # The engine never owned it: still usable.
        out = session.forward(np.zeros((1, 96)))
        assert out.shape == (1, 10)
        session.close()


class TestRegistry:
    def test_register_after_construction(self, rng):
        engine = Engine(models={"a": small_model(0)})
        engine.register("b", small_model(1))
        xa = rng.normal(size=(2, 96))
        assert engine.predict_proba(xa, model="b").shape == (2, 10)
        with pytest.raises(ConfigurationError, match="already registered"):
            engine.register("b", small_model(2))
        engine.close()

    def test_register_rejects_session_outside_precision_pool(self):
        # An adopted session at an unpooled precision would be
        # unreachable at every route; register must refuse it whole
        # (no registry entry, no pool entry) just like __init__ does.
        engine = Engine(models={"a": small_model(0)})  # fp64-only pool
        fp32_session = InferenceSession.freeze(small_model(1),
                                               precision="fp32")
        with pytest.raises(ConfigurationError, match="pooled precisions"):
            engine.register("m2", fp32_session)
        assert "m2" not in engine.config.models
        engine.close()
        fp32_session.close()

    def test_unknown_model_rejected(self, rng):
        engine = Engine(model=small_model())
        with pytest.raises(ConfigurationError, match="unknown model"):
            engine.predict(rng.normal(size=(2, 96)), model="nope")
        engine.close()

    def test_artifact_path_loads_once_and_serves_all_precisions(
        self, rng, tmp_path
    ):
        deployed = DeployedModel.from_model(
            build_arch1(rng=np.random.default_rng(0)).eval()
        )
        path = tmp_path / "arch1.npz"
        deployed.save(path)
        engine = Engine(model=str(path), precisions=("fp64", "fp32"))
        x = rng.normal(size=(3, 256))
        p64 = engine.predict_proba(x)
        p32 = engine.predict_proba(x, precision="fp32")
        assert np.abs(p64 - p32).max() <= 1e-5
        # One artifact object backs both sessions.
        assert len(engine._artifacts) == 1
        assert np.array_equal(
            p64, InferenceSession.from_deployed(deployed).predict_proba(x)
        )
        engine.close()


class TestTypedRequests:
    def test_submit_resolves_routing_and_echoes_it(self, rng):
        engine = Engine(model=small_model(), precisions=("fp64", "fp32"))
        x = rng.normal(size=(4, 96))
        result = engine.submit(
            InferenceRequest(rows=x, precision="fp32",
                             priority="interactive")
        )
        assert result.model == "default"
        assert result.precision == "fp32"
        assert result.priority == 2
        assert result.rows == 4
        assert result.proba and result.output.shape == (4, 10)
        assert result.latency_ms >= 0
        labels = engine.submit(InferenceRequest(rows=x, proba=False))
        assert labels.output.shape == (4,)
        assert np.array_equal(labels.output, labels.argmax())
        engine.close()

    def test_single_row_promotes_and_deadline_is_advisory(self, rng):
        engine = Engine(model=small_model())
        result = engine.submit(
            InferenceRequest(rows=rng.normal(size=96), deadline_ms=10_000)
        )
        assert result.rows == 1
        assert result.extra["deadline_exceeded"] is False
        engine.close()

    def test_request_validation(self, rng):
        with pytest.raises(ConfigurationError, match="at least one row"):
            InferenceRequest(rows=np.empty((0, 4)))
        with pytest.raises(ConfigurationError, match="deadline_ms"):
            InferenceRequest(rows=np.zeros((1, 4)), deadline_ms=-1)
        with pytest.raises(ConfigurationError, match="batch_size"):
            InferenceRequest(rows=np.zeros((1, 4)), batch_size=0)

    def test_batch_size_streams_identically(self, rng):
        engine = Engine(model=small_model())
        x = rng.normal(size=(10, 96))
        one_shot = engine.submit(InferenceRequest(rows=x)).output
        streamed = engine.submit(
            InferenceRequest(rows=x, batch_size=3)
        ).output
        # Different GEMM batch shapes may round differently in the last
        # ulp; bitwise identity is only promised for identical chunking.
        assert np.allclose(one_shot, streamed, atol=1e-12)
        engine.close()
