"""Tests for the TrueNorth reference data and Fig. 5 helpers."""

import pytest

from repro.analysis import (
    ARM_CORES,
    TRUENORTH_CIFAR10,
    TRUENORTH_MNIST,
    ComparisonPoint,
    fig5_points,
    speedup_vs_truenorth,
)


class TestReferencePoints:
    def test_mnist_numbers_match_paper(self):
        # Section V-D: 95% accuracy, 1000 us/image.
        assert TRUENORTH_MNIST.accuracy_percent == 95.0
        assert TRUENORTH_MNIST.runtime_us_per_image == 1000.0
        assert TRUENORTH_MNIST.cores == 4096

    def test_cifar_numbers_match_paper(self):
        # Section V-D: 83.41% accuracy, 800 us/image.
        assert TRUENORTH_CIFAR10.accuracy_percent == 83.41
        assert TRUENORTH_CIFAR10.runtime_us_per_image == 800.0

    def test_core_ratio_claim(self):
        # "4,096 ASIC cores ... around 500-1000 times more than our
        # testing platform".
        ratio = TRUENORTH_MNIST.cores / ARM_CORES
        assert 400 <= ratio <= 1100

    def test_point_validation(self):
        with pytest.raises(ValueError):
            ComparisonPoint("x", "d", 120.0, 10.0, 1, "s")
        with pytest.raises(ValueError):
            ComparisonPoint("x", "d", 50.0, -1.0, 1, "s")
        with pytest.raises(ValueError):
            ComparisonPoint("x", "d", 50.0, 10.0, 0, "s")


class TestFig5:
    def test_four_points(self):
        points = fig5_points(95.5, 101.0, 80.2, 8244.0)
        assert len(points) == 4
        systems = {(p.system, p.dataset) for p in points}
        assert ("Our Method", "MNIST") in systems
        assert ("IBM TrueNorth", "CIFAR-10") in systems

    def test_paper_headline_speedups(self):
        # Paper: ~10x faster than TrueNorth on MNIST at ~100 us.
        assert speedup_vs_truenorth("MNIST", 101.0) == pytest.approx(9.9, rel=0.1)
        # Paper: ~10x slower on CIFAR-10 at ~8000+ us.
        assert speedup_vs_truenorth("CIFAR-10", 8244.0) < 0.2

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            speedup_vs_truenorth("ImageNet", 100.0)

    def test_invalid_runtime_raises(self):
        with pytest.raises(ValueError):
            speedup_vs_truenorth("MNIST", 0.0)
