"""Tests for the round-off error analysis (paper section III-B claim)."""

import numpy as np
import pytest

from repro.analysis import (
    dft_roundoff_error,
    fft_roundoff_error,
    matvec_roundoff_comparison,
)


class TestFftRoundoff:
    def test_error_near_machine_epsilon(self, rng):
        # float64 FFT of modest size: relative error within a few hundred ulp.
        assert fft_roundoff_error(256, rng) < 1e-13

    def test_pure_and_numpy_backends_comparable(self, rng):
        pure = fft_roundoff_error(128, np.random.default_rng(0), backend="pure")
        fast = fft_roundoff_error(128, np.random.default_rng(0), backend="numpy")
        assert pure < 1e-13
        assert fast < 1e-13

    def test_rejects_nonpositive(self, rng):
        with pytest.raises(ValueError):
            fft_roundoff_error(0, rng)


class TestDftVsFft:
    def test_fft_more_accurate_than_naive_dft_at_scale(self):
        # The section III-B claim: the O(n^2) direct evaluation accumulates
        # more round-off than the O(n log n) factorization.
        rng_seed = 7
        n = 2048
        fft_err = fft_roundoff_error(n, np.random.default_rng(rng_seed))
        dft_err = dft_roundoff_error(n, np.random.default_rng(rng_seed))
        assert fft_err < dft_err

    def test_dft_error_grows_with_n(self):
        errors = [
            dft_roundoff_error(n, np.random.default_rng(1))
            for n in (64, 512, 4096)
        ]
        assert errors[-1] > errors[0]


class TestMatvecComparison:
    def test_returns_pair_of_small_errors(self, rng):
        dense_err, fft_err = matvec_roundoff_comparison(64, rng)
        assert 0 <= dense_err < 1e-12
        assert 0 <= fft_err < 1e-12

    def test_fft_path_not_worse_at_scale(self):
        # At n = 4096 the FFT path's error is at or below the dense path's
        # (numpy's pairwise-summation dense product is already good, so
        # the win is modest in float64 — see EXPERIMENTS.md E13).
        dense_err, fft_err = matvec_roundoff_comparison(
            4096, np.random.default_rng(3)
        )
        assert fft_err <= dense_err * 1.5

    def test_rejects_nonpositive(self, rng):
        with pytest.raises(ValueError):
            matvec_roundoff_comparison(0, rng)
