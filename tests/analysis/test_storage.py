"""Tests for the storage analysis (paper's O(n) storage claim)."""

import numpy as np
import pytest

from repro.analysis import storage_report
from repro.nn import (
    BlockCirculantConv2d,
    BlockCirculantLinear,
    Conv2d,
    Linear,
    ReLU,
    Sequential,
)
from repro.zoo import build_arch1


class TestStorageReport:
    def test_dense_linear_row(self, rng):
        report = storage_report(Sequential(Linear(10, 5, rng=rng)))
        row = report.rows[0]
        assert row.dense_params == 10 * 5 + 5
        assert row.stored_params == row.dense_params
        assert row.compression == 1.0

    def test_bc_linear_compression(self, rng):
        report = storage_report(
            Sequential(BlockCirculantLinear(256, 128, 64, bias=False, rng=rng))
        )
        row = report.rows[0]
        assert row.dense_params == 256 * 128
        assert row.stored_params == 2 * 4 * 64
        assert row.compression == pytest.approx(64.0)

    def test_bc_conv_row(self, rng):
        report = storage_report(
            Sequential(BlockCirculantConv2d(8, 8, 3, block_size=4, bias=False,
                                            rng=rng))
        )
        row = report.rows[0]
        assert row.dense_params == 8 * 8 * 9
        assert row.compression == pytest.approx(4.0)

    def test_activation_layers_skipped(self, rng):
        report = storage_report(
            Sequential(Linear(4, 4, rng=rng), ReLU(), Linear(4, 2, rng=rng))
        )
        assert len(report.rows) == 2

    def test_totals_sum_rows(self, rng):
        model = Sequential(
            BlockCirculantLinear(64, 64, 16, rng=rng), ReLU(),
            Linear(64, 10, rng=rng)
        )
        report = storage_report(model)
        assert report.dense_params == sum(r.dense_params for r in report.rows)
        assert report.stored_params == sum(r.stored_params for r in report.rows)

    def test_arch1_compresses(self, rng):
        report = storage_report(build_arch1(rng=rng))
        # Two BC layers dominate; total compression must be substantial.
        assert report.compression > 5.0
        assert report.deployed_bytes < report.dense_bytes

    def test_stored_params_match_model(self, rng):
        model = build_arch1(rng=rng)
        report = storage_report(model)
        assert report.stored_params == model.parameter_count()

    def test_no_weight_layers_raises(self):
        with pytest.raises(ValueError):
            storage_report(Sequential(ReLU()))

    def test_requires_sequential(self, rng):
        with pytest.raises(TypeError):
            storage_report(Linear(4, 2, rng=rng))

    def test_conv_row(self, rng):
        report = storage_report(Sequential(Conv2d(3, 8, 3, rng=rng)))
        assert report.rows[0].dense_params == 8 * 3 * 9 + 8
