"""Tests for the theoretical complexity formulas."""

import math

import pytest

from repro.analysis import (
    bc_conv_ops,
    bc_fc_ops,
    conv_speedup,
    crossover_block_size,
    dense_conv_ops,
    dense_fc_ops,
    fc_speedup,
)


class TestDenseFormulas:
    def test_dense_fc(self):
        assert dense_fc_ops(128, 256) == 2 * 128 * 256

    def test_dense_conv(self):
        # 30x30 positions, 64 filters, 3 channels, 3x3 kernels.
        assert dense_conv_ops(32, 32, 3, 3, 64) == 2 * 900 * 64 * 3 * 9

    def test_validation(self):
        with pytest.raises(ValueError):
            dense_fc_ops(0, 4)
        with pytest.raises(ValueError):
            dense_conv_ops(8, 8, 0, 3, 4)


class TestBlockCirculantFormulas:
    def test_block_one_no_fft(self):
        # b=1: no FFT terms, p*q products + accumulation.
        value = bc_fc_ops(4, 4, 1)
        assert value == 4 * 4 * 6 * 1 + 4 * 3 * 2 * 1

    def test_matches_cost_model(self, rng):
        # The closed form must agree with the per-layer cost model.
        from repro.embedded import count_model
        from repro.nn import BlockCirculantLinear, Sequential

        layer = BlockCirculantLinear(256, 128, 64, bias=False, rng=rng)
        counted = count_model(Sequential(layer), (256,)).flops
        assert bc_fc_ops(128, 256, 64) == pytest.approx(counted)

    def test_asymptotic_scaling(self):
        # Doubling n at fixed full-size block scales as ~4 n log n vs 4 n^2:
        # the BC growth factor must be well below the dense factor of 4.
        small = bc_fc_ops(512, 512, 512)
        large = bc_fc_ops(1024, 1024, 1024)
        assert large / small < 2.6  # ~2 * log ratio
        assert dense_fc_ops(1024, 1024) / dense_fc_ops(512, 512) == 4.0


class TestSpeedups:
    def test_fc_speedup_grows_with_size(self):
        speedups = [fc_speedup(n, n, n) for n in (64, 256, 1024, 4096)]
        assert all(a < b for a, b in zip(speedups, speedups[1:]))

    def test_fc_speedup_large_layer(self):
        # Paper's motivating case: big FC layers gain order-of-magnitude.
        assert fc_speedup(1024, 1024, 1024) > 20

    def test_conv_speedup_positive(self):
        assert conv_speedup(32, 32, 3, 64, 128, 32) > 1

    def test_conv_matches_positions_times_fc(self):
        positions = (16 - 3 + 1) ** 2
        assert bc_conv_ops(16, 16, 3, 8, 8, 4) == pytest.approx(
            positions * bc_fc_ops(8, 8 * 9, 4)
        )


class TestCrossover:
    def test_large_layer_has_crossover(self):
        block = crossover_block_size(512, 512)
        assert block is not None
        assert 2 <= block <= 512

    def test_tiny_layer_may_not_cross(self):
        result = crossover_block_size(2, 2)
        assert result is None or result <= 2

    def test_beyond_crossover_wins(self):
        block = crossover_block_size(256, 256)
        assert fc_speedup(256, 256, 256) > fc_speedup(256, 256, block) > 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            crossover_block_size(0, 4)
