"""Cross-module equivalence checks tying the paper's algebra together.

These tests close the loop between the four representations of the same
linear map: the structured-matrix class, the FFT kernels, the autograd
layer, and the deployed engine — plus the Fig. 3 CONV reformulation chain
(tensor convolution == im2col matmul == block-circulant FFT path).
"""

import numpy as np
import pytest

from repro.embedded import DeployedModel
from repro.fft import circular_convolve, use_backend
from repro.nn import (
    BlockCirculantConv2d,
    BlockCirculantLinear,
    Conv2d,
    Sequential,
    Tensor,
)
from repro.nn.functional import im2col
from repro.structured import BlockCirculantMatrix, CirculantMatrix


class TestFourWayFcEquivalence:
    def test_matrix_layer_engine_agree(self, rng):
        layer = BlockCirculantLinear(12, 8, 4, rng=rng)
        matrix = layer.as_matrix()
        deployed = DeployedModel.from_model(Sequential(layer))
        x = rng.normal(size=(3, 12))

        from_layer = layer(Tensor(x)).data
        from_matrix = np.stack(
            [matrix.matvec(row) + layer.bias.data for row in x]
        )
        from_engine = deployed.forward(x)

        assert np.allclose(from_layer, from_matrix, atol=1e-9)
        assert np.allclose(from_layer, from_engine, atol=1e-4)

    def test_eqn3_expansion_of_paper_layout(self, rng):
        # Paper Eqn. 3 with W = [C_1 | C_2]^T (m = 2n case): the product
        # W^T x equals sum of circulant matvecs, FFT-computed.
        n = 8
        w1, w2 = rng.normal(size=n), rng.normal(size=n)
        x1, x2 = rng.normal(size=n), rng.normal(size=n)
        w_stack = np.vstack(
            [CirculantMatrix(w1).to_dense(), CirculantMatrix(w2).to_dense()]
        )  # (2n, n) -> W^T is (n, 2n)
        direct = w_stack.T @ np.concatenate([x1, x2])
        via_fft = circular_convolve(
            np.concatenate([w1[:1], w1[1:][::-1]]), x1
        ) + circular_convolve(np.concatenate([w2[:1], w2[1:][::-1]]), x2)
        assert np.allclose(direct, via_fft)

    def test_pure_backend_end_to_end(self, rng):
        # The entire layer stack must work on the pure FFT kernels too.
        layer = BlockCirculantLinear(8, 8, 4, rng=rng)
        x = rng.normal(size=(2, 8))
        with use_backend("numpy"):
            expected = layer(Tensor(x)).data
        with use_backend("pure"):
            ours = layer(Tensor(x)).data
        assert np.allclose(ours, expected, atol=1e-10)


class TestFig3ConvReformulation:
    def test_tensor_conv_equals_im2col_matmul(self, rng):
        # Y = X F with X the im2col matrix (paper Fig. 3).
        conv = Conv2d(3, 5, 3, rng=rng)
        x = rng.normal(size=(2, 3, 7, 7))
        direct = conv(Tensor(x)).data
        cols = im2col(x, 3)  # (batch, L, C r^2)
        flat = cols @ conv.weight.data.reshape(5, -1).T + conv.bias.data
        reformulated = flat.transpose(0, 2, 1).reshape(direct.shape)
        assert np.allclose(direct, reformulated, atol=1e-10)

    def test_bc_conv_equals_bc_matmul_on_patches(self, rng):
        # The BC CONV layer is exactly a block-circulant matrix applied to
        # every (permuted) im2col row.
        bcc = BlockCirculantConv2d(4, 6, 3, block_size=2, rng=rng)
        x = rng.normal(size=(1, 4, 6, 6))
        direct = bcc(Tensor(x)).data

        matrix = BlockCirculantMatrix(
            bcc.weight.data.copy(),
            rows=bcc.filter_blocks * bcc.block_size,
            cols=bcc.block_cols * bcc.block_size,
        )
        cols = im2col(x, 3)  # channel-major columns
        positions = cols.shape[1]
        by_pos = cols.reshape(1, positions, 4, 9).transpose(0, 1, 3, 2)
        patches = by_pos.reshape(positions, 36)
        outputs = np.stack(
            [matrix.matvec(p)[:6] + bcc.bias.data for p in patches]
        )
        reformulated = outputs.T.reshape(1, 6, 4, 4)
        assert np.allclose(direct, reformulated, atol=1e-9)

    def test_frequency_and_spatial_conv_agree(self, rng):
        # FFT-based 2-D convolution (repro.fft.convolve2d) agrees with the
        # CONV layer on a single channel/filter.
        from repro.fft import convolve2d

        conv = Conv2d(1, 1, 3, bias=False, rng=rng)
        x = rng.normal(size=(1, 1, 9, 8))
        layer_out = conv(Tensor(x)).data[0, 0]
        fft_out = convolve2d(x[0, 0], conv.weight.data[0, 0])
        assert np.allclose(layer_out, fft_out, atol=1e-10)


class TestStorageClaims:
    def test_spectra_storage_is_o_n(self, rng):
        # Deployed spectra per block: b//2+1 complex numbers, i.e. O(b)
        # reals — matching the paper's O(n) storage claim per layer.
        layer = BlockCirculantLinear(256, 256, 64, bias=False, rng=rng)
        deployed = DeployedModel.from_model(Sequential(layer))
        record = deployed.records[0]
        spectra_reals = record["spectra"].size * 2
        dense_reals = 256 * 256
        assert spectra_reals < dense_reals / 20

    def test_quantize_then_deploy(self, rng):
        # Composition of the two compression axes (extension feature).
        from repro.quantize import quantize_model

        layer = BlockCirculantLinear(32, 16, 8, rng=rng)
        model = Sequential(layer)
        x = rng.normal(size=(4, 32))
        model.eval()
        before = model(Tensor(x)).data
        quantize_model(model, 12)
        deployed = DeployedModel.from_model(model)
        assert np.abs(deployed.forward(x) - before).max() < 0.2
