"""Failure injection and robustness tests across module boundaries.

The deployment pipeline crosses several serialization boundaries
(architecture strings, checkpoints, artifacts, input bundles); these
tests corrupt each one and check that the failure is a clean, typed
error — not silence, not a wrong answer.
"""

import json

import numpy as np
import pytest

from repro.embedded import DeployedModel
from repro.exceptions import (
    ConfigurationError,
    DeploymentError,
    ParseError,
    ReproError,
)
from repro.io import (
    build_model_from_string,
    load_inputs,
    load_weights,
    parse_architecture,
    save_weights,
    validate_inputs,
)
from repro.nn import Tensor


@pytest.fixture
def model(rng):
    model = build_model_from_string("16-8CFb4-4F", rng=rng)
    model.eval()
    return model


class TestCorruptedArtifacts:
    def test_truncated_deploy_file(self, model, tmp_path):
        path = tmp_path / "model.npz"
        DeployedModel.from_model(model).save(path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(Exception):  # zipfile/ValueError from numpy
            DeployedModel.load(path)

    def test_header_with_wrong_version(self, model, tmp_path):
        path = tmp_path / "model.npz"
        deployed = DeployedModel.from_model(model)
        deployed.save(path)
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files}
        header = json.loads(bytes(arrays["__header__"].tobytes()).decode())
        header["version"] = 999
        arrays["__header__"] = np.frombuffer(
            json.dumps(header).encode(), dtype=np.uint8
        )
        np.savez(path, **arrays)
        with pytest.raises(DeploymentError):
            DeployedModel.load(path)

    def test_missing_array_reference(self, model, tmp_path):
        path = tmp_path / "model.npz"
        DeployedModel.from_model(model).save(path)
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files}
        victim = next(k for k in arrays if k.startswith("layer0"))
        del arrays[victim]
        np.savez(path, **arrays)
        with pytest.raises(Exception):
            DeployedModel.load(path)

    def test_checkpoint_wrong_shapes_rejected(self, model, rng, tmp_path):
        path = tmp_path / "weights.npz"
        save_weights(model, path)
        other = build_model_from_string("16-8CFb2-4F", rng=rng)
        with pytest.raises((KeyError, ValueError)):
            load_weights(other, path)


class TestHostileInputs:
    def test_nan_inputs_detected_by_range_check(self, rng):
        bad = rng.normal(size=(2, 16))
        bad[0, 0] = np.nan
        with pytest.raises(ParseError):
            validate_inputs(bad, (16,), value_range=(-10.0, 10.0))

    def test_inf_inputs_detected_by_range_check(self, rng):
        bad = rng.normal(size=(2, 16))
        bad[1, 3] = np.inf
        with pytest.raises(ParseError):
            validate_inputs(bad, (16,), value_range=(-10.0, 10.0))

    def test_engine_stays_finite_on_extreme_inputs(self, model):
        deployed = DeployedModel.from_model(model)
        extreme = np.full((1, 16), 1e6)
        probabilities = deployed.predict_proba(extreme)
        assert np.all(np.isfinite(probabilities))
        assert probabilities.sum() == pytest.approx(1.0)

    def test_empty_csv_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("f0,f1\n")
        with pytest.raises(Exception):
            load_inputs(path)


class TestHostileArchitectureStrings:
    @pytest.mark.parametrize(
        "text",
        [
            "256--10F",  # empty token is dropped; still valid -> check below
            "256-10F-",  # trailing dash
        ],
    )
    def test_stray_dashes_tolerated(self, text):
        # Empty tokens are filtered; these remain parseable.
        spec = parse_architecture(text)
        assert spec.layers[-1].units == 10

    @pytest.mark.parametrize(
        "text",
        [
            "256-128CF-10F",  # BC layer without block size
            "256-128CFb-10F",  # dangling block marker
            "3x8x8-64Conv-10F",  # conv without kernel
            "256-MP-10F",  # pool without size
            "-10F",
            "256-0F",  # zero-width layer caught at build time
        ],
    )
    def test_malformed_tokens_raise_parse_or_config_error(self, text):
        try:
            spec = parse_architecture(text)
        except ParseError:
            return
        with pytest.raises((ParseError, ConfigurationError, ValueError)):
            build_model_from_string(text)

    def test_all_library_errors_share_base(self):
        for exc in (ParseError, DeploymentError, ConfigurationError):
            assert issubclass(exc, ReproError)


class TestNumericalStability:
    def test_training_on_constant_inputs_stays_finite(self, rng):
        # Degenerate data (zero variance) must not produce NaNs.
        from repro.nn import Adam, CrossEntropyLoss

        model = build_model_from_string("8-4CFb2-2F", rng=rng)
        x = np.ones((16, 8))
        y = np.zeros(16, dtype=int)
        loss_fn = CrossEntropyLoss()
        optimizer = Adam(model.parameters(), lr=0.01)
        for _ in range(20):
            optimizer.zero_grad()
            loss = loss_fn(model(Tensor(x)), y)
            loss.backward()
            optimizer.step()
        assert np.isfinite(loss.item())
        for param in model.parameters():
            assert np.all(np.isfinite(param.data))

    def test_gradient_clipping_tames_exploding_loss(self, rng):
        from repro.nn import SGD, BlockCirculantLinear, clip_grad_norm

        layer = BlockCirculantLinear(8, 8, 4, rng=rng)
        # Huge targets induce huge gradients at lr that would diverge.
        x = rng.normal(size=(4, 8))
        target = rng.normal(size=(4, 8)) * 1e6
        optimizer = SGD(layer.parameters(), lr=0.1)
        for _ in range(10):
            optimizer.zero_grad()
            out = layer(Tensor(x))
            loss = ((out - Tensor(target)) ** 2).mean()
            loss.backward()
            clip_grad_norm(layer.parameters(), max_norm=1.0)
            optimizer.step()
        for param in layer.parameters():
            assert np.all(np.isfinite(param.data))
