"""End-to-end integration: train -> serialize -> deploy -> profile.

Exercises the full paper pipeline of Fig. 4 on the synthetic MNIST
stand-in: architecture string to trained model, checkpoint round trip,
FFT-domain deployment artifact, standalone inference parity, and runtime
prediction on the Table I platforms.
"""

import numpy as np
import pytest

from repro.data import (
    DataLoader,
    bilinear_resize,
    flatten_images,
    load_synthetic_mnist,
)
from repro.embedded import DeployedModel, InferenceProfiler
from repro.io import (
    build_model_from_string,
    load_inputs,
    load_weights,
    save_inputs,
    save_weights,
)
from repro.nn import Adam, CrossEntropyLoss, Tensor, Trainer, accuracy
from repro.zoo import ARCH1_INPUT_SIDE


@pytest.fixture(scope="module")
def mnist16():
    train, test = load_synthetic_mnist(train_size=600, test_size=200, seed=0)
    side = ARCH1_INPUT_SIDE

    def preprocess(images):
        return flatten_images(bilinear_resize(images, side, side))

    return (
        preprocess(train.inputs),
        train.labels,
        preprocess(test.inputs),
        test.labels,
    )


@pytest.fixture(scope="module")
def trained_model(mnist16):
    x_train, y_train, _, _ = mnist16
    rng = np.random.default_rng(7)
    model = build_model_from_string("256-128CFb64-128CFb64-10F", rng=rng)
    from repro.data import ArrayDataset

    loader = DataLoader(
        ArrayDataset(x_train, y_train), batch_size=64, shuffle=True, seed=0
    )
    trainer = Trainer(model, CrossEntropyLoss(), Adam(model.parameters(), lr=0.003))
    trainer.fit(loader, epochs=8)
    model.eval()
    return model


class TestEndToEnd:
    def test_training_reaches_useful_accuracy(self, trained_model, mnist16):
        _, _, x_test, y_test = mnist16
        score = accuracy(trained_model(Tensor(x_test)), y_test)
        assert score > 0.85

    def test_checkpoint_round_trip(self, trained_model, mnist16, tmp_path):
        _, _, x_test, _ = mnist16
        path = tmp_path / "arch1.npz"
        save_weights(trained_model, path)
        clone = build_model_from_string(
            "256-128CFb64-128CFb64-10F", rng=np.random.default_rng(1)
        )
        load_weights(clone, path)
        clone.eval()
        assert np.allclose(
            trained_model(Tensor(x_test[:16])).data,
            clone(Tensor(x_test[:16])).data,
        )

    def test_deployment_accuracy_parity(self, trained_model, mnist16):
        _, _, x_test, y_test = mnist16
        deployed = DeployedModel.from_model(trained_model)
        train_preds = trained_model(Tensor(x_test)).data.argmax(axis=1)
        deploy_preds = deployed.predict(x_test)
        # float32 storage may flip at most a tiny fraction of argmaxes.
        assert (train_preds == deploy_preds).mean() > 0.99

    def test_deploy_save_load_predicts(self, trained_model, mnist16, tmp_path):
        _, _, x_test, y_test = mnist16
        deployed = DeployedModel.from_model(trained_model)
        path = tmp_path / "deployed.npz"
        deployed.save(path)
        loaded = DeployedModel.load(path)
        score = (loaded.predict(x_test) == y_test).mean()
        assert score > 0.85

    def test_inputs_file_flow(self, trained_model, mnist16, tmp_path):
        # Fig. 4: inputs parser feeds the engine from a file.
        _, _, x_test, y_test = mnist16
        path = tmp_path / "inputs.npz"
        save_inputs(path, x_test[:50], y_test[:50])
        inputs, labels = load_inputs(path)
        deployed = DeployedModel.from_model(trained_model)
        assert (deployed.predict(inputs) == labels).mean() > 0.8

    def test_runtime_prediction_sane(self, trained_model):
        profiler = InferenceProfiler(trained_model, (256,))
        cpp = profiler.runtime_us("honor6x", "cpp")
        java = profiler.runtime_us("honor6x", "java")
        # Table II neighbourhood: ~100 us C++, ~260 us Java.
        assert 50 < cpp < 300
        assert 130 < java < 700
        assert java > cpp

    def test_host_inference_fast(self, trained_model, mnist16):
        _, _, x_test, _ = mnist16
        deployed = DeployedModel.from_model(trained_model)
        us_per_image = deployed.time_inference(x_test[:100], repeats=2)
        assert us_per_image < 10_000  # loose: just not pathological
