"""PipelineConfig validation, defaults, and file round trip."""

import json

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.nn import Linear, ReLU, Sequential
from repro.pipeline import PipelineConfig


class TestArchitecture:
    def test_required(self):
        with pytest.raises(ConfigurationError, match="architecture"):
            PipelineConfig()

    def test_zoo_name(self):
        config = PipelineConfig(architecture="arch1")
        assert config.input_shape == (256,)
        assert config.dataset == "synthetic_mnist"

    def test_zoo_name_with_options(self):
        config = PipelineConfig(
            architecture="arch1", arch_options={"block_size": 32}
        )
        assert config.arch_options == {"block_size": 32}

    def test_arch_string(self):
        config = PipelineConfig(architecture="121-64CFb32-10F")
        assert config.input_shape == (121,)
        assert config.dataset == "synthetic_mnist"

    def test_conv_arch_string_defaults_to_cifar(self):
        config = PipelineConfig(architecture="3x32x32-8Conv3-MP2-10F")
        assert config.dataset == "synthetic_cifar"

    def test_live_sequential(self, rng):
        model = Sequential(Linear(49, 8, rng=rng), ReLU(), Linear(8, 4, rng=rng))
        config = PipelineConfig(architecture=model, epochs=0)
        assert config.input_shape == (49,)
        assert config.dataset == "synthetic_mnist"

    def test_garbage_name_rejected(self):
        with pytest.raises(ConfigurationError, match="neither"):
            PipelineConfig(architecture="not-an-arch!!")

    def test_wrong_type_rejected(self):
        with pytest.raises(ConfigurationError, match="architecture"):
            PipelineConfig(architecture=42)

    def test_arch_options_only_for_zoo_names(self):
        with pytest.raises(ConfigurationError, match="arch_options"):
            PipelineConfig(
                architecture="121-64CFb32-10F",
                arch_options={"block_size": 8},
            )

    def test_arch_options_unknown_key_fails_at_config_time(self):
        with pytest.raises(ConfigurationError, match="blocksize"):
            PipelineConfig(
                architecture="arch1", arch_options={"blocksize": 8}
            )

    def test_arch_options_rng_reserved(self):
        with pytest.raises(ConfigurationError, match="rng"):
            PipelineConfig(
                architecture="arch1",
                arch_options={"rng": np.random.default_rng(0)},
            )

    def test_arch_options_must_be_jsonable(self):
        # block_size is a real builder kwarg, but an ndarray value
        # could never land in provenance.
        with pytest.raises(ConfigurationError, match="JSON"):
            PipelineConfig(
                architecture="arch1",
                arch_options={"block_size": np.int32(8)},
            )

    def test_live_conv_sequential_accepts_any_spatial_size(self, rng):
        from repro.nn import Conv2d, Flatten, Linear, ReLU, Sequential

        model = Sequential(
            Conv2d(3, 4, 3, padding=1, rng=rng), ReLU(), Flatten(),
            Linear(4 * 8 * 8, 10, rng=rng),
        )
        config = PipelineConfig(
            architecture=model, dataset="bundle.npz", epochs=0
        )
        assert config.input_shape == (3, None, None)


class TestDatasetValidation:
    def test_unknown_dataset_rejected(self):
        with pytest.raises(ConfigurationError, match="dataset"):
            PipelineConfig(architecture="arch1", dataset="imagenet")

    def test_bundle_path_accepted(self):
        config = PipelineConfig(
            architecture="121-64CFb32-10F", dataset="bundle.npz"
        )
        assert config.dataset == "bundle.npz"

    def test_npy_rejected_at_config_time(self):
        # .npy has no label slot, so the supervised train stage could
        # never run — the declarative contract is to fail here.
        with pytest.raises(ConfigurationError, match="dataset"):
            PipelineConfig(
                architecture="121-64CFb32-10F", dataset="inputs.npy"
            )

    def test_mnist_needs_square_feature_count(self):
        # 120 features is not a perfect square: un-resizable.
        with pytest.raises(ConfigurationError, match="square"):
            PipelineConfig(
                architecture="120-10F", dataset="synthetic_mnist"
            )

    def test_cifar_needs_conv_shape(self):
        with pytest.raises(ConfigurationError, match="synthetic_cifar"):
            PipelineConfig(architecture="arch1", dataset="synthetic_cifar")


class TestPolicyValidation:
    def test_bad_budgets(self):
        for kwargs in (
            {"train_size": 0},
            {"test_size": 0},
            {"batch_size": 0},
            {"epochs": -1},
            {"fine_tune_epochs": -1},
            {"lr": 0.0},
            {"test_fraction": 1.0},
            {"noise": -0.1},
        ):
            with pytest.raises(ConfigurationError):
                PipelineConfig(architecture="arch1", **kwargs)

    def test_quantize_bits_floor(self):
        with pytest.raises(ConfigurationError, match="quantize_bits"):
            PipelineConfig(architecture="arch1", quantize_bits=1)

    def test_block_size_floor(self):
        with pytest.raises(ConfigurationError, match="block_size"):
            PipelineConfig(architecture="arch1", block_size=0)

    def test_layer_overrides_require_block_size(self):
        with pytest.raises(ConfigurationError, match="layer_block_sizes"):
            PipelineConfig(
                architecture="arch1", layer_block_sizes={0: 8}
            )

    def test_precisions_validated(self):
        with pytest.raises(ConfigurationError):
            PipelineConfig(architecture="arch1", precisions=("fp16",))
        with pytest.raises(ConfigurationError, match="duplicate"):
            PipelineConfig(
                architecture="arch1", precisions=("fp64", "fp64")
            )
        with pytest.raises(ConfigurationError, match="at least one"):
            PipelineConfig(architecture="arch1", precisions=())

    def test_precision_names_normalized(self):
        config = PipelineConfig(
            architecture="arch1", precisions=("fp64", "fp32")
        )
        assert config.precisions == ("fp64", "fp32")


class TestIntrospection:
    def test_describe_is_jsonable(self):
        config = PipelineConfig(
            architecture="arch2", quantize_bits=12, block_size=8,
            layer_block_sizes={0: 4}, out="x.npz",
        )
        payload = json.loads(json.dumps(config.describe()))
        assert payload["architecture"] == "arch2"
        assert payload["quantize_bits"] == 12
        assert payload["layer_block_sizes"] == {"0": 4}

    def test_hash_stable_and_sensitive(self):
        a = PipelineConfig(architecture="arch2", epochs=3)
        b = PipelineConfig(architecture="arch2", epochs=3)
        c = PipelineConfig(architecture="arch2", epochs=4)
        assert a.config_hash() == b.config_hash()
        assert a.config_hash() != c.config_hash()

    def test_sequential_label(self, rng):
        model = Sequential(Linear(49, 4, rng=rng))
        config = PipelineConfig(architecture=model, epochs=0)
        assert "Sequential" in config.architecture_label()


class TestFromFile:
    def test_round_trip_with_overrides(self, tmp_path):
        path = tmp_path / "cfg.json"
        path.write_text(json.dumps({
            "architecture": "arch2",
            "epochs": 7,
            "quantize_bits": 12,
            "precisions": ["fp64", "fp32"],
            "skip_layers": [4],
        }))
        config = PipelineConfig.from_file(path, epochs=2)
        assert config.epochs == 2          # override wins
        assert config.quantize_bits == 12  # file value kept
        assert config.precisions == ("fp64", "fp32")
        assert config.skip_layers == (4,)

    def test_none_overrides_do_not_mask_file(self, tmp_path):
        path = tmp_path / "cfg.json"
        path.write_text(json.dumps({"architecture": "arch2", "epochs": 7}))
        config = PipelineConfig.from_file(path, epochs=None)
        assert config.epochs == 7

    def test_unknown_keys_rejected(self, tmp_path):
        path = tmp_path / "cfg.json"
        path.write_text(json.dumps({"architecture": "arch2", "epoch": 7}))
        with pytest.raises(ConfigurationError, match="unknown"):
            PipelineConfig.from_file(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot read"):
            PipelineConfig.from_file(tmp_path / "absent.json")

    def test_non_object_rejected(self, tmp_path):
        path = tmp_path / "cfg.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ConfigurationError, match="JSON object"):
            PipelineConfig.from_file(path)
