"""Pipeline stage execution, resumption, and artifact metadata."""

import numpy as np
import pytest

from repro.embedded import DeployedModel
from repro.exceptions import PipelineError
from repro.nn import BlockCirculantLinear, Linear, ReLU, Sequential
from repro.pipeline import Pipeline, PipelineConfig

# Tiny budgets everywhere: these tests exercise the plumbing, not the
# learning curves.
TINY = dict(train_size=60, test_size=24, epochs=1, batch_size=16)


def dense_config(**kwargs):
    merged = {**TINY, "architecture": "16-8F-10F",
              "block_size": 4, "quantize_bits": 12, **kwargs}
    return PipelineConfig(**merged)


class TestStageFlow:
    def test_run_produces_all_four_results(self):
        result = Pipeline(dense_config()).run()
        assert not result.train.skipped
        assert not result.compress.skipped
        assert not result.quantize.skipped
        assert result.package.version == 2
        assert result.package.deployed.quantized

    def test_stage_autoruns_predecessors(self):
        pipeline = Pipeline(dense_config())
        quantize = pipeline.quantize()
        assert not quantize.skipped
        assert set(pipeline.results) == {"train", "compress", "quantize"}

    def test_results_cached_until_forced(self):
        pipeline = Pipeline(dense_config())
        first = pipeline.train()
        assert pipeline.train() is first
        again = pipeline.train(force=True)
        assert again is not first

    def test_force_compress_restarts_from_trained_model(self):
        # Re-running compress must project the *trained* model again,
        # not the output of its own previous run (double conversion
        # would change block structure and lose the dense baseline).
        pipeline = Pipeline(dense_config())
        first = pipeline.compress()
        first_weights = pipeline.model[0].weight.data.copy()
        second = pipeline.compress(force=True)
        assert second.block_size == first.block_size
        assert len(second.report) == len(first.report)
        assert np.array_equal(pipeline.model[0].weight.data, first_weights)

    def test_force_invalidates_downstream(self):
        pipeline = Pipeline(dense_config())
        pipeline.package()
        assert set(pipeline.results) == {
            "train", "compress", "quantize", "package"
        }
        pipeline.compress(force=True)
        assert set(pipeline.results) == {"train", "compress"}

    def test_compress_converts_dense_layers(self):
        pipeline = Pipeline(dense_config())
        compress = pipeline.compress()
        assert compress.block_size == 4
        assert len(compress.report) == 2  # both dense layers measured
        kinds = [type(l).__name__ for l in pipeline.model]
        assert "BlockCirculantLinear" in kinds

    def test_quantize_reports_formats_and_delta(self):
        pipeline = Pipeline(dense_config())
        quantize = pipeline.quantize()
        assert quantize.total_bits == 12
        assert quantize.layers and all(
            "qformat" in row for row in quantize.layers
        )
        assert 0 < quantize.max_weight_error < 0.05
        assert quantize.accuracy_delta is not None

    def test_quantize_error_column_in_compress_report(self):
        compress = Pipeline(dense_config()).compress()
        assert all(
            row.quantization_error is not None for row in compress.report
        )

    def test_constructor_field_shorthand(self):
        pipeline = Pipeline(architecture="16-4F", **TINY)
        assert pipeline.config.input_shape == (16,)

    def test_config_xor_fields(self):
        with pytest.raises(PipelineError, match="not both"):
            Pipeline(dense_config(), architecture="arch1")


class TestSkippedStages:
    def test_no_block_size_skips_compress(self):
        config = PipelineConfig(
            architecture="16-8CFb4-10F", **TINY
        )
        pipeline = Pipeline(config)
        compress = pipeline.compress()
        assert compress.skipped
        assert compress.test_accuracy == pipeline.results[
            "train"
        ].test_accuracy

    def test_no_bits_skips_quantize_and_packages_float(self):
        config = PipelineConfig(architecture="16-8CFb4-10F", **TINY)
        result = Pipeline(config).run()
        assert result.quantize.skipped
        assert not result.package.deployed.quantized
        assert result.package.metadata["quantization"] is None

    def test_live_sequential_never_mutated_by_training(self, rng):
        # The pipeline deep-copies a live Sequential: training must not
        # touch the caller's weights, and train(force=True) must
        # restart from them instead of stacking epochs.
        model = Sequential(
            Linear(16, 8, rng=rng), ReLU(), Linear(8, 10, rng=rng)
        )
        before = model[0].weight.data.copy()
        pipeline = Pipeline(
            PipelineConfig(architecture=model, **TINY)
        )
        pipeline.train()
        assert np.array_equal(model[0].weight.data, before)
        first_run = pipeline.model[0].weight.data.copy()
        pipeline.train(force=True)
        assert np.array_equal(model[0].weight.data, before)
        # Deterministic budget from identical start -> identical result
        # (cumulative training would differ).
        assert np.array_equal(pipeline.model[0].weight.data, first_run)

    def test_policy_index_out_of_range_fails(self):
        config = PipelineConfig(
            architecture="16-8F-10F", **TINY,
            block_size=4, skip_layers=(40,),
        )
        with pytest.raises(PipelineError, match="layers 0"):
            Pipeline(config).compress()

    def test_block_size_override_on_non_dense_layer_fails(self):
        # Index 1 is the ReLU between the two Linears: a typo'd index
        # must error, not silently no-op.
        config = PipelineConfig(
            architecture="16-8F-10F", **TINY,
            block_size=4, layer_block_sizes={1: 2},
        )
        with pytest.raises(PipelineError, match="ReLU"):
            Pipeline(config).compress()

    def test_pretrained_sequential_epochs_zero(self, rng):
        model = Sequential(
            BlockCirculantLinear(16, 8, 4, rng=rng), ReLU(),
            Linear(8, 4, rng=rng),
        ).eval()
        config = PipelineConfig(
            architecture=model, epochs=0,
            train_size=40, test_size=16, quantize_bits=10,
        )
        before = model[0].weight.data.copy()
        result = Pipeline(config).run()
        assert result.train.skipped
        assert result.package.deployed.quantized
        # The packaged records quantize the *given* weights; the live
        # model itself must not have been mutated (epochs=0, and the
        # quantize stage works on the artifact records).
        assert np.array_equal(model[0].weight.data, before)
        assert result.quantize.test_accuracy is not None


class TestDataSources:
    def test_bundle_path_dataset(self, tmp_path, rng):
        from repro.io import save_inputs

        bundle = tmp_path / "bundle.npz"
        save_inputs(
            bundle,
            rng.normal(size=(60, 16)),
            rng.integers(0, 4, size=60),
        )
        config = PipelineConfig(
            architecture="16-4F", dataset=bundle,
            epochs=1, test_fraction=0.25,
        )
        result = Pipeline(config).run()
        assert result.train.test_accuracy >= 0.0

    def test_conv_sequential_with_non_cifar_spatial_bundle(
        self, tmp_path, rng
    ):
        # A live CONV model pins channels but not spatial size: an
        # 8x8 bundle must pass the shape check and train end to end.
        from repro.io import save_inputs
        from repro.nn import Conv2d, Flatten, Linear, ReLU, Sequential

        model = Sequential(
            Conv2d(3, 4, 3, padding=1, rng=rng), ReLU(), Flatten(),
            Linear(4 * 8 * 8, 4, rng=rng),
        )
        bundle = tmp_path / "imgs8.npz"
        save_inputs(
            bundle,
            rng.normal(size=(40, 3, 8, 8)),
            rng.integers(0, 4, size=40),
        )
        config = PipelineConfig(
            architecture=model, dataset=bundle, epochs=1,
            batch_size=16, test_fraction=0.25,
        )
        result = Pipeline(config).run()
        assert result.package.version == 2

    def test_bundle_without_labels_fails(self, tmp_path, rng):
        from repro.io import save_inputs

        bundle = tmp_path / "unlabeled.npz"
        save_inputs(bundle, rng.normal(size=(20, 16)))
        with pytest.raises(PipelineError, match="labels"):
            Pipeline(
                PipelineConfig(architecture="16-4F", dataset=bundle)
            ).train()

    def test_bundle_shape_mismatch_fails(self, tmp_path, rng):
        from repro.io import save_inputs

        bundle = tmp_path / "wrong.npz"
        save_inputs(
            bundle, rng.normal(size=(20, 9)), rng.integers(0, 4, size=20)
        )
        with pytest.raises(PipelineError, match="shape"):
            Pipeline(
                PipelineConfig(architecture="16-4F", dataset=bundle)
            ).train()


class TestArtifactMetadata:
    def test_metadata_sections(self):
        result = Pipeline(dense_config()).run()
        meta = result.package.metadata
        assert meta["quantization"]["total_bits"] == 12
        assert meta["quantization"]["layers"]
        assert meta["compression"]["block_size"] == 4
        assert meta["compression"]["projection"]
        provenance = meta["provenance"]
        assert provenance["config"]["architecture"] == "16-8F-10F"
        assert len(provenance["config_hash"]) == 16
        assert provenance["training"]["epochs"] == 1

    def test_metadata_round_trips_through_file(self, tmp_path):
        out = tmp_path / "built.npz"
        result = Pipeline(dense_config(out=out)).run()
        loaded = DeployedModel.load(out)
        assert loaded.metadata == result.package.metadata
        assert loaded.source_version == 2

    def test_layer_block_size_overrides_apply(self):
        config = PipelineConfig(
            architecture="16-8F-10F", **TINY,
            block_size=4, layer_block_sizes={0: 2},
        )
        pipeline = Pipeline(config)
        pipeline.compress()
        assert pipeline.model[0].block_size == 2
