"""Workspace arenas + fuse_plan: allocation-free hot path, bitwise parity."""

import threading

import numpy as np
import pytest

import repro.runtime.plan as plan_mod
from repro.embedded.deploy import DeployedModel
from repro.nn import (
    BatchNorm1d,
    BlockCirculantConv2d,
    BlockCirculantLinear,
    Flatten,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
    Softmax,
)
from repro.runtime import (
    DEFAULT_BATCH_BUCKETS,
    ForkWorkerPool,
    InferenceSession,
    SerialExecutor,
    ShardedExecutor,
    ThreadWorkerPool,
    ThreadedExecutor,
    Workspace,
    compile_model_plan,
    fuse_plan,
)


@pytest.fixture
def model():
    rng = np.random.default_rng(0)
    return Sequential(
        BlockCirculantLinear(96, 64, 8, rng=rng),
        ReLU(),
        BlockCirculantLinear(64, 40, 4, rng=rng),
        ReLU(),
        Linear(40, 10, rng=rng),
        Softmax(),
    ).eval()


def conv_model():
    rng = np.random.default_rng(3)
    return Sequential(
        BlockCirculantConv2d(3, 8, 3, block_size=4, padding=1, rng=rng),
        ReLU(),
        MaxPool2d(2),
        Flatten(),
        BlockCirculantLinear(8 * 4 * 4, 32, 8, rng=rng),
        ReLU(),
        Linear(32, 5, rng=rng),
    ).eval()


def bn_model():
    rng = np.random.default_rng(7)
    return Sequential(
        BlockCirculantLinear(32, 16, 4, rng=rng),
        BatchNorm1d(16),
        ReLU(),
        Linear(16, 4, rng=rng),
        Softmax(),
    ).eval()


@pytest.fixture
def shard_everything(monkeypatch):
    """Let tiny test layers pass the auto-shard size floor."""
    monkeypatch.setattr(plan_mod, "MIN_SHARD_BYTES", 0)


class TestWorkspace:
    def test_bucket_rounds_up(self):
        ws = Workspace(buckets=(1, 4, 16))
        assert ws.bucket(1) == 1
        assert ws.bucket(2) == 4
        assert ws.bucket(4) == 4
        assert ws.bucket(9) == 16

    def test_bucket_beyond_max_is_exact(self):
        ws = Workspace(buckets=(1, 4))
        assert ws.bucket(9) == 9
        assert ws.bucket(300) == 300

    def test_get_reuses_buffer(self):
        ws = Workspace()
        a = ws.get("slot", (4, 8), np.float64)
        b = ws.get("slot", (4, 8), np.float64)
        assert a is b

    def test_distinct_slots_shapes_dtypes(self):
        ws = Workspace()
        a = ws.get("a", (4, 8), np.float64)
        assert ws.get("b", (4, 8), np.float64) is not a
        assert ws.get("a", (2, 8), np.float64) is not a
        assert ws.get("a", (4, 8), np.float32) is not a

    def test_zeros_zeroed_at_allocation(self):
        ws = Workspace()
        z = ws.zeros("pad", (3, 3), np.float64)
        assert np.array_equal(z, np.zeros((3, 3)))

    def test_stats_and_clear(self):
        ws = Workspace(buckets=(1, 2))
        ws.get("a", (4, 8), np.float64)
        stats = ws.stats()
        assert stats["buffers"] == 1
        assert stats["nbytes"] == 4 * 8 * 8
        assert stats["buckets"] == (1, 2)
        ws.clear()
        assert ws.stats()["buffers"] == 0

    def test_default_buckets(self):
        assert Workspace().buckets == DEFAULT_BATCH_BUCKETS

    def test_rejects_bad_buckets(self):
        with pytest.raises(ValueError):
            Workspace(buckets=())
        with pytest.raises(ValueError):
            Workspace(buckets=(0, 2))


class TestFusePlan:
    def test_folds_affine_into_compute(self):
        model = bn_model()
        ops = compile_model_plan(model)
        fused = fuse_plan(ops)
        assert len(fused) < len(ops)
        # batch-norm's affine (and its relu) folded into the bc layer
        assert any(
            name.startswith("bc_linear") and "affine" in name
            for name in (op.name for op in fused)
        )

    def test_fused_plan_bitwise_matches(self, rng):
        model = bn_model()
        ops = compile_model_plan(model)
        fused = fuse_plan(ops)
        x = rng.normal(size=(6, 32))
        y_ref = x
        for op in ops:
            y_ref = op(y_ref)
        y_fused = x
        for op in fused:
            y_fused = op(y_fused)
        assert np.array_equal(y_fused, y_ref)

    def test_softmax_never_folds(self):
        fused = fuse_plan(compile_model_plan(bn_model()))
        assert fused[-1].name == "softmax"

    def test_flatten_folds_into_pool(self):
        fused = fuse_plan(compile_model_plan(conv_model()))
        names = [op.name for op in fused]
        assert any(name.endswith("+flatten") for name in names)
        assert "flatten" not in names

    def test_first_op_never_folds(self, rng):
        m_rng = np.random.default_rng(5)
        model = Sequential(
            Flatten(), Linear(12, 4, rng=m_rng), Softmax()
        ).eval()
        fused = fuse_plan(compile_model_plan(model))
        assert fused[0].name == "flatten"
        x = rng.normal(size=(3, 3, 4))
        x_copy = x.copy()
        session = InferenceSession.freeze(model)
        session.forward(x)
        session.forward(x)
        assert np.array_equal(x, x_copy)  # user input never mutated

    def test_fold_preserves_shard_surface(self, shard_everything):
        session = InferenceSession.freeze(conv_model(), row_shards=2)
        op = session.ops[0]
        assert "[rows/2]" in op.name and "+relu" in op.name
        assert op.shard_fns is not None and op.combine is not None


def _make_executor(kind):
    if kind == "serial":
        return SerialExecutor()
    if kind == "threaded":
        return ThreadedExecutor(threads=2)
    return ShardedExecutor(workers=2, mode="batch")


class TestArenaParity:
    """Arena + fused path is bitwise-identical to the fresh unfused path."""

    @pytest.mark.parametrize("precision", ["fp64", "fp32"])
    @pytest.mark.parametrize("kind", ["serial", "threaded", "sharded"])
    def test_bitwise_matches_fresh_path(self, model, rng, precision, kind):
        ref = InferenceSession.freeze(
            model, precision=precision, arena=False, fuse=False
        )
        with InferenceSession.freeze(
            model, precision=precision, executor=_make_executor(kind)
        ) as session:
            # batch sizes: bucket-exact, ragged tails, repeated calls
            for batch in (1, 2, 5, 16, 37):
                x = rng.normal(size=(batch, 96))
                for _ in range(2):
                    assert np.array_equal(
                        session.forward(x), ref.forward(x)
                    )
            x = rng.normal(size=(23, 96))
            assert np.array_equal(
                session.predict_proba(x, batch_size=7),
                ref.predict_proba(x, batch_size=7),
            )

    @pytest.mark.parametrize("precision", ["fp64", "fp32"])
    def test_conv_model_bitwise(self, rng, precision):
        model = conv_model()
        ref = InferenceSession.freeze(
            model, precision=precision, arena=False, fuse=False
        )
        session = InferenceSession.freeze(model, precision=precision)
        for batch in (1, 3, 8):
            x = rng.normal(size=(batch, 3, 8, 8))
            for _ in range(2):
                assert np.array_equal(session.forward(x), ref.forward(x))

    def test_batch_beyond_largest_bucket(self, model, rng):
        ref = InferenceSession.freeze(model, arena=False, fuse=False)
        session = InferenceSession.freeze(model, batch_buckets=(1, 4))
        x = rng.normal(size=(9, 96))
        for _ in range(2):
            assert np.array_equal(session.forward(x), ref.forward(x))

    def test_results_stable_across_calls(self, model, rng):
        # The returned array must not alias arena buffers: a second
        # forward through the same plan must not rewrite earlier results.
        session = InferenceSession.freeze(model)
        x1 = rng.normal(size=(5, 96))
        x2 = rng.normal(size=(5, 96))
        r1 = session.forward(x1)
        r1_copy = r1.copy()
        session.forward(x2)
        assert np.array_equal(r1, r1_copy)

    def test_row_sharded_arena_bitwise(self, model, rng, shard_everything):
        ref = InferenceSession.freeze(
            model, arena=False, fuse=False, row_shards=2
        )
        with InferenceSession.freeze(
            model,
            executor=ThreadedExecutor(threads=2, mode="rows"),
            row_shards=2,
        ) as session:
            x = rng.normal(size=(5, 96))
            for _ in range(2):
                assert np.array_equal(session.forward(x), ref.forward(x))

    def test_from_deployed_arena_bitwise(self, model, rng):
        deployed = DeployedModel.from_model(model)
        ref = InferenceSession.from_deployed(
            deployed, arena=False, fuse=False
        )
        session = InferenceSession.from_deployed(deployed)
        x = rng.normal(size=(6, 96))
        for _ in range(2):
            assert np.array_equal(session.forward(x), ref.forward(x))


class TestArenaKnobs:
    def test_arena_off_reports_disabled(self, model):
        session = InferenceSession.freeze(model, arena=False)
        info = session.executor.arena_info()
        assert info["enabled"] is False

    def test_arena_on_reports_buffers_after_use(self, model, rng):
        session = InferenceSession.freeze(model)
        session.forward(rng.normal(size=(4, 96)))
        info = session.executor.arena_info()
        assert info["enabled"] is True
        assert info["buckets"] == DEFAULT_BATCH_BUCKETS
        assert info["workspaces"] >= 1
        assert info["buffers"] > 0 and info["nbytes"] > 0

    def test_custom_buckets_flow_through(self, model, rng):
        session = InferenceSession.freeze(model, batch_buckets=(1, 8))
        session.forward(rng.normal(size=(3, 96)))
        assert session.executor.arena_info()["buckets"] == (1, 8)

    def test_fuse_off_keeps_plan_unfused(self, model):
        fused = InferenceSession.freeze(conv_model())
        unfused = InferenceSession.freeze(conv_model(), fuse=False)
        assert len(unfused.ops) > len(fused.ops)
        assert "flatten" in unfused.describe()

    def test_steady_state_allocates_no_new_workspace_buffers(
        self, model, rng
    ):
        session = InferenceSession.freeze(model)
        x = rng.normal(size=(8, 96))
        session.forward(x)  # warm: populates every slot
        before = session.executor.arena_info()["buffers"]
        for _ in range(3):
            session.forward(x)
        assert session.executor.arena_info()["buffers"] == before


class TestSharedPoolIsolation:
    """Two routes on one worker pool must not alias arena buffers."""

    def _models(self):
        a_rng = np.random.default_rng(11)
        b_rng = np.random.default_rng(22)
        make = lambda r: Sequential(  # noqa: E731
            BlockCirculantLinear(96, 64, 8, rng=r),
            ReLU(),
            Linear(64, 10, rng=r),
            Softmax(),
        ).eval()
        return make(a_rng), make(b_rng)

    def test_two_routes_one_thread_pool(self, rng):
        model_a, model_b = self._models()
        pool = ThreadWorkerPool(threads=2)
        ref_a = InferenceSession.freeze(model_a, arena=False, fuse=False)
        ref_b = InferenceSession.freeze(model_b, arena=False, fuse=False)
        sa = InferenceSession.freeze(
            model_a, executor=ThreadedExecutor(mode="batch", pool=pool)
        )
        sb = InferenceSession.freeze(
            model_b, executor=ThreadedExecutor(mode="batch", pool=pool)
        )
        try:
            x = rng.normal(size=(16, 96))
            for _ in range(2):  # interleave: cross-aliasing would show
                pa = sa.predict_proba(x, batch_size=4)
                pb = sb.predict_proba(x, batch_size=4)
                assert np.array_equal(
                    pa, ref_a.predict_proba(x, batch_size=4)
                )
                assert np.array_equal(
                    pb, ref_b.predict_proba(x, batch_size=4)
                )
        finally:
            sa.close()
            sb.close()
            pool.close()

    def test_two_routes_one_fork_pool(self, rng):
        model_a, model_b = self._models()
        pool = ForkWorkerPool(workers=2)
        ref_a = InferenceSession.freeze(model_a, arena=False, fuse=False)
        ref_b = InferenceSession.freeze(model_b, arena=False, fuse=False)
        sa = InferenceSession.freeze(
            model_a, executor=ShardedExecutor(mode="batch", pool=pool)
        )
        sb = InferenceSession.freeze(
            model_b, executor=ShardedExecutor(mode="batch", pool=pool)
        )
        try:
            x = rng.normal(size=(16, 96))
            for _ in range(2):
                pa = sa.predict_proba(x, batch_size=4)
                pb = sb.predict_proba(x, batch_size=4)
                assert np.array_equal(
                    pa, ref_a.predict_proba(x, batch_size=4)
                )
                assert np.array_equal(
                    pb, ref_b.predict_proba(x, batch_size=4)
                )
        finally:
            sa.close()
            sb.close()
            pool.close()


class TestOpStatsConcurrency:
    def test_concurrent_forwards_lose_no_counts(self, model, rng):
        # Regression: op timings used to accumulate into one shared
        # dict with a read-modify-write race under ThreadedExecutor.
        # Counters are now per-thread and merged on read.
        session = InferenceSession.freeze(
            model, executor=SerialExecutor(profile=True)
        )
        x = rng.normal(size=(4, 96))
        calls_per_thread, threads = 25, 8
        barrier = threading.Barrier(threads)
        errors = []

        def hammer():
            try:
                barrier.wait()
                for _ in range(calls_per_thread):
                    session.forward(x)
                    session.executor.op_stats()  # racing reader
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        workers = [
            threading.Thread(target=hammer) for _ in range(threads)
        ]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        assert not errors
        stats = session.executor.op_stats()
        total = threads * calls_per_thread
        assert stats["bc_linear"]["calls"] == 2 * total
        assert stats["linear"]["calls"] == total
        assert stats["softmax"]["calls"] == total

    def test_reset_clears_all_thread_stores(self, model, rng):
        session = InferenceSession.freeze(
            model, executor=SerialExecutor(profile=True)
        )
        x = rng.normal(size=(2, 96))

        def run():
            session.forward(x)

        t = threading.Thread(target=run)
        t.start()
        t.join()
        session.forward(x)
        assert session.executor.op_stats()
        session.executor.reset_op_stats()
        assert session.executor.op_stats() == {}
