"""Transports: pipe/shm parity, slot ring reuse, growth, segment hygiene."""

import numpy as np
import pytest

from repro.runtime.transport import (
    PipeTransport,
    SharedMemoryTransport,
    ShmResult,
    Transport,
    make_transport,
)

pytestmark = pytest.mark.skipif(
    not SharedMemoryTransport.available(),
    reason="POSIX shared memory unavailable on this platform",
)


def roundtrip(transport: Transport, arr: np.ndarray) -> np.ndarray:
    """Drive one array through the full parent->worker->parent path."""
    ref = transport.put(arr)
    task = transport.task(ref)
    received = transport.worker_recv(task)
    result = transport.worker_send(task, received * 2.0)
    return transport.finish(result, task)


class TestSharedMemoryRoundtrip:
    def test_roundtrip_matches_pipe_bitwise(self, rng):
        arr = rng.normal(size=(7, 33))
        pipe = PipeTransport()
        with SharedMemoryTransport(slots=2) as shm:
            shm.bind(workers=1)
            assert np.array_equal(roundtrip(shm, arr), roundtrip(pipe, arr))

    def test_roundtrip_preserves_dtype_and_shape(self, rng):
        with SharedMemoryTransport(slots=2) as shm:
            shm.bind(workers=1)
            for dtype in (np.float32, np.float64, np.complex64, np.complex128):
                arr = rng.normal(size=(3, 4, 5)).astype(dtype)
                out = roundtrip(shm, arr)
                assert out.dtype == dtype
                assert np.array_equal(out, arr * 2.0)

    def test_worker_view_is_readonly(self, rng):
        with SharedMemoryTransport(slots=2) as shm:
            shm.bind(workers=1)
            task = shm.task(shm.put(rng.normal(size=(4, 4))))
            view = shm.worker_recv(task)
            with pytest.raises(ValueError):
                view[0, 0] = 1.0
            shm.finish(shm.worker_send(task, np.asarray(view).copy()), task)

    def test_empty_array_goes_inline(self):
        with SharedMemoryTransport(slots=2) as shm:
            shm.bind(workers=1)
            arr = np.empty((0, 8))
            out = roundtrip(shm, arr)
            assert out.shape == (0, 8)
            assert shm.capacity == 2  # no slot was consumed


class TestSlotRing:
    def test_slots_are_reused_across_many_tasks(self, rng):
        with SharedMemoryTransport(slots=2) as shm:
            shm.bind(workers=1)
            for _ in range(10):  # 5x more tasks than slots
                arr = rng.normal(size=(5, 9))
                assert np.array_equal(roundtrip(shm, arr), arr * 2.0)
            assert len(shm._free_in) == 2
            assert len(shm._free_out) == 2

    def test_capacity_enforced(self, rng):
        with SharedMemoryTransport(slots=1) as shm:
            shm.bind(workers=1)
            ref = shm.put(rng.normal(size=(2, 2)))
            with pytest.raises(RuntimeError):
                shm.put(rng.normal(size=(2, 2)))
            task = shm.task(ref)
            result = shm.worker_send(task, np.zeros((2, 2)))
            shm.finish(result, task)
            shm.put(rng.normal(size=(2, 2)))  # slot came back

    def test_shared_input_released_after_last_use(self, rng):
        with SharedMemoryTransport(slots=3) as shm:
            shm.bind(workers=1)
            payload = rng.normal(size=(4, 6))
            ref = shm.put(payload, uses=3)
            tasks = [shm.task(ref) for _ in range(3)]
            for j, task in enumerate(tasks):
                received = shm.worker_recv(task)
                assert np.array_equal(received, payload)
                shm.finish(shm.worker_send(task, received + j), task)
                if j < 2:
                    assert len(shm._free_in) == 2  # still held
            assert len(shm._free_in) == 3  # released on the last finish


class TestGrowth:
    def test_input_slot_grows_for_large_arrays(self, rng):
        with SharedMemoryTransport(slots=2, slot_bytes=256) as shm:
            shm.bind(workers=1)
            big = rng.normal(size=(64, 64))  # 32 KiB >> 256 B
            assert np.array_equal(roundtrip(shm, big), big * 2.0)
            assert shm._in_segs[0].size >= big.nbytes

    def test_outgrown_result_falls_back_to_pipe_then_reseats(self, rng):
        with SharedMemoryTransport(slots=2, slot_bytes=256) as shm:
            shm.bind(workers=1)
            small = rng.normal(size=(2, 2))
            big_result = rng.normal(size=(64, 64))
            task = shm.task(shm.put(small))
            raw = shm.worker_send(task, big_result)
            assert isinstance(raw, np.ndarray)  # pipe fallback
            out = shm.finish(raw, task)
            assert np.array_equal(out, big_result)
            # The slot was reseated so the next result this size fits.
            task2 = shm.task(shm.put(small))
            assert isinstance(
                shm.worker_send(task2, big_result), ShmResult
            )
            shm.finish(shm.worker_send(task2, big_result), task2)


class TestSegmentHygiene:
    def _segment_names(self, shm):
        return [seg.name for seg in shm._in_segs + shm._out_segs]

    def _exists(self, name):
        from multiprocessing import shared_memory

        try:
            seg = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            return False
        seg.close()
        return True

    def test_close_unlinks_every_segment(self, rng):
        shm = SharedMemoryTransport(slots=3).bind(workers=2)
        roundtrip(shm, rng.normal(size=(8, 8)))
        names = self._segment_names(shm)
        assert names and all(self._exists(n) for n in names)
        shm.close()
        assert not any(self._exists(n) for n in names)

    def test_close_is_idempotent(self):
        shm = SharedMemoryTransport(slots=2).bind(workers=1)
        shm.close()
        shm.close()

    def test_growth_does_not_leak_outgrown_segments(self, rng):
        shm = SharedMemoryTransport(slots=2, slot_bytes=64).bind(workers=1)
        before = self._segment_names(shm)
        roundtrip(shm, rng.normal(size=(32, 32)))  # forces input reseat
        after = self._segment_names(shm)
        replaced = set(before) - set(after)
        assert replaced  # at least one segment was outgrown
        assert not any(self._exists(n) for n in replaced)
        shm.close()
        assert not any(self._exists(n) for n in after)


class TestMakeTransport:
    def test_specs_resolve(self):
        assert isinstance(make_transport(None), PipeTransport)
        assert isinstance(make_transport("pipe"), PipeTransport)
        shm = make_transport("shm")
        assert isinstance(shm, SharedMemoryTransport)
        shm.close()
        instance = PipeTransport()
        assert make_transport(instance) is instance

    def test_unknown_spec_rejected(self):
        with pytest.raises(ValueError):
            make_transport("carrier-pigeon")

    def test_shm_falls_back_to_pipe_when_unavailable(self, monkeypatch):
        monkeypatch.setattr(
            SharedMemoryTransport, "available", staticmethod(lambda: False)
        )
        with pytest.warns(RuntimeWarning, match="falling back"):
            transport = make_transport("shm")
        assert isinstance(transport, PipeTransport)

    def test_invalid_construction_rejected(self):
        with pytest.raises(ValueError):
            SharedMemoryTransport(slots=0)
        with pytest.raises(ValueError):
            SharedMemoryTransport(slot_bytes=0)
