"""Plan compiler: overlap-add conv tiling vs the im2col reference."""

import numpy as np
import pytest

from repro.nn.layers import BlockCirculantConv2d
from repro.nn import ReLU, Sequential
from repro.runtime import InferenceSession


def _sessions(layer_kwargs, conv_tile):
    model = Sequential(
        BlockCirculantConv2d(rng=np.random.default_rng(0), **layer_kwargs),
        ReLU(),
    ).eval()
    full = InferenceSession.freeze(model)
    tiled = InferenceSession.freeze(model, conv_tile=conv_tile)
    return model, full, tiled


class TestOverlapAddConv:
    @pytest.mark.parametrize(
        "height,width,stride,padding,kernel,tile",
        [
            (15, 13, 1, 0, 3, 4),  # odd sizes, tile does not divide out_h
            (15, 15, 2, 1, 3, 3),  # strided, padded
            (17, 11, 3, 2, 5, 2),  # large kernel, stride 3, odd everything
            (9, 9, 1, 1, 3, 1),  # single-row tiles
            (8, 8, 2, 0, 2, 5),  # tile larger than half of out_h
        ],
    )
    def test_tiled_matches_full_im2col(
        self, rng, height, width, stride, padding, kernel, tile
    ):
        _, full, tiled = _sessions(
            dict(
                in_channels=3,
                out_channels=6,
                kernel_size=kernel,
                block_size=2,
                stride=stride,
                padding=padding,
            ),
            conv_tile=tile,
        )
        x = rng.normal(size=(3, 3, height, width))
        out_full = full.forward(x)
        out_tiled = tiled.forward(x)
        assert out_tiled.shape == out_full.shape
        assert np.allclose(out_tiled, out_full, atol=1e-10)

    def test_tiled_matches_live_layer(self, rng):
        model, _, tiled = _sessions(
            dict(
                in_channels=4,
                out_channels=6,
                kernel_size=3,
                block_size=2,
                stride=2,
                padding=1,
            ),
            conv_tile=2,
        )
        x = rng.normal(size=(2, 4, 11, 11))
        assert np.allclose(tiled.forward(x), model(x).data, atol=1e-10)

    def test_tile_larger_than_output_is_untiled(self, rng):
        _, full, tiled = _sessions(
            dict(in_channels=2, out_channels=4, kernel_size=3, block_size=2),
            conv_tile=100,
        )
        x = rng.normal(size=(2, 2, 7, 7))
        assert np.allclose(tiled.forward(x), full.forward(x), atol=1e-12)

    def test_tile_annotated_in_plan(self):
        _, full, tiled = _sessions(
            dict(in_channels=2, out_channels=4, kernel_size=3, block_size=2),
            conv_tile=2,
        )
        assert "tile=2" in tiled.describe()[0]
        assert "tile" not in full.describe()[0]

    def test_fp32_tiled_parity(self, rng):
        model = Sequential(
            BlockCirculantConv2d(
                3, 6, 3, block_size=2, stride=2, padding=1,
                rng=np.random.default_rng(1),
            ),
            ReLU(),
        ).eval()
        x = rng.normal(size=(2, 3, 13, 13))
        fp64 = InferenceSession.freeze(model, conv_tile=3).forward(x)
        fp32 = InferenceSession.freeze(
            model, precision="fp32", conv_tile=3
        ).forward(x)
        assert fp32.dtype == np.float32
        assert np.abs(fp64 - fp32.astype(np.float64)).max() < 1e-5
