"""Executors: serial/sharded parity (bitwise), row sharding, lifecycle."""

import numpy as np
import pytest

import repro.runtime.plan as plan_mod
from repro.nn import (
    BlockCirculantLinear,
    Flatten,
    Linear,
    ReLU,
    Sequential,
    Softmax,
)
from repro.nn.layers import BlockCirculantConv2d
from repro.runtime import (
    InferenceSession,
    SerialExecutor,
    ShardScheduler,
    SharedMemoryTransport,
    ShardedExecutor,
)


@pytest.fixture
def model():
    rng = np.random.default_rng(0)
    return Sequential(
        BlockCirculantLinear(96, 64, 8, rng=rng),
        ReLU(),
        BlockCirculantLinear(64, 40, 4, rng=rng),
        ReLU(),
        Linear(40, 10, rng=rng),
        Softmax(),
    ).eval()


@pytest.fixture
def shard_everything(monkeypatch):
    """Let tiny test layers pass the auto-shard size floor."""
    monkeypatch.setattr(plan_mod, "MIN_SHARD_BYTES", 0)


class TestRowShardedPlan:
    def test_row_sharded_plan_matches_unsharded(self, model, rng, shard_everything):
        x = rng.normal(size=(6, 96))
        base = InferenceSession.freeze(model)
        sharded = InferenceSession.freeze(model, row_shards=3)
        assert "[rows/3]" in sharded.describe()[0]
        assert np.allclose(sharded.forward(x), base.forward(x), atol=1e-12)

    def test_shard_count_capped_by_block_rows(self, model, shard_everything):
        # Second bc layer has p = 10 block rows; asking for 64 shards
        # must not create empty shards.
        session = InferenceSession.freeze(model, row_shards=64)
        assert "[rows/10]" in session.describe()[1]

    def test_size_floor_skips_small_layers(self, model):
        # Default MIN_SHARD_BYTES is far above these tiny spectra.
        session = InferenceSession.freeze(model, row_shards=4)
        assert not any("[rows/" in name for name in session.describe())

    def test_fused_activation_survives_sharding(self, model, shard_everything):
        session = InferenceSession.freeze(model, row_shards=2)
        assert session.describe()[0].endswith("+relu")
        op = session.ops[0]
        assert op.shard_fns is not None and len(op.shard_fns) == 2


class TestShardedExecutorRows:
    def test_pool_rows_bitwise_equals_serial(self, model, rng, shard_everything):
        x = rng.normal(size=(5, 96))
        serial = InferenceSession.freeze(model, row_shards=3)
        with InferenceSession.freeze(
            model, executor=ShardedExecutor(workers=3, mode="rows"), row_shards=3
        ) as pooled:
            assert np.array_equal(pooled.forward(x), serial.forward(x))

    def test_row_shards_default_to_worker_count(self, model, shard_everything):
        with InferenceSession.freeze(
            model, executor=ShardedExecutor(workers=2, mode="rows")
        ) as session:
            assert "[rows/2]" in session.describe()[0]


class TestShardedExecutorBatches:
    def test_pool_batches_bitwise_equal_serial(self, model, rng):
        x = rng.normal(size=(23, 96))
        serial = InferenceSession.freeze(model)
        with InferenceSession.freeze(
            model, executor=ShardedExecutor(workers=2, mode="batch")
        ) as pooled:
            for batch_size in (4, 7, 23):
                assert np.array_equal(
                    pooled.predict_proba(x, batch_size=batch_size),
                    serial.predict_proba(x, batch_size=batch_size),
                )

    def test_predict_labels_match(self, model, rng):
        x = rng.normal(size=(12, 96))
        serial = InferenceSession.freeze(model)
        with InferenceSession.freeze(
            model, executor=ShardedExecutor(workers=2)
        ) as pooled:
            assert np.array_equal(
                pooled.predict(x, batch_size=3), serial.predict(x, batch_size=3)
            )

    def test_single_chunk_stays_in_process(self, model, rng):
        executor = ShardedExecutor(workers=2, mode="batch")
        with InferenceSession.freeze(model, executor=executor) as session:
            session.predict(rng.normal(size=(4, 96)))  # one chunk
            assert executor._pool is None  # no pool spawned for one chunk

    def test_fp32_sharded_matches_fp32_serial(self, model, rng):
        x = rng.normal(size=(10, 96))
        serial = InferenceSession.freeze(model, precision="fp32")
        with InferenceSession.freeze(
            model, precision="fp32", executor=ShardedExecutor(workers=2)
        ) as pooled:
            assert np.array_equal(
                pooled.predict_proba(x, batch_size=5),
                serial.predict_proba(x, batch_size=5),
            )


def conv_model():
    m_rng = np.random.default_rng(3)
    return Sequential(
        BlockCirculantConv2d(3, 8, 3, block_size=4, padding=1, rng=m_rng),
        ReLU(),
        Flatten(),
        BlockCirculantLinear(8 * 8 * 8, 32, 8, rng=m_rng),
        ReLU(),
        Linear(32, 5, rng=m_rng),
    ).eval()


class TestShardedConvModel:
    def test_conv_model_batch_sharding(self, rng):
        model = conv_model()
        x = rng.normal(size=(8, 3, 8, 8))
        serial = InferenceSession.freeze(model, conv_tile=3)
        with InferenceSession.freeze(
            model, conv_tile=3, executor=ShardedExecutor(workers=2)
        ) as pooled:
            assert np.array_equal(
                pooled.predict_proba(x, batch_size=2),
                serial.predict_proba(x, batch_size=2),
            )


class TestRowShardedConv:
    def test_conv_plan_is_row_sharded(self, shard_everything):
        session = InferenceSession.freeze(conv_model(), row_shards=2)
        assert "[rows/2]" in session.describe()[0]
        assert session.ops[0].shard_fns is not None

    def test_row_sharded_conv_matches_unsharded(self, rng, shard_everything):
        model = conv_model()
        x = rng.normal(size=(4, 3, 8, 8))
        base = InferenceSession.freeze(model)
        sharded = InferenceSession.freeze(model, row_shards=2)
        assert np.allclose(sharded.forward(x), base.forward(x), atol=1e-12)

    def test_conv_pool_rows_bitwise_equals_serial(self, rng, shard_everything):
        model = conv_model()
        x = rng.normal(size=(3, 3, 8, 8))
        serial = InferenceSession.freeze(model, row_shards=2)
        with InferenceSession.freeze(
            model, executor=ShardedExecutor(workers=2, mode="rows"),
            row_shards=2,
        ) as pooled:
            assert np.array_equal(pooled.forward(x), serial.forward(x))

    def test_conv_shard_count_capped_by_block_rows(self, shard_everything):
        # The conv layer has p = 2 block rows (8 out channels, b = 4).
        session = InferenceSession.freeze(conv_model(), row_shards=16)
        assert "[rows/2]" in session.describe()[0]

    def test_conv_shards_consume_one_prepared_spectrum(
        self, rng, shard_everything
    ):
        session = InferenceSession.freeze(conv_model(), row_shards=2)
        op = session.ops[0]
        assert op.prepare is not None
        x = np.asarray(rng.normal(size=(2, 3, 8, 8)))
        payload = op.prepare(x)
        parts = [shard(payload) for shard in op.shard_fns]
        assert np.array_equal(op.combine(parts), op(x))

    def test_fused_activation_survives_conv_sharding(self, shard_everything):
        session = InferenceSession.freeze(conv_model(), row_shards=2)
        # fuse_plan may fold a trailing flatten in as well, so the relu
        # is "in" the name rather than necessarily terminating it.
        assert "+relu" in session.describe()[0]

    def test_row_shards_superseding_conv_tile_warns(self, shard_everything):
        with pytest.warns(RuntimeWarning, match="supersedes conv_tile"):
            session = InferenceSession.freeze(
                conv_model(), conv_tile=3, row_shards=2
            )
        # Sharding won: the op is row-sharded, not tiled.
        assert "[rows/2]" in session.describe()[0]
        assert "tile" not in session.describe()[0]


class TestShmTransportExecutor:
    def test_batch_shm_bitwise_equals_serial(self, model, rng):
        x = rng.normal(size=(18, 96))
        serial = InferenceSession.freeze(model)
        with InferenceSession.freeze(
            model,
            executor=ShardedExecutor(workers=2, mode="batch", transport="shm"),
        ) as pooled:
            for batch_size in (4, 7):
                assert np.array_equal(
                    pooled.predict_proba(x, batch_size=batch_size),
                    serial.predict_proba(x, batch_size=batch_size),
                )

    def test_rows_shm_bitwise_equals_serial(self, model, rng, shard_everything):
        x = rng.normal(size=(5, 96))
        serial = InferenceSession.freeze(model, row_shards=3)
        with InferenceSession.freeze(
            model,
            executor=ShardedExecutor(workers=3, mode="rows", transport="shm"),
            row_shards=3,
        ) as pooled:
            assert np.array_equal(pooled.forward(x), serial.forward(x))

    def test_conv_rows_shm_bitwise_equals_serial(self, rng, shard_everything):
        model = conv_model()
        x = rng.normal(size=(3, 3, 8, 8))
        serial = InferenceSession.freeze(model, row_shards=2)
        with InferenceSession.freeze(
            model,
            executor=ShardedExecutor(workers=2, mode="rows", transport="shm"),
            row_shards=2,
        ) as pooled:
            assert np.array_equal(pooled.forward(x), serial.forward(x))

    def test_worker_error_releases_slots_and_executor_survives(
        self, model, rng
    ):
        # A malformed request must cost one failed call, not the slot
        # ring: the transport's slots are finite, so leaking them on
        # worker exceptions would brick the executor after 2*workers
        # bad requests.
        executor = ShardedExecutor(workers=2, mode="batch", transport="shm")
        session = InferenceSession.freeze(model, executor=executor)
        serial = InferenceSession.freeze(model)
        good = rng.normal(size=(8, 96))
        bad = rng.normal(size=(8, 77))  # wrong feature width
        try:
            for _ in range(4):  # more failures than slot pairs
                with pytest.raises(ValueError):
                    session.predict_proba(bad, batch_size=2)
            transport = executor.transport
            assert len(transport._free_in) == transport.capacity
            assert len(transport._free_out) == transport.capacity
            assert np.array_equal(
                session.predict_proba(good, batch_size=2),
                serial.predict_proba(good, batch_size=2),
            )
        finally:
            session.close()

    def test_no_leaked_segments_after_close(self, model, rng):
        executor = ShardedExecutor(workers=2, mode="batch", transport="shm")
        session = InferenceSession.freeze(model, executor=executor)
        session.predict_proba(rng.normal(size=(12, 96)), batch_size=3)
        names = [
            seg.name
            for seg in executor.transport._in_segs
            + executor.transport._out_segs
        ]
        assert names
        session.close()
        from multiprocessing import shared_memory

        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)


class TestShardScheduler:
    def test_row_ops_detected(self, model, shard_everything):
        ops = plan_mod.compile_model_plan(model, row_shards=2)
        scheduler = ShardScheduler(ops)
        assert set(scheduler.row_ops.values()) == {2}
        assert scheduler.run_strategy() == "rows"
        assert scheduler.shard_jobs(0) == [(0, 0), (0, 1)]

    def test_unsharded_plan_runs_serial(self, model):
        scheduler = ShardScheduler(plan_mod.compile_model_plan(model))
        assert scheduler.run_strategy() == "serial"
        assert scheduler.shard_jobs(0) == []

    def test_mode_forcing(self, model, shard_everything):
        ops = plan_mod.compile_model_plan(model, row_shards=2)
        assert ShardScheduler(ops, mode="batch").run_strategy() == "serial"
        assert ShardScheduler(ops, mode="rows").use_batch_pool(4) is False
        assert ShardScheduler(ops).use_batch_pool(1) is False
        assert ShardScheduler(ops).use_batch_pool(4) is True

    def test_no_fork_means_serial(self, model, shard_everything):
        ops = plan_mod.compile_model_plan(model, row_shards=2)
        scheduler = ShardScheduler(ops)
        assert scheduler.run_strategy(can_fork=False) == "serial"
        assert scheduler.use_batch_pool(4, can_fork=False) is False

    def test_invalid_mode_rejected(self, model):
        with pytest.raises(ValueError):
            ShardScheduler(plan_mod.compile_model_plan(model), mode="columns")

    def test_describe_names_sharded_ops(self, model, shard_everything):
        ops = plan_mod.compile_model_plan(model, row_shards=2)
        description = ShardScheduler(ops).describe()
        assert description["mode"] == "auto"
        assert any("[rows/2]" in name for name in description["row_sharded_ops"])


class TestExecutorLifecycle:
    def test_resolve_by_name(self, model):
        assert isinstance(
            InferenceSession.freeze(model, executor="serial").executor,
            SerialExecutor,
        )
        with InferenceSession.freeze(model, executor="sharded") as session:
            assert isinstance(session.executor, ShardedExecutor)

    def test_unknown_executor_rejected(self, model):
        with pytest.raises(ValueError):
            InferenceSession.freeze(model, executor="gpu")

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            ShardedExecutor(workers=0)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            ShardedExecutor(mode="columns")

    def test_rebinding_running_executor_rejected(self, model, rng, shard_everything):
        executor = ShardedExecutor(workers=2, mode="rows")
        session = InferenceSession.freeze(model, executor=executor)
        try:
            session.forward(rng.normal(size=(2, 96)))  # spawns the pool
            assert executor._pool is not None
            with pytest.raises(RuntimeError):
                InferenceSession.freeze(model, executor=executor)
        finally:
            session.close()
        assert executor._pool is None

    def test_rebinding_rejected_even_before_pool_exists(self, model):
        # A second session must never silently repoint the first
        # session's executor at its own plan.
        sharded = ShardedExecutor(workers=2)
        InferenceSession.freeze(model, executor=sharded)
        with pytest.raises(RuntimeError):
            InferenceSession.freeze(model, executor=sharded)
        serial = SerialExecutor()
        InferenceSession.freeze(model, executor=serial)
        with pytest.raises(RuntimeError):
            InferenceSession.freeze(model, executor=serial)

    def test_shards_consume_one_prepared_spectrum(self, model, rng, shard_everything):
        # prepare() runs the input FFT once; every shard consumes the
        # same frequency-major payload.
        session = InferenceSession.freeze(model, row_shards=2)
        op = session.ops[0]
        assert op.prepare is not None
        x = np.asarray(rng.normal(size=(3, 96)))
        payload = op.prepare(x)
        parts = [shard(payload) for shard in op.shard_fns]
        assert np.array_equal(op.combine(parts), op(x))

    def test_close_is_idempotent(self, model):
        session = InferenceSession.freeze(model, executor=ShardedExecutor(workers=2))
        session.close()
        session.close()
