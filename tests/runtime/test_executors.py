"""Executors: serial/sharded parity (bitwise), row sharding, lifecycle."""

import numpy as np
import pytest

import repro.runtime.plan as plan_mod
from repro.nn import (
    BlockCirculantLinear,
    Flatten,
    Linear,
    ReLU,
    Sequential,
    Softmax,
)
from repro.nn.layers import BlockCirculantConv2d
from repro.runtime import (
    InferenceSession,
    SerialExecutor,
    ShardedExecutor,
)


@pytest.fixture
def model():
    rng = np.random.default_rng(0)
    return Sequential(
        BlockCirculantLinear(96, 64, 8, rng=rng),
        ReLU(),
        BlockCirculantLinear(64, 40, 4, rng=rng),
        ReLU(),
        Linear(40, 10, rng=rng),
        Softmax(),
    ).eval()


@pytest.fixture
def shard_everything(monkeypatch):
    """Let tiny test layers pass the auto-shard size floor."""
    monkeypatch.setattr(plan_mod, "MIN_SHARD_BYTES", 0)


class TestRowShardedPlan:
    def test_row_sharded_plan_matches_unsharded(self, model, rng, shard_everything):
        x = rng.normal(size=(6, 96))
        base = InferenceSession.freeze(model)
        sharded = InferenceSession.freeze(model, row_shards=3)
        assert "[rows/3]" in sharded.describe()[0]
        assert np.allclose(sharded.forward(x), base.forward(x), atol=1e-12)

    def test_shard_count_capped_by_block_rows(self, model, shard_everything):
        # Second bc layer has p = 10 block rows; asking for 64 shards
        # must not create empty shards.
        session = InferenceSession.freeze(model, row_shards=64)
        assert "[rows/10]" in session.describe()[1]

    def test_size_floor_skips_small_layers(self, model):
        # Default MIN_SHARD_BYTES is far above these tiny spectra.
        session = InferenceSession.freeze(model, row_shards=4)
        assert not any("[rows/" in name for name in session.describe())

    def test_fused_activation_survives_sharding(self, model, shard_everything):
        session = InferenceSession.freeze(model, row_shards=2)
        assert session.describe()[0].endswith("+relu")
        op = session.ops[0]
        assert op.shard_fns is not None and len(op.shard_fns) == 2


class TestShardedExecutorRows:
    def test_pool_rows_bitwise_equals_serial(self, model, rng, shard_everything):
        x = rng.normal(size=(5, 96))
        serial = InferenceSession.freeze(model, row_shards=3)
        with InferenceSession.freeze(
            model, executor=ShardedExecutor(workers=3, mode="rows"), row_shards=3
        ) as pooled:
            assert np.array_equal(pooled.forward(x), serial.forward(x))

    def test_row_shards_default_to_worker_count(self, model, shard_everything):
        with InferenceSession.freeze(
            model, executor=ShardedExecutor(workers=2, mode="rows")
        ) as session:
            assert "[rows/2]" in session.describe()[0]


class TestShardedExecutorBatches:
    def test_pool_batches_bitwise_equal_serial(self, model, rng):
        x = rng.normal(size=(23, 96))
        serial = InferenceSession.freeze(model)
        with InferenceSession.freeze(
            model, executor=ShardedExecutor(workers=2, mode="batch")
        ) as pooled:
            for batch_size in (4, 7, 23):
                assert np.array_equal(
                    pooled.predict_proba(x, batch_size=batch_size),
                    serial.predict_proba(x, batch_size=batch_size),
                )

    def test_predict_labels_match(self, model, rng):
        x = rng.normal(size=(12, 96))
        serial = InferenceSession.freeze(model)
        with InferenceSession.freeze(
            model, executor=ShardedExecutor(workers=2)
        ) as pooled:
            assert np.array_equal(
                pooled.predict(x, batch_size=3), serial.predict(x, batch_size=3)
            )

    def test_single_chunk_stays_in_process(self, model, rng):
        executor = ShardedExecutor(workers=2, mode="batch")
        with InferenceSession.freeze(model, executor=executor) as session:
            session.predict(rng.normal(size=(4, 96)))  # one chunk
            assert executor._pool is None  # no pool spawned for one chunk

    def test_fp32_sharded_matches_fp32_serial(self, model, rng):
        x = rng.normal(size=(10, 96))
        serial = InferenceSession.freeze(model, precision="fp32")
        with InferenceSession.freeze(
            model, precision="fp32", executor=ShardedExecutor(workers=2)
        ) as pooled:
            assert np.array_equal(
                pooled.predict_proba(x, batch_size=5),
                serial.predict_proba(x, batch_size=5),
            )


class TestShardedConvModel:
    def test_conv_model_batch_sharding(self, rng):
        m_rng = np.random.default_rng(3)
        model = Sequential(
            BlockCirculantConv2d(3, 8, 3, block_size=4, padding=1, rng=m_rng),
            ReLU(),
            Flatten(),
            BlockCirculantLinear(8 * 8 * 8, 32, 8, rng=m_rng),
            ReLU(),
            Linear(32, 5, rng=m_rng),
        ).eval()
        x = rng.normal(size=(8, 3, 8, 8))
        serial = InferenceSession.freeze(model, conv_tile=3)
        with InferenceSession.freeze(
            model, conv_tile=3, executor=ShardedExecutor(workers=2)
        ) as pooled:
            assert np.array_equal(
                pooled.predict_proba(x, batch_size=2),
                serial.predict_proba(x, batch_size=2),
            )


class TestExecutorLifecycle:
    def test_resolve_by_name(self, model):
        assert isinstance(
            InferenceSession.freeze(model, executor="serial").executor,
            SerialExecutor,
        )
        with InferenceSession.freeze(model, executor="sharded") as session:
            assert isinstance(session.executor, ShardedExecutor)

    def test_unknown_executor_rejected(self, model):
        with pytest.raises(ValueError):
            InferenceSession.freeze(model, executor="gpu")

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            ShardedExecutor(workers=0)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            ShardedExecutor(mode="columns")

    def test_rebinding_running_executor_rejected(self, model, rng, shard_everything):
        executor = ShardedExecutor(workers=2, mode="rows")
        session = InferenceSession.freeze(model, executor=executor)
        try:
            session.forward(rng.normal(size=(2, 96)))  # spawns the pool
            assert executor._pool is not None
            with pytest.raises(RuntimeError):
                InferenceSession.freeze(model, executor=executor)
        finally:
            session.close()
        assert executor._pool is None

    def test_rebinding_rejected_even_before_pool_exists(self, model):
        # A second session must never silently repoint the first
        # session's executor at its own plan.
        sharded = ShardedExecutor(workers=2)
        InferenceSession.freeze(model, executor=sharded)
        with pytest.raises(RuntimeError):
            InferenceSession.freeze(model, executor=sharded)
        serial = SerialExecutor()
        InferenceSession.freeze(model, executor=serial)
        with pytest.raises(RuntimeError):
            InferenceSession.freeze(model, executor=serial)

    def test_shards_consume_one_prepared_spectrum(self, model, rng, shard_everything):
        # prepare() runs the input FFT once; every shard consumes the
        # same frequency-major payload.
        session = InferenceSession.freeze(model, row_shards=2)
        op = session.ops[0]
        assert op.prepare is not None
        x = np.asarray(rng.normal(size=(3, 96)))
        payload = op.prepare(x)
        parts = [shard(payload) for shard in op.shard_fns]
        assert np.array_equal(op.combine(parts), op(x))

    def test_close_is_idempotent(self, model):
        session = InferenceSession.freeze(model, executor=ShardedExecutor(workers=2))
        session.close()
        session.close()
