"""InferenceSession: freeze parity, fusion, streaming, snapshot semantics."""

import numpy as np
import pytest

from repro.embedded import DeployedModel
from repro.exceptions import DeploymentError
from repro.nn import (
    SGD,
    BatchNorm2d,
    BlockCirculantConv2d,
    BlockCirculantLinear,
    Conv2d,
    CrossEntropyLoss,
    Dropout,
    Flatten,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
    Softmax,
)
from repro.runtime import InferenceSession
from repro.zoo import build_arch1


@pytest.fixture
def fc_model():
    return build_arch1(rng=np.random.default_rng(0)).eval()


@pytest.fixture
def conv_model():
    rng = np.random.default_rng(1)
    model = Sequential(
        Conv2d(3, 4, 3, padding=1, rng=rng),
        BatchNorm2d(4),
        ReLU(),
        MaxPool2d(2),
        BlockCirculantConv2d(4, 6, 3, block_size=2, padding=1, rng=rng),
        ReLU(),
        Flatten(),
        Dropout(0.5),
        BlockCirculantLinear(6 * 4 * 4, 16, 4, rng=rng),
        ReLU(),
        Linear(16, 5, rng=rng),
        Softmax(),
    )
    # Run one training-mode batch so batch-norm has non-trivial stats.
    model(np.random.default_rng(2).normal(size=(8, 3, 8, 8)))
    return model.eval()


class TestFreezeParity:
    def test_fc_forward_matches_model(self, fc_model, rng):
        x = rng.normal(size=(6, 256))
        session = InferenceSession.freeze(fc_model)
        assert np.allclose(session.forward(x), fc_model(x).data, atol=1e-10)

    def test_conv_forward_matches_model(self, conv_model, rng):
        x = rng.normal(size=(3, 3, 8, 8))
        session = InferenceSession.freeze(conv_model)
        assert np.allclose(session.forward(x), conv_model(x).data, atol=1e-10)

    def test_single_sample_gets_batch_axis(self, fc_model, rng):
        session = InferenceSession.freeze(fc_model)
        x = rng.normal(size=256)
        assert session.forward(x).shape == (1, 10)

    def test_empty_plan_rejected(self):
        with pytest.raises(DeploymentError):
            InferenceSession([])


class TestFusion:
    def test_activations_fuse_into_compute_ops(self, fc_model):
        plan = InferenceSession.freeze(fc_model).describe()
        # arch1 is bc-relu, bc-relu, linear: 5 modules -> 3 fused ops.
        assert len(plan) == 3
        assert plan[0].endswith("+relu") and plan[1].endswith("+relu")

    def test_softmax_never_fuses(self, conv_model):
        plan = InferenceSession.freeze(conv_model).describe()
        assert plan[-1] == "softmax"

    def test_dropout_vanishes(self, conv_model):
        plan = InferenceSession.freeze(conv_model).describe()
        assert not any("dropout" in name for name in plan)


class TestStreamingPredict:
    def test_chunked_equals_one_shot(self, fc_model, rng):
        session = InferenceSession.freeze(fc_model)
        x = rng.normal(size=(23, 256))
        one_shot = session.predict_proba(x)
        for batch_size in (1, 7, 23, 100):
            chunked = session.predict_proba(x, batch_size=batch_size)
            assert np.allclose(chunked, one_shot, atol=1e-12)

    def test_invalid_batch_size_rejected(self, fc_model, rng):
        session = InferenceSession.freeze(fc_model)
        x = rng.normal(size=(4, 256))
        for bad in (0, -1):
            with pytest.raises(ValueError):
                session.predict(x, batch_size=bad)

    def test_predict_labels(self, fc_model, rng):
        session = InferenceSession.freeze(fc_model)
        x = rng.normal(size=(9, 256))
        labels = session.predict(x, batch_size=4)
        assert labels.shape == (9,)
        assert np.array_equal(labels, session.predict_proba(x).argmax(axis=-1))

    def test_probabilities_are_normalized(self, fc_model, rng):
        session = InferenceSession.freeze(fc_model)
        proba = session.predict_proba(rng.normal(size=(5, 256)))
        assert np.allclose(proba.sum(axis=-1), 1.0, atol=1e-12)


class TestSnapshotSemantics:
    def test_training_after_freeze_does_not_change_session(self, fc_model, rng):
        session = InferenceSession.freeze(fc_model)
        x = rng.normal(size=(4, 256))
        before = session.forward(x)

        fc_model.train()
        optimizer = SGD(fc_model.parameters(), lr=0.5)
        loss = CrossEntropyLoss()(fc_model(x), np.array([0, 1, 2, 3]))
        loss.backward()
        optimizer.step()
        fc_model.eval()

        assert not np.allclose(session.forward(x), fc_model(x).data)
        assert np.allclose(session.forward(x), before, atol=1e-12)

    def test_refreeze_follows_updated_weights(self, fc_model, rng):
        x = rng.normal(size=(4, 256))
        fc_model.layers[0].weight.data = fc_model.layers[0].weight.data * 0.5
        session = InferenceSession.freeze(fc_model)
        assert np.allclose(session.forward(x), fc_model(x).data, atol=1e-10)


class TestFromDeployed:
    def test_matches_record_interpreter(self, conv_model, rng):
        deployed = DeployedModel.from_model(conv_model)
        session = InferenceSession.from_deployed(deployed)
        x = rng.normal(size=(4, 3, 8, 8))
        # complex64 artifact spectra bound the agreement, not 1e-10.
        assert np.allclose(
            session.predict_proba(x), deployed.predict_proba(x), atol=1e-5
        )

    def test_save_load_to_session_roundtrip(self, fc_model, rng, tmp_path):
        deployed = DeployedModel.from_model(fc_model)
        path = tmp_path / "artifact.npz"
        deployed.save(path)
        session = InferenceSession.from_deployed(DeployedModel.load(path))
        x = rng.normal(size=(5, 256))
        assert np.array_equal(session.predict(x), deployed.predict(x))
