"""fp32 sessions: end-to-end complex64 parity, no silent upcast, memory."""

import numpy as np
import pytest

from repro.embedded import DeployedModel
from repro.embedded.memory import estimate_memory
from repro.precision import FP32, FP64, PrecisionPolicy
from repro.runtime import InferenceSession
from repro.zoo import build_arch1, build_arch3_reduced


@pytest.fixture(scope="module")
def mnist_model():
    return build_arch1(rng=np.random.default_rng(0)).eval()


@pytest.fixture(scope="module")
def cifar_model():
    return build_arch3_reduced(
        width=12, block_size=4, rng=np.random.default_rng(1)
    ).eval()


class TestPolicyResolve:
    def test_names_and_none(self):
        assert PrecisionPolicy.resolve(None) is FP64
        assert PrecisionPolicy.resolve("fp64") is FP64
        assert PrecisionPolicy.resolve("fp32") is FP32
        assert PrecisionPolicy.resolve(FP32) is FP32

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            PrecisionPolicy.resolve("fp16")

    def test_dtypes(self):
        assert FP32.real_dtype == np.float32
        assert FP32.complex_dtype == np.complex64
        assert FP32.complex_itemsize == 8
        assert FP64.complex_itemsize == 16


class TestFp32Parity:
    def test_mnist_zoo_within_1e5(self, mnist_model, rng):
        x = rng.normal(size=(16, 256))
        fp64 = InferenceSession.freeze(mnist_model)
        fp32 = InferenceSession.freeze(mnist_model, precision="fp32")
        p64 = fp64.predict_proba(x)
        p32 = fp32.predict_proba(x)
        assert np.abs(p64 - p32.astype(np.float64)).max() < 1e-5
        assert np.array_equal(fp64.predict(x), fp32.predict(x))

    def test_cifar_zoo_within_1e5(self, cifar_model, rng):
        x = rng.normal(size=(4, 3, 32, 32))
        fp64 = InferenceSession.freeze(cifar_model)
        fp32 = InferenceSession.freeze(cifar_model, precision="fp32")
        p64 = fp64.predict_proba(x)
        p32 = fp32.predict_proba(x)
        assert np.abs(p64 - p32.astype(np.float64)).max() < 1e-5

    def test_precision_property(self, mnist_model):
        assert InferenceSession.freeze(mnist_model).precision == "fp64"
        assert (
            InferenceSession.freeze(mnist_model, precision="fp32").precision
            == "fp32"
        )


class TestNoSilentUpcast:
    """Every intermediate activation stays float32 in an fp32 session.

    The kernels contain no narrowing casts, so a float32 output from
    every op proves the FFT -> GEMM -> IFFT pipeline ran in
    complex64/float32 throughout — a float64 leak anywhere would
    propagate to the op output.
    """

    def _assert_all_float32(self, session, x):
        x = np.asarray(x, dtype=np.float32)
        for op in session.ops:
            x = op(x)
            assert x.dtype == np.float32, f"{op.name} produced {x.dtype}"

    def test_fc_ops_stay_float32(self, mnist_model, rng):
        session = InferenceSession.freeze(mnist_model, precision="fp32")
        self._assert_all_float32(session, rng.normal(size=(3, 256)))

    def test_conv_ops_stay_float32(self, cifar_model, rng):
        session = InferenceSession.freeze(cifar_model, precision="fp32")
        self._assert_all_float32(session, rng.normal(size=(2, 3, 32, 32)))

    def test_tiled_conv_ops_stay_float32(self, cifar_model, rng):
        session = InferenceSession.freeze(
            cifar_model, precision="fp32", conv_tile=3
        )
        self._assert_all_float32(session, rng.normal(size=(2, 3, 32, 32)))

    def test_forward_output_dtype_matches_policy(self, mnist_model, rng):
        x = rng.normal(size=(2, 256))
        assert InferenceSession.freeze(mnist_model).forward(x).dtype == np.float64
        assert (
            InferenceSession.freeze(mnist_model, precision="fp32")
            .forward(x)
            .dtype
            == np.float32
        )


class TestFromDeployedPrecision:
    def test_fp32_session_matches_interpreter(self, mnist_model, rng):
        deployed = DeployedModel.from_model(mnist_model)
        session = InferenceSession.from_deployed(deployed, precision="fp32")
        x = rng.normal(size=(5, 256))
        # The artifact itself stores complex64 spectra, so the fp32
        # session and the (widening) record interpreter agree to ~1e-6.
        assert np.allclose(
            session.predict_proba(x), deployed.predict_proba(x), atol=1e-5
        )

    def test_fp32_artifact_spectra_not_widened(self, mnist_model, rng):
        deployed = DeployedModel.from_model(mnist_model)
        fp32 = InferenceSession.from_deployed(deployed, precision="fp32")
        fp64 = InferenceSession.from_deployed(deployed, precision="fp64")
        x = rng.normal(size=(4, 256))
        assert fp32.forward(x).dtype == np.float32
        assert fp64.forward(x).dtype == np.float64
        assert np.array_equal(fp32.predict(x), fp64.predict(x))


class TestMemoryEstimates:
    def test_fp64_doubles_fp32_footprint(self, mnist_model):
        fp32 = estimate_memory(mnist_model, (256,), precision="fp32")
        fp64 = estimate_memory(mnist_model, (256,), precision="fp64")
        default = estimate_memory(mnist_model, (256,))
        assert fp64.weight_bytes == 2 * fp32.weight_bytes
        assert fp64.peak_activation_bytes == 2 * fp32.peak_activation_bytes
        # The default reports the artifact (fp32) numbers — the complex64
        # spectra are half the widened fp64 spectrum footprint.
        assert default.weight_bytes == fp32.weight_bytes
