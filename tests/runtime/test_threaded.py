"""ThreadedExecutor: bitwise parity with serial, shared pools, profiling."""

import threading

import numpy as np
import pytest

import repro.runtime.plan as plan_mod
from repro.nn import (
    BlockCirculantLinear,
    Flatten,
    Linear,
    ReLU,
    Sequential,
    Softmax,
)
from repro.nn.layers import BlockCirculantConv2d
from repro.runtime import (
    ForkWorkerPool,
    InferenceSession,
    SerialExecutor,
    ThreadWorkerPool,
    ThreadedExecutor,
    effective_cpu_count,
)


@pytest.fixture
def model():
    rng = np.random.default_rng(0)
    return Sequential(
        BlockCirculantLinear(96, 64, 8, rng=rng),
        ReLU(),
        BlockCirculantLinear(64, 40, 4, rng=rng),
        ReLU(),
        Linear(40, 10, rng=rng),
        Softmax(),
    ).eval()


def conv_model():
    rng = np.random.default_rng(3)
    return Sequential(
        BlockCirculantConv2d(3, 8, 3, block_size=4, padding=1, rng=rng),
        ReLU(),
        Flatten(),
        BlockCirculantLinear(512, 32, 8, rng=rng),
        ReLU(),
        Linear(32, 5, rng=rng),
    ).eval()


@pytest.fixture
def shard_everything(monkeypatch):
    """Let tiny test layers pass the auto-shard size floor."""
    monkeypatch.setattr(plan_mod, "MIN_SHARD_BYTES", 0)


class TestThreadedRows:
    @pytest.mark.parametrize("precision", ["fp64", "fp32"])
    def test_rows_bitwise_equals_serial(
        self, model, rng, shard_everything, precision
    ):
        x = rng.normal(size=(5, 96))
        serial = InferenceSession.freeze(
            model, precision=precision, row_shards=3
        )
        with InferenceSession.freeze(
            model,
            precision=precision,
            executor=ThreadedExecutor(threads=3, mode="rows"),
            row_shards=3,
        ) as threaded:
            assert np.array_equal(threaded.forward(x), serial.forward(x))

    @pytest.mark.parametrize("precision", ["fp64", "fp32"])
    def test_conv_rows_bitwise_equals_serial(
        self, rng, shard_everything, precision
    ):
        m = conv_model()
        x = rng.normal(size=(4, 3, 8, 8))
        serial = InferenceSession.freeze(m, precision=precision, row_shards=2)
        with InferenceSession.freeze(
            m,
            precision=precision,
            executor=ThreadedExecutor(threads=2, mode="rows"),
            row_shards=2,
        ) as threaded:
            assert np.array_equal(threaded.forward(x), serial.forward(x))

    def test_conv_tile_bitwise_equals_serial(self, rng):
        # Tiled conv ops have no shard surface; the threaded executor
        # must fall through to in-thread execution, bitwise-identical.
        m = conv_model()
        x = rng.normal(size=(3, 3, 8, 8))
        serial = InferenceSession.freeze(m, conv_tile=4)
        with InferenceSession.freeze(
            m, conv_tile=4, executor=ThreadedExecutor(threads=2, mode="rows")
        ) as threaded:
            assert np.array_equal(threaded.forward(x), serial.forward(x))

    def test_row_shards_default_to_thread_count(self, model, shard_everything):
        with InferenceSession.freeze(
            model, executor=ThreadedExecutor(threads=3, mode="rows")
        ) as session:
            assert "[rows/3]" in session.describe()[0]

    def test_min_rows_gate_runs_serial_and_stays_correct(
        self, model, rng, shard_everything
    ):
        x = rng.normal(size=(2, 96))
        serial = InferenceSession.freeze(model, row_shards=3)
        with InferenceSession.freeze(
            model,
            executor=ThreadedExecutor(threads=3, mode="rows", min_rows=64),
            row_shards=3,
        ) as gated:
            # Below the gate nothing fans out, but results still match.
            assert not gated.executor.pool.started
            assert np.array_equal(gated.forward(x), serial.forward(x))


class TestThreadedBatches:
    @pytest.mark.parametrize("precision", ["fp64", "fp32"])
    @pytest.mark.parametrize("batch_size", [4, 7, None])
    def test_predict_proba_bitwise_equals_serial(
        self, model, rng, precision, batch_size
    ):
        x = rng.normal(size=(23, 96))
        serial = InferenceSession.freeze(model, precision=precision)
        with InferenceSession.freeze(
            model,
            precision=precision,
            executor=ThreadedExecutor(threads=3, mode="batch"),
        ) as threaded:
            assert np.array_equal(
                threaded.predict_proba(x, batch_size=batch_size),
                serial.predict_proba(x, batch_size=batch_size),
            )

    def test_conv_batches_bitwise_equals_serial(self, rng):
        m = conv_model()
        x = rng.normal(size=(13, 3, 8, 8))
        serial = InferenceSession.freeze(m)
        with InferenceSession.freeze(
            m, executor=ThreadedExecutor(threads=2, mode="batch")
        ) as threaded:
            assert np.array_equal(
                threaded.predict(x, batch_size=4),
                serial.predict(x, batch_size=4),
            )

    def test_auto_mode_matches_serial_both_paths(
        self, model, rng, shard_everything
    ):
        x = rng.normal(size=(17, 96))
        serial = InferenceSession.freeze(model, row_shards=2)
        with InferenceSession.freeze(
            model, executor=ThreadedExecutor(threads=2), row_shards=2
        ) as threaded:
            # One chunk -> rows path; several chunks -> batch path.
            assert np.array_equal(
                threaded.predict_proba(x), serial.predict_proba(x)
            )
            assert np.array_equal(
                threaded.predict_proba(x, batch_size=5),
                serial.predict_proba(x, batch_size=5),
            )


class TestThreadedLifecycle:
    def test_invalid_construction_rejected(self):
        with pytest.raises(ValueError, match="threads must be >= 1"):
            ThreadedExecutor(threads=0)
        with pytest.raises(ValueError, match="mode must be one of"):
            ThreadedExecutor(mode="columns")
        with pytest.raises(ValueError, match="min_rows"):
            ThreadedExecutor(min_rows=-1)

    def test_rebinding_rejected(self, model):
        executor = ThreadedExecutor(threads=2)
        with InferenceSession.freeze(model, executor=executor):
            with pytest.raises(RuntimeError, match="already bound"):
                InferenceSession.freeze(model, executor=executor)

    def test_close_is_idempotent(self, model, rng):
        session = InferenceSession.freeze(
            model, executor=ThreadedExecutor(threads=2, mode="batch")
        )
        session.predict(rng.normal(size=(8, 96)), batch_size=2)
        session.close()
        session.close()

    def test_worker_exception_propagates(self, model, shard_everything):
        with InferenceSession.freeze(
            model, executor=ThreadedExecutor(threads=2, mode="rows"),
            row_shards=2,
        ) as session:
            with pytest.raises(Exception):
                session.forward(np.zeros((4, 97)))  # wrong feature width
            # The executor survives a failed call.
            x = np.zeros((4, 96))
            assert session.forward(x).shape == (4, 10)

    def test_threads_conflicting_with_shared_pool_rejected(self):
        pool = ThreadWorkerPool(threads=2)
        try:
            with pytest.raises(ValueError, match="conflicts"):
                ThreadedExecutor(threads=3, pool=pool)
        finally:
            pool.close()


class TestSharedThreadPool:
    def test_two_routes_share_one_pool(self, model, rng, shard_everything):
        pool = ThreadWorkerPool(threads=2)
        serial64 = InferenceSession.freeze(model, precision="fp64")
        serial32 = InferenceSession.freeze(model, precision="fp32")
        s64 = InferenceSession.freeze(
            model,
            precision="fp64",
            executor=ThreadedExecutor(pool=pool, mode="batch"),
        )
        s32 = InferenceSession.freeze(
            model,
            precision="fp32",
            executor=ThreadedExecutor(pool=pool, mode="batch"),
        )
        try:
            assert s64.executor.pool is s32.executor.pool
            assert pool.describe()["plans"] == 2
            x = rng.normal(size=(19, 96))
            # Interleave calls on both routes through the one pool.
            for _ in range(3):
                assert np.array_equal(
                    s64.predict_proba(x, batch_size=4),
                    serial64.predict_proba(x, batch_size=4),
                )
                assert np.array_equal(
                    s32.predict_proba(x, batch_size=4),
                    serial32.predict_proba(x, batch_size=4),
                )
            s64.close()
            assert pool.describe()["plans"] == 1  # eviction, pool lives on
            assert np.array_equal(
                s32.predict_proba(x, batch_size=4),
                serial32.predict_proba(x, batch_size=4),
            )
        finally:
            s32.close()
            pool.close()

    def test_shared_pool_survives_executor_close(self, model, rng):
        pool = ThreadWorkerPool(threads=2)
        try:
            with InferenceSession.freeze(
                model, executor=ThreadedExecutor(pool=pool, mode="batch")
            ) as session:
                session.predict(rng.normal(size=(8, 96)), batch_size=2)
            assert pool.started  # close() evicted the plan, not the pool
            pool.ensure_started()
        finally:
            pool.close()

    def test_closed_pool_rejects_registration(self, model):
        pool = ThreadWorkerPool(threads=2)
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            InferenceSession.freeze(
                model, executor=ThreadedExecutor(pool=pool)
            )

    def test_concurrent_ensure_started_creates_one_pool(self):
        pool = ThreadWorkerPool(threads=2)
        try:
            seen = []
            barrier = threading.Barrier(4)

            def hammer():
                barrier.wait()
                pool.ensure_started()
                seen.append(pool._pool)

            workers = [threading.Thread(target=hammer) for _ in range(4)]
            for w in workers:
                w.start()
            for w in workers:
                w.join()
            assert len({id(p) for p in seen}) == 1
        finally:
            pool.close()


class TestSharedForkPool:
    def test_concurrent_ensure_started_creates_one_pool(
        self, model, shard_everything
    ):
        # The PR-7 race fix: two routes starting at once must not
        # double-create the multiprocessing pool.
        from repro.runtime import ShardedExecutor

        pool = ForkWorkerPool(workers=2)
        session = InferenceSession.freeze(
            model,
            executor=ShardedExecutor(mode="rows", pool=pool),
            row_shards=2,
        )
        try:
            plan_id = session.executor.plan_id
            seen = []
            barrier = threading.Barrier(4)

            def hammer():
                barrier.wait()
                pool.ensure_started(plan_id)
                seen.append(pool._pool)

            workers = [threading.Thread(target=hammer) for _ in range(4)]
            for w in workers:
                w.start()
            for w in workers:
                w.join()
            assert len({id(p) for p in seen}) == 1
        finally:
            session.close()
            pool.close()

    def test_late_registration_reforks_and_stays_correct(
        self, model, rng, shard_everything
    ):
        # Plan B registers after the pool forked for plan A: the pool
        # must re-fork so the children inherit B, and both routes stay
        # bitwise-correct.
        from repro.runtime import ShardedExecutor

        pool = ForkWorkerPool(workers=2)
        serial = InferenceSession.freeze(model, row_shards=2)
        a = InferenceSession.freeze(
            model, executor=ShardedExecutor(mode="rows", pool=pool),
            row_shards=2,
        )
        try:
            x = rng.normal(size=(5, 96))
            assert np.array_equal(a.forward(x), serial.forward(x))
            first_fork = pool._pool
            b = InferenceSession.freeze(
                model, executor=ShardedExecutor(mode="rows", pool=pool),
                row_shards=2,
            )
            try:
                assert np.array_equal(b.forward(x), serial.forward(x))
                assert pool._pool is not first_fork  # re-forked for B
                # A's plan is still inherited by the new children.
                assert np.array_equal(a.forward(x), serial.forward(x))
            finally:
                b.close()
        finally:
            a.close()
            pool.close()

    def test_two_routes_one_fork_pool_bitwise(
        self, model, rng, shard_everything
    ):
        from repro.runtime import ShardedExecutor

        pool = ForkWorkerPool(workers=2)
        serial64 = InferenceSession.freeze(model, precision="fp64")
        serial32 = InferenceSession.freeze(model, precision="fp32")
        s64 = InferenceSession.freeze(
            model,
            precision="fp64",
            executor=ShardedExecutor(mode="batch", pool=pool),
        )
        s32 = InferenceSession.freeze(
            model,
            precision="fp32",
            executor=ShardedExecutor(mode="batch", pool=pool),
        )
        try:
            assert pool.describe()["plans"] == 2
            x = rng.normal(size=(16, 96))
            for _ in range(2):
                assert np.array_equal(
                    s64.predict_proba(x, batch_size=4),
                    serial64.predict_proba(x, batch_size=4),
                )
                assert np.array_equal(
                    s32.predict_proba(x, batch_size=4),
                    serial32.predict_proba(x, batch_size=4),
                )
            assert pool._pool is not None or not pool.can_fork
        finally:
            s64.close()
            s32.close()
            pool.close()

    def test_shared_pool_rejects_conflicting_knobs(self):
        from repro.runtime import ShardedExecutor

        pool = ForkWorkerPool(workers=2)
        try:
            with pytest.raises(ValueError, match="fixed by the shared pool"):
                ShardedExecutor(workers=3, pool=pool)
        finally:
            pool.close()


class TestProfiling:
    def test_serial_profile_records_op_kinds(self, model, rng):
        with InferenceSession.freeze(
            model, executor=SerialExecutor(profile=True)
        ) as session:
            session.predict_proba(rng.normal(size=(6, 96)))
            stats = session.executor.op_stats()
        assert "bc_linear" in stats and "linear" in stats
        entry = stats["bc_linear"]
        assert entry["calls"] >= 2  # two bc layers in the plan
        assert entry["total_ns"] > 0

    def test_threaded_profile_records_op_kinds(
        self, model, rng, shard_everything
    ):
        with InferenceSession.freeze(
            model,
            executor=ThreadedExecutor(threads=2, mode="rows", profile=True),
            row_shards=2,
        ) as session:
            session.forward(rng.normal(size=(5, 96)))
            stats = session.executor.op_stats()
        assert stats["bc_linear"]["calls"] == 2
        assert stats["bc_linear"]["total_ns"] > 0

    def test_reset_clears_counters(self, model, rng):
        with InferenceSession.freeze(
            model, executor=SerialExecutor(profile=True)
        ) as session:
            session.forward(rng.normal(size=(3, 96)))
            assert session.executor.op_stats()
            session.executor.reset_op_stats()
            assert session.executor.op_stats() == {}

    def test_profile_off_records_nothing(self, model, rng):
        with InferenceSession.freeze(model) as session:
            session.forward(rng.normal(size=(3, 96)))
            assert session.executor.op_stats() == {}


class TestEffectiveCpuCount:
    def test_positive_int(self):
        count = effective_cpu_count()
        assert isinstance(count, int) and count >= 1

    def test_falls_back_to_cpu_count(self, monkeypatch):
        import os

        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 7)
        assert effective_cpu_count() == 7
