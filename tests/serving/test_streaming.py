"""Streaming over the wire: fusion, lifecycle, retry semantics, leaks."""

import asyncio
import socket
import time

import numpy as np
import pytest

from repro.engine import Engine, EngineConfig
from repro.exceptions import (
    Overloaded,
    ServerUnavailable,
    ServingError,
    StreamBroken,
)
from repro.runtime import compile_stream_plan
from repro.serving import (
    AsyncServeClient,
    DeadlineExpired,
    InferenceServer,
    MicroBatcher,
    QueueLimits,
    ServeClient,
)
from repro.serving.client import IDEMPOTENT_OPS
from repro.serving.protocol import (
    pack_array,
    read_frame_sync,
    send_frame_sync,
    unpack_array,
)
from repro.testing import faults
from repro.zoo import build_fftnet


def fftnet(seed=7):
    return build_fftnet(
        channels=8, depth=3, classes=6, rng=np.random.default_rng(seed)
    )


def stream_engine(**config):
    return Engine(
        config=EngineConfig(
            models={"fftnet": fftnet()}, default_model="fftnet", **config
        )
    )


def serve(engine, scenario, **server_kwargs):
    async def main():
        server = InferenceServer(
            engine, port=0, max_wait_ms=2.0, **server_kwargs
        )
        async with server:
            return await scenario(server)

    return asyncio.run(main())


def in_thread(fn, *args):
    """Run blocking client code off the server's event loop."""
    return asyncio.get_running_loop().run_in_executor(None, fn, *args)


class TestQueueLimitsStreams:
    def test_admits_stream_counts(self):
        limits = QueueLimits(10, max_streams=2)
        assert limits.admits_stream(0, 0, 100)
        assert limits.admits_stream(1, 100, 100)
        assert not limits.admits_stream(2, 0, 0)

    def test_admits_stream_byte_budget(self):
        limits = QueueLimits(10, max_streams=100, max_stream_state_bytes=256)
        assert limits.admits_stream(0, 0, 256)
        assert not limits.admits_stream(0, 1, 256)
        assert limits.admits_stream(50, 255, 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            QueueLimits(10, max_streams=0)
        with pytest.raises(ValueError):
            QueueLimits(10, max_stream_state_bytes=0)

    def test_from_config_reads_stream_fields(self):
        config = EngineConfig(
            models={"m": fftnet()},
            max_streams=3,
            max_stream_state_bytes=4096,
        )
        limits = QueueLimits.from_config(config)
        assert limits.max_streams == 3
        assert limits.max_stream_state_bytes == 4096


class TestBatcherStreamFusion:
    def test_concurrent_pushes_fuse_into_one_stream_batch(self, rng):
        plan = compile_stream_plan(fftnet())
        calls = []

        def runner(states, chunks):
            calls.append(len(states))
            return plan.push_many(states, chunks, proba=True)

        async def scenario():
            batcher = MicroBatcher(
                lambda b: b, max_batch=64, max_wait_ms=1000,
                stream_runner=runner,
            )
            states = [plan.open() for _ in range(3)]
            chunks = [rng.standard_normal((4, 1)) for _ in range(3)]
            outs = await asyncio.gather(*(
                batcher.submit_stream(s, c)
                for s, c in zip(states, chunks)
            ))
            # All three fused into one stream step...
            assert calls == [3]
            assert batcher.stats["stream_batches"] == 1
            assert batcher.stats["fused_streams_max"] == 3
            assert batcher.stats["stream_rows"] == 12
            # ...and each stream's rows match a solo run bitwise.
            for chunk, out in zip(chunks, outs):
                solo = plan.open()
                assert np.array_equal(out, plan.push(solo, chunk, proba=True))

        asyncio.run(scenario())

    def test_streams_never_fuse_with_plain_predicts(self, rng):
        plan = compile_stream_plan(fftnet())
        plain_batches = []

        def run_batch(batch):
            plain_batches.append(batch.shape)
            return batch * 2.0

        async def scenario():
            batcher = MicroBatcher(
                run_batch, max_batch=64, max_wait_ms=1000,
                stream_runner=lambda s, c: plan.push_many(s, c, proba=True),
            )
            state = plan.open()
            out_stream, out_plain = await asyncio.gather(
                batcher.submit_stream(state, rng.standard_normal((3, 1))),
                batcher.submit(rng.standard_normal((3, 1))),
            )
            assert out_stream.shape == (3, 6)
            assert plain_batches == [(3, 1)]

        asyncio.run(scenario())

    def test_submit_stream_without_runner_rejected(self, rng):
        async def scenario():
            batcher = MicroBatcher(lambda b: b, max_batch=4, max_wait_ms=5)
            with pytest.raises(ServingError, match="stream"):
                await batcher.submit_stream(
                    object(), rng.standard_normal((2, 1))
                )

        asyncio.run(scenario())

    def test_expired_push_never_touches_state(self, rng):
        plan = compile_stream_plan(fftnet())

        async def scenario():
            batcher = MicroBatcher(
                lambda b: b, max_batch=1000, max_wait_ms=20,
                stream_runner=lambda s, c: plan.push_many(s, c, proba=True),
            )
            state = plan.open()
            with pytest.raises(DeadlineExpired):
                await batcher.submit_stream(
                    state, rng.standard_normal((2, 1)), deadline_ms=0.0
                )
            assert state.samples == 0 and state.pushes == 0
            # The stream is still usable and still at position zero.
            out = await batcher.submit_stream(
                state, rng.standard_normal((2, 1))
            )
            assert state.samples == 2

        asyncio.run(scenario())

    def test_shed_push_never_touches_state(self, rng):
        plan = compile_stream_plan(fftnet())

        async def scenario():
            batcher = MicroBatcher(
                lambda b: b, max_batch=16, max_wait_ms=5,
                stream_runner=lambda s, c: plan.push_many(s, c, proba=True),
                limits=QueueLimits(4),
            )
            state = plan.open()
            with pytest.raises(Overloaded):
                await batcher.submit_stream(
                    state, rng.standard_normal((5, 1))
                )
            assert state.samples == 0

        asyncio.run(scenario())


class TestServerStreaming:
    def test_parity_and_lifecycle_over_the_wire(self, rng):
        engine = stream_engine()
        full = rng.standard_normal((48, 1))
        ref = engine.session().predict_proba(full[None])[0]

        async def scenario(server):
            def go():
                client = ServeClient(port=server.port, retries=0)
                with client.stream() as s:
                    assert s.receptive_field == 8
                    assert s.classes == 6
                    outs, i = [], 0
                    for k in (1, 5, 2, 17, 3, 20):
                        outs.append(s.push(full[i : i + k]))
                        i += k
                    assert s.samples == 48
                    inc = np.concatenate(outs)
                assert np.array_equal(inc, ref)
                info = client.info()
                streams = info["health"]["streams"]
                assert streams["open"] == 0
                assert streams["state_bytes"] == 0
                assert streams["opened"] == 1 and streams["closed"] == 1
                assert streams["pushes"] == 6
                assert streams["pushed_rows"] == 48
                client.close()

            await in_thread(go)

        serve(engine, scenario)

    def test_concurrent_streams_fuse_and_stay_bitwise(self, rng):
        engine = stream_engine()
        fulls = [rng.standard_normal((24, 1)) for _ in range(4)]
        session = engine.session()
        refs = [session.predict_proba(f[None])[0] for f in fulls]

        async def scenario(server):
            clients = [
                await AsyncServeClient.connect(port=server.port, retries=0)
                for _ in fulls
            ]
            streams = [await c.stream() for c in clients]

            async def drive(stream, full):
                outs = []
                for start in range(0, 24, 6):
                    outs.append(await stream.push(full[start : start + 6]))
                return np.concatenate(outs)

            incs = await asyncio.gather(*(
                drive(s, f) for s, f in zip(streams, fulls)
            ))
            for inc, ref in zip(incs, refs):
                assert np.array_equal(inc, ref)
            for stream, client in zip(streams, clients):
                await stream.close()
                await client.close()
            # Concurrent pushes from 4 connections shared fused steps.
            fused_max = max(
                b.stats["fused_streams_max"]
                for b in server._batchers.values()
            )
            assert fused_max >= 2

        serve(engine, scenario)

    def test_abrupt_disconnect_frees_all_state(self, rng):
        engine = stream_engine()

        async def scenario(server):
            def open_and_vanish():
                raw = socket.create_connection(
                    ("127.0.0.1", server.port), timeout=5
                )
                send_frame_sync(raw, {"op": "stream_open"})
                opened, _ = read_frame_sync(raw)
                assert opened["status"] == "ok"
                send_frame_sync(
                    raw,
                    {"op": "stream_push", "stream": opened["stream"]},
                    pack_array(rng.standard_normal((4, 1))),
                )
                read_frame_sync(raw)
                raw.close()  # vanish without stream_close

            await in_thread(open_and_vanish)
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if server._streams_open == 0:
                    break
                await asyncio.sleep(0.01)
            assert server._streams_open == 0
            assert server._stream_state_bytes == 0

        serve(engine, scenario)

    def test_max_streams_sheds_with_overloaded(self):
        engine = stream_engine(max_streams=2)

        async def scenario(server):
            def go():
                client = ServeClient(port=server.port, retries=0)
                streams = [client.stream(), client.stream()]
                with pytest.raises(Overloaded):
                    client.stream()
                for s in streams:
                    s.close()
                # Capacity returns after close.
                client.stream().close()
                client.close()

            await in_thread(go)

        serve(engine, scenario)

    def test_state_byte_budget_sheds(self):
        plan = compile_stream_plan(fftnet())
        engine = stream_engine(
            max_stream_state_bytes=plan.state_bytes + 1
        )

        async def scenario(server):
            def go():
                client = ServeClient(port=server.port, retries=0)
                first = client.stream()
                with pytest.raises(Overloaded):
                    client.stream()
                first.close()
                client.close()

            await in_thread(go)

        serve(engine, scenario)

    def test_non_streamable_model_is_typed_error(self):
        from repro.nn import Linear, ReLU, Sequential

        dense = Sequential(
            Linear(8, 4, rng=np.random.default_rng(0)), ReLU()
        ).eval()
        engine = Engine(model=dense)

        async def scenario(server):
            def go():
                client = ServeClient(port=server.port, retries=0)
                with pytest.raises(ServingError, match="streamable"):
                    client.stream()
                # The connection survives the typed error.
                assert client.ping()
                client.close()

            await in_thread(go)

        serve(engine, scenario)

    def test_unknown_stream_and_missing_payload(self, rng):
        engine = stream_engine()

        async def scenario(server):
            def go():
                raw = socket.create_connection(
                    ("127.0.0.1", server.port), timeout=5
                )
                send_frame_sync(
                    raw,
                    {"op": "stream_push", "stream": "s999"},
                    pack_array(rng.standard_normal((2, 1))),
                )
                resp, _ = read_frame_sync(raw)
                assert resp["status"] == "error"
                assert "unknown stream" in resp["message"]
                send_frame_sync(raw, {"op": "stream_open"})
                opened, _ = read_frame_sync(raw)
                send_frame_sync(
                    raw, {"op": "stream_push", "stream": opened["stream"]}
                )
                resp, _ = read_frame_sync(raw)
                assert resp["status"] == "error"
                assert "payload" in resp["message"]
                raw.close()

            await in_thread(go)

        serve(engine, scenario)

    def test_draining_refuses_streams(self):
        engine = stream_engine()

        async def scenario(server):
            def go():
                client = ServeClient(port=server.port, retries=0)
                s = client.stream()
                server.begin_drain()
                with pytest.raises(StreamBroken):
                    s.push(np.zeros((2, 1)))
                with pytest.raises(ServerUnavailable):
                    client.stream()
                client.close()

            await in_thread(go)

        serve(engine, scenario)


class TestClientRetrySemantics:
    def test_stream_push_not_in_idempotent_whitelist(self):
        assert "stream_push" not in IDEMPOTENT_OPS
        assert "stream_close" not in IDEMPOTENT_OPS
        assert "stream_open" in IDEMPOTENT_OPS
        assert "predict" in IDEMPOTENT_OPS

    def test_dropped_connection_breaks_stream_without_replay(self, rng):
        engine = stream_engine()
        full = rng.standard_normal((10, 1))

        async def scenario(server):
            def go():
                client = ServeClient(
                    port=server.port, retries=3, backoff_ms=1.0
                )
                s = client.stream()
                s.push(full[:5])
                faults.arm("server.drop_connection", times=1)
                try:
                    with pytest.raises(StreamBroken) as excinfo:
                        s.push(full[5:])
                finally:
                    faults.disarm("server.drop_connection")
                assert excinfo.value.pushed == 5
                assert s.broken
                # Later pushes keep raising; close stays silent.
                with pytest.raises(StreamBroken):
                    s.push(full[5:])
                s.close()
                # The client object itself recovers for idempotent ops.
                assert client.ping()
                client.close()

            await in_thread(go)

        serve(engine, scenario)

    def test_push_applied_exactly_once_around_shed(self, rng):
        # A shed push (admission fault) retries on the same connection
        # and the stream position advances exactly once.
        engine = stream_engine()
        full = rng.standard_normal((8, 1))
        ref = engine.session().predict_proba(full[None])[0]

        async def scenario(server):
            def go():
                client = ServeClient(
                    port=server.port, retries=3, backoff_ms=1.0
                )
                s = client.stream()
                first = s.push(full[:4])
                faults.arm("admission.shed", times=1)
                try:
                    second = s.push(full[4:])
                finally:
                    faults.disarm("admission.shed")
                assert s.samples == 8
                inc = np.concatenate([first, second])
                assert np.array_equal(inc, ref)
                s.close()
                client.close()

            await in_thread(go)

        serve(engine, scenario)

    def test_client_reconnect_invalidates_stream(self, rng):
        engine = stream_engine()

        async def scenario(server):
            def go():
                client = ServeClient(port=server.port, retries=0)
                s = client.stream()
                s.push(rng.standard_normal((3, 1)))
                client._connect()  # what a retried predict would do
                with pytest.raises(StreamBroken) as excinfo:
                    s.push(rng.standard_normal((3, 1)))
                assert excinfo.value.pushed == 3
                s.close()  # silent: old connection freed it already
                client.close()

            await in_thread(go)

        serve(engine, scenario)
