"""InferenceServer e2e: protocol framing, routing, parity with serial."""

import asyncio
import socket

import numpy as np
import pytest

from repro.engine import Engine
from repro.exceptions import ServingError
from repro.nn import BlockCirculantLinear, Linear, ReLU, Sequential
from repro.runtime import InferenceSession
from repro.serving import AsyncServeClient, InferenceServer, ServeClient
from repro.serving.protocol import (
    encode_frame,
    pack_array,
    pack_array_views,
    unpack_array,
)
from repro.zoo import build_arch2


def small_model():
    rng = np.random.default_rng(0)
    return Sequential(
        BlockCirculantLinear(96, 64, 8, rng=rng),
        ReLU(),
        Linear(64, 10, rng=rng),
    ).eval()


def small_engine(**config):
    return Engine(model=small_model(), **config)


def serve(engine, scenario, **server_kwargs):
    """Run an async scenario against an in-process server."""

    async def main():
        server = InferenceServer(engine, port=0, **server_kwargs)
        async with server:
            return await scenario(server)

    return asyncio.run(main())


class TestProtocol:
    def test_array_roundtrip(self, rng):
        for dtype in (np.float64, np.float32, np.int64):
            arr = (rng.normal(size=(3, 5)) * 10).astype(dtype)
            assert np.array_equal(unpack_array(pack_array(arr)), arr)

    def test_malformed_payload_rejected(self):
        with pytest.raises(ServingError):
            unpack_array(b"not an npy payload")

    def test_pack_array_views_is_zero_copy_and_wire_identical(self, rng):
        arr = np.ascontiguousarray(rng.normal(size=(16, 8)))
        views = pack_array_views(arr)
        # Wire bytes identical to the legacy serializer...
        assert b"".join(bytes(chunk) for chunk in views) == pack_array(arr)
        # ...and the body chunk aliases the array's own buffer (the
        # zero-copy assertion of the ROADMAP item).
        body = views[-1]
        assert isinstance(body, memoryview)
        assert np.shares_memory(np.frombuffer(body, dtype=arr.dtype), arr)

    def test_frame_length_counts_bytes_for_raw_memoryviews(self, rng):
        # An uncast float64 memoryview: len() is the element count, but
        # the frame's length prefix must declare bytes.
        from repro.serving.protocol import frame_chunks

        arr = np.ascontiguousarray(rng.normal(size=(4,)))
        chunks = frame_chunks({"k": 1}, memoryview(arr))
        declared = int.from_bytes(chunks[0][4:8], "big")
        assert declared == arr.nbytes  # 32, not 4
        body = b"".join(bytes(c) for c in chunks[2:])
        assert len(body) == declared

    def test_pack_array_views_roundtrips_noncontiguous(self, rng):
        arr = rng.normal(size=(6, 4)).T  # not C-contiguous: copies once
        views = pack_array_views(arr)
        joined = b"".join(bytes(chunk) for chunk in views)
        assert np.array_equal(unpack_array(joined), arr)


class TestServerE2E:
    def test_predict_proba_bitwise_equals_serial(self, rng):
        model = small_model()
        engine = Engine(model=model)
        serial = InferenceSession.freeze(model)
        x = rng.normal(size=(9, 96))

        async def scenario(server):
            async with await AsyncServeClient.connect(
                port=server.port
            ) as client:
                return await client.predict_proba(x)

        served = serve(engine, scenario)
        assert np.array_equal(served, serial.predict_proba(x))
        engine.close()

    def test_predict_labels_and_single_row(self, rng):
        model = small_model()
        engine = Engine(model=model)
        serial = InferenceSession.freeze(model)
        x = rng.normal(size=(6, 96))

        async def scenario(server):
            async with await AsyncServeClient.connect(
                port=server.port
            ) as client:
                labels = await client.predict(x)
                one = await client.predict_proba(x[0])  # 1-D row promotes
                return labels, one

        labels, one = serve(engine, scenario)
        assert np.array_equal(labels, serial.predict(x))
        assert one.shape == (1, 10)
        assert np.array_equal(one, serial.predict_proba(x[:1]))
        engine.close()

    def test_zoo_model_over_sync_client(self, rng):
        model = build_arch2(rng=np.random.default_rng(5)).eval()
        engine = Engine(model=model)
        serial = InferenceSession.freeze(model)
        x = rng.normal(size=(11, 121))

        async def scenario(server):
            loop = asyncio.get_running_loop()

            def sync_calls():
                with ServeClient(port=server.port) as client:
                    assert client.ping()
                    return client.predict_proba(x), client.info()

            return await loop.run_in_executor(None, sync_calls)

        proba, info = serve(engine, scenario)
        assert np.array_equal(proba, serial.predict_proba(x))
        assert info["precision"] == "fp64"
        route = info["routes"]["default/fp64"]
        assert any("bc_linear" in op for op in route["ops"])
        engine.close()

    def test_concurrent_clients_micro_batch_and_match_serial(self, rng):
        model = small_model()
        engine = Engine(model=model)
        serial = InferenceSession.freeze(model)

        async def scenario(server):
            async def one_client(seed):
                rows = np.random.default_rng(seed).normal(size=(3, 96))
                async with await AsyncServeClient.connect(
                    port=server.port
                ) as client:
                    return rows, await client.predict_proba(rows)

            return await asyncio.gather(*[one_client(s) for s in range(8)])

        results = serve(
            engine, scenario, max_batch=12, max_wait_ms=20.0
        )
        for rows, served in results:
            assert np.allclose(served, serial.predict_proba(rows), atol=1e-9)
        engine.close()

    def test_sharded_engine_served_matches_serial(self, rng):
        model = small_model()
        engine = Engine(
            model=model, executor="sharded", workers=2, shard_mode="batch"
        )
        serial = InferenceSession.freeze(model)
        x = rng.normal(size=(16, 96))

        async def scenario(server):
            async with await AsyncServeClient.connect(
                port=server.port
            ) as client:
                return await client.predict_proba(x)

        served = serve(engine, scenario)
        # The server chunks fused batches so pool batch-sharding engages;
        # the executor contract keeps that bitwise-identical to serial.
        assert np.array_equal(served, serial.predict_proba(x))
        engine.close()

    def test_fp32_engine_close_to_fp64_serial(self, rng):
        model = small_model()
        engine = Engine(model=model, precisions=("fp32",))
        serial64 = InferenceSession.freeze(model)
        x = rng.normal(size=(5, 96))

        async def scenario(server):
            async with await AsyncServeClient.connect(
                port=server.port
            ) as client:
                return await client.predict_proba(x)

        served = serve(engine, scenario)
        assert served.dtype == np.float32
        assert np.abs(served - serial64.predict_proba(x)).max() <= 1e-5
        engine.close()


class TestRouting:
    """Per-request model/precision routing through one server."""

    def test_mixed_precision_requests_route_to_pooled_sessions(self, rng):
        model = small_model()
        engine = Engine(model=model, precisions=("fp64", "fp32"))
        serial64 = InferenceSession.freeze(model)
        serial32 = InferenceSession.freeze(model, precision="fp32")
        x = rng.normal(size=(7, 96))

        async def scenario(server):
            async with await AsyncServeClient.connect(
                port=server.port
            ) as client:
                p64 = await client.predict_proba(x)
                p32 = await client.predict_proba(x, precision="fp32")
                again64 = await client.predict_proba(x, precision="fp64")
                info = await client.info()
            return p64, p32, again64, info

        p64, p32, again64, info = serve(engine, scenario)
        # fp64 route: bitwise vs the serial executor; fp32: <= 1e-5.
        assert np.array_equal(p64, serial64.predict_proba(x))
        assert np.array_equal(again64, p64)
        assert p32.dtype == np.float32
        assert np.array_equal(
            p32, serial32.predict_proba(x.astype(np.float32))
        )
        assert np.abs(p32 - p64).max() <= 1e-5
        # One pooled session and one batcher per route.
        assert sorted(info["routes"]) == ["default/fp32", "default/fp64"]
        assert sorted(info["batchers"]) == ["default/fp32", "default/fp64"]
        engine.close()

    def test_multi_model_registry_routes_by_name(self, rng):
        a, b = small_model(), build_arch2(rng=np.random.default_rng(5)).eval()
        engine = Engine(models={"small": a, "arch2": b},
                        default_model="small")
        serial_a = InferenceSession.freeze(a)
        serial_b = InferenceSession.freeze(b)
        xa = rng.normal(size=(4, 96))
        xb = rng.normal(size=(4, 121))

        async def scenario(server):
            async with await AsyncServeClient.connect(
                port=server.port
            ) as client:
                pa = await client.predict_proba(xa, model="small")
                pb = await client.predict_proba(xb, model="arch2")
                default = await client.predict_proba(xa)  # -> "small"
            return pa, pb, default

        pa, pb, default = serve(engine, scenario)
        assert np.array_equal(pa, serial_a.predict_proba(xa))
        assert np.array_equal(pb, serial_b.predict_proba(xb))
        assert np.array_equal(default, pa)
        engine.close()

    def test_unknown_model_and_precision_answer_error_frames(self, rng):
        engine = small_engine()
        x = rng.normal(size=(2, 96))

        async def scenario(server):
            async with await AsyncServeClient.connect(
                port=server.port
            ) as client:
                with pytest.raises(ServingError, match="unknown model"):
                    await client.predict_proba(x, model="missing")
                with pytest.raises(ServingError, match="not pooled"):
                    await client.predict_proba(x, precision="fp32")
                # A junk precision name is a clean config-error frame
                # too, not an "internal error".
                with pytest.raises(ServingError, match="unknown precision"):
                    await client.predict_proba(x, precision="fp16")
                # The connection survives both error frames.
                return await client.predict_proba(x)

        served = serve(engine, scenario)
        assert served.shape == (2, 10)
        engine.close()

    def test_malformed_routing_fields_answer_clean_error_frames(self, rng):
        engine = small_engine()
        x = rng.normal(size=(2, 96))

        async def scenario(server):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            from repro.serving.protocol import read_frame, send_frame

            # JSON lets a sloppy client send the wrong types; both must
            # come back as protocol errors, never "internal error".
            await send_frame(
                writer,
                {"op": "predict", "deadline_ms": "50"},
                pack_array(x),
            )
            bad_deadline, _ = await read_frame(reader)
            await send_frame(
                writer,
                {"op": "predict", "priority": [1]},
                pack_array(x),
            )
            bad_priority, _ = await read_frame(reader)
            writer.close()
            return bad_deadline, bad_priority

        bad_deadline, bad_priority = serve(engine, scenario)
        for response in (bad_deadline, bad_priority):
            assert response["status"] == "error"
            assert "internal error" not in response["message"]
        assert "deadline_ms" in bad_deadline["message"]
        assert "priority" in bad_priority["message"]
        engine.close()

    def test_expired_deadline_answers_typed_error_frame(self, rng):
        from repro.serving import DeadlineExpired

        engine = small_engine()
        x = rng.normal(size=(2, 96))

        async def scenario(server):
            async with await AsyncServeClient.connect(
                port=server.port
            ) as client:
                # The wire frame carries code=deadline_expired, which
                # the client raises as the typed subclass — retry logic
                # never has to string-match the message.
                with pytest.raises(DeadlineExpired):
                    await client.predict_proba(x, deadline_ms=0)
                ok = await client.predict_proba(x)
                info = await client.info()
            return ok, info

        ok, info = serve(engine, scenario, max_wait_ms=1.0)
        assert ok.shape == (2, 10)
        assert info["stats"]["expired"] == 1
        engine.close()

    def test_unloadable_artifact_fails_at_start_not_first_request(
        self, tmp_path
    ):
        engine = Engine(model=str(tmp_path / "does_not_exist.npz"))

        async def scenario():
            server = InferenceServer(engine, port=0)
            with pytest.raises(FileNotFoundError):
                await server.start()
            assert server._server is None  # no port was ever bound

        asyncio.run(scenario())
        engine.close()


class TestServerRobustness:
    def test_bad_op_and_missing_payload_keep_connection_alive(self, rng):
        engine = small_engine()
        x = rng.normal(size=(2, 96))

        async def scenario(server):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            from repro.serving.protocol import read_frame, send_frame

            await send_frame(writer, {"op": "teleport"})
            error1, _ = await read_frame(reader)
            await send_frame(writer, {"op": "predict"})  # no payload
            error2, _ = await read_frame(reader)
            await send_frame(writer, {"op": "predict"}, pack_array(x))
            ok, payload = await read_frame(reader)
            writer.close()
            await writer.wait_closed()
            return error1, error2, ok, payload

        error1, error2, ok, payload = serve(engine, scenario)
        assert error1["status"] == "error" and "teleport" in error1["message"]
        assert error2["status"] == "error"
        assert ok["status"] == "ok"
        assert unpack_array(payload).shape == (2,)
        engine.close()

    def test_oversized_payload_rejected_cheaply(self):
        engine = small_engine()

        async def scenario(server):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            from repro.serving.protocol import read_frame

            # A header lying about a huge payload must not be allocated.
            frame = encode_frame({"op": "predict"}, b"x" * 64)
            huge = frame[:4] + (1 << 30).to_bytes(4, "big") + frame[8:]
            writer.write(huge)
            await writer.drain()
            # Server answers with an error frame, then hangs up rather
            # than reading 1 GiB.
            response, _ = await read_frame(reader)
            eof = await reader.read(1024)
            writer.close()
            return response, eof

        response, eof = serve(engine, scenario, max_payload=1 << 20)
        assert response["status"] == "error"
        assert "too large" in response["message"]
        assert eof == b""
        engine.close()

    def test_bad_width_request_fails_alone_server_keeps_serving(self, rng):
        model = small_model()
        engine = Engine(model=model)
        serial = InferenceSession.freeze(model)
        good = rng.normal(size=(4, 96))
        bad = rng.normal(size=(4, 77))

        async def scenario(server):
            async with await AsyncServeClient.connect(
                port=server.port
            ) as client:
                with pytest.raises(ServingError):
                    await client.predict_proba(bad)
                return await client.predict_proba(good)

        served = serve(engine, scenario)
        assert np.array_equal(served, serial.predict_proba(good))
        engine.close()

    def test_client_dtype_normalized_to_route_precision(self, rng):
        model = small_model()
        engine = Engine(model=model)  # fp64 default
        serial = InferenceSession.freeze(model)
        x32 = rng.normal(size=(4, 96)).astype(np.float32)

        async def scenario(server):
            async with await AsyncServeClient.connect(
                port=server.port
            ) as client:
                return await client.predict_proba(x32)

        served = serve(engine, scenario)
        # Same cast the session applies at its own boundary.
        assert served.dtype == np.float64
        assert np.array_equal(served, serial.predict_proba(x32))
        engine.close()

    def test_request_id_echoed(self, rng):
        engine = small_engine()

        async def scenario(server):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            from repro.serving.protocol import read_frame, send_frame

            await send_frame(writer, {"op": "ping", "id": 41})
            response, _ = await read_frame(reader)
            writer.close()
            return response

        response = serve(engine, scenario)
        assert response["id"] == 41
        engine.close()

    def test_stats_and_info_expose_scheduler(self, rng):
        engine = small_engine(executor="sharded", workers=2)

        async def scenario(server):
            async with await AsyncServeClient.connect(
                port=server.port
            ) as client:
                await client.predict_proba(rng.normal(size=(4, 96)))
                return await client.info()

        info = serve(engine, scenario)
        assert info["stats"]["requests"] == 1
        assert info["batchers"]["default/fp64"]["batches"] == 1
        assert info["routes"]["default/fp64"]["scheduler"]["mode"] == "auto"
        engine.close()

    def test_info_health_capacity_fields_move_under_load(self, rng):
        """The router steers by ``health.queued_rows`` / ``batch_ms_ema``:
        both must exist as numbers and move once traffic has flowed."""
        engine = small_engine()

        async def scenario(server):
            async with await AsyncServeClient.connect(
                port=server.port
            ) as client:
                before = await client.info()
                for _ in range(4):
                    await client.predict_proba(rng.normal(size=(8, 96)))
                after = await client.info()
                return before, after

        before, after = serve(engine, scenario)
        for info in (before, after):
            assert isinstance(info["health"]["queued_rows"], int)
            assert isinstance(info["health"]["batch_ms_ema"], float)
        # Idle server: nothing queued, nothing measured yet.
        assert before["health"]["queued_rows"] == 0
        assert before["health"]["batch_ms_ema"] == 0.0
        # After fused batches the EMA has a real measurement.
        assert after["health"]["batch_ms_ema"] > 0.0
        # Per-route queues expose the same capacity surface.
        route = after["health"]["queues"]["default/fp64"]
        assert route["pending_rows"] == 0  # drained between requests
        assert isinstance(route["inflight_rows"], int)
        assert route["batch_ms_ema"] > 0.0
        assert route["retry_after_ms"] > 0.0
        engine.close()

    def test_port_zero_binds_ephemeral(self):
        engine = small_engine()

        async def scenario(server):
            assert server.port != 0
            with socket.create_connection(("127.0.0.1", server.port)):
                pass
            return server.port

        serve(engine, scenario)
        engine.close()
