"""InferenceServer e2e: protocol framing, parity with serial sessions."""

import asyncio
import socket

import numpy as np
import pytest

from repro.exceptions import ServingError
from repro.nn import BlockCirculantLinear, Linear, ReLU, Sequential
from repro.runtime import InferenceSession, ShardedExecutor
from repro.serving import AsyncServeClient, InferenceServer, ServeClient
from repro.serving.protocol import (
    encode_frame,
    pack_array,
    unpack_array,
)
from repro.zoo import build_arch2


def small_model():
    rng = np.random.default_rng(0)
    return Sequential(
        BlockCirculantLinear(96, 64, 8, rng=rng),
        ReLU(),
        Linear(64, 10, rng=rng),
    ).eval()


def serve(session, scenario, **server_kwargs):
    """Run an async scenario against an in-process server."""

    async def main():
        server = InferenceServer(session, port=0, **server_kwargs)
        async with server:
            return await scenario(server)

    return asyncio.run(main())


class TestProtocol:
    def test_array_roundtrip(self, rng):
        for dtype in (np.float64, np.float32, np.int64):
            arr = (rng.normal(size=(3, 5)) * 10).astype(dtype)
            assert np.array_equal(unpack_array(pack_array(arr)), arr)

    def test_malformed_payload_rejected(self):
        with pytest.raises(ServingError):
            unpack_array(b"not an npy payload")


class TestServerE2E:
    def test_predict_proba_bitwise_equals_serial(self, rng):
        model = small_model()
        session = InferenceSession.freeze(model)
        serial = InferenceSession.freeze(model)
        x = rng.normal(size=(9, 96))

        async def scenario(server):
            async with await AsyncServeClient.connect(
                port=server.port
            ) as client:
                return await client.predict_proba(x)

        served = serve(session, scenario)
        assert np.array_equal(served, serial.predict_proba(x))
        session.close()

    def test_predict_labels_and_single_row(self, rng):
        model = small_model()
        session = InferenceSession.freeze(model)
        serial = InferenceSession.freeze(model)
        x = rng.normal(size=(6, 96))

        async def scenario(server):
            async with await AsyncServeClient.connect(
                port=server.port
            ) as client:
                labels = await client.predict(x)
                one = await client.predict_proba(x[0])  # 1-D row promotes
                return labels, one

        labels, one = serve(session, scenario)
        assert np.array_equal(labels, serial.predict(x))
        assert one.shape == (1, 10)
        assert np.array_equal(one, serial.predict_proba(x[:1]))
        session.close()

    def test_zoo_model_over_sync_client(self, rng):
        model = build_arch2(rng=np.random.default_rng(5)).eval()
        session = InferenceSession.freeze(model)
        serial = InferenceSession.freeze(model)
        x = rng.normal(size=(11, 121))

        async def scenario(server):
            loop = asyncio.get_running_loop()

            def sync_calls():
                with ServeClient(port=server.port) as client:
                    assert client.ping()
                    return client.predict_proba(x), client.info()

            return await loop.run_in_executor(None, sync_calls)

        proba, info = serve(session, scenario)
        assert np.array_equal(proba, serial.predict_proba(x))
        assert info["precision"] == "fp64"
        assert any("bc_linear" in op for op in info["ops"])
        session.close()

    def test_concurrent_clients_micro_batch_and_match_serial(self, rng):
        model = small_model()
        session = InferenceSession.freeze(model)
        serial = InferenceSession.freeze(model)

        async def scenario(server):
            async def one_client(seed):
                rows = np.random.default_rng(seed).normal(size=(3, 96))
                async with await AsyncServeClient.connect(
                    port=server.port
                ) as client:
                    return rows, await client.predict_proba(rows)

            return await asyncio.gather(*[one_client(s) for s in range(8)])

        results = serve(
            session, scenario, max_batch=12, max_wait_ms=20.0
        )
        for rows, served in results:
            assert np.allclose(served, serial.predict_proba(rows), atol=1e-9)
        session.close()

    def test_sharded_session_served_matches_serial(self, rng):
        model = small_model()
        session = InferenceSession.freeze(
            model, executor=ShardedExecutor(workers=2, mode="batch")
        )
        serial = InferenceSession.freeze(model)
        x = rng.normal(size=(16, 96))

        async def scenario(server):
            async with await AsyncServeClient.connect(
                port=server.port
            ) as client:
                return await client.predict_proba(x)

        served = serve(session, scenario)
        # The server chunks fused batches so pool batch-sharding engages;
        # the executor contract keeps that bitwise-identical to serial.
        assert np.array_equal(served, serial.predict_proba(x))
        session.close()

    def test_fp32_session_close_to_fp64_serial(self, rng):
        model = small_model()
        session = InferenceSession.freeze(model, precision="fp32")
        serial64 = InferenceSession.freeze(model)
        x = rng.normal(size=(5, 96))

        async def scenario(server):
            async with await AsyncServeClient.connect(
                port=server.port
            ) as client:
                return await client.predict_proba(x)

        served = serve(session, scenario)
        assert served.dtype == np.float32
        assert np.abs(served - serial64.predict_proba(x)).max() <= 1e-5
        session.close()


class TestServerRobustness:
    def test_bad_op_and_missing_payload_keep_connection_alive(self, rng):
        model = small_model()
        session = InferenceSession.freeze(model)
        x = rng.normal(size=(2, 96))

        async def scenario(server):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            from repro.serving.protocol import read_frame, send_frame

            await send_frame(writer, {"op": "teleport"})
            error1, _ = await read_frame(reader)
            await send_frame(writer, {"op": "predict"})  # no payload
            error2, _ = await read_frame(reader)
            await send_frame(writer, {"op": "predict"}, pack_array(x))
            ok, payload = await read_frame(reader)
            writer.close()
            await writer.wait_closed()
            return error1, error2, ok, payload

        error1, error2, ok, payload = serve(session, scenario)
        assert error1["status"] == "error" and "teleport" in error1["message"]
        assert error2["status"] == "error"
        assert ok["status"] == "ok"
        assert unpack_array(payload).shape == (2,)
        session.close()

    def test_oversized_payload_rejected_cheaply(self):
        model = small_model()
        session = InferenceSession.freeze(model)

        async def scenario(server):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            from repro.serving.protocol import read_frame

            # A header lying about a huge payload must not be allocated.
            frame = encode_frame({"op": "predict"}, b"x" * 64)
            huge = frame[:4] + (1 << 30).to_bytes(4, "big") + frame[8:]
            writer.write(huge)
            await writer.drain()
            # Server answers with an error frame, then hangs up rather
            # than reading 1 GiB.
            response, _ = await read_frame(reader)
            eof = await reader.read(1024)
            writer.close()
            return response, eof

        response, eof = serve(session, scenario, max_payload=1 << 20)
        assert response["status"] == "error"
        assert "too large" in response["message"]
        assert eof == b""
        session.close()

    def test_bad_width_request_fails_alone_server_keeps_serving(self, rng):
        model = small_model()
        session = InferenceSession.freeze(model)
        serial = InferenceSession.freeze(model)
        good = rng.normal(size=(4, 96))
        bad = rng.normal(size=(4, 77))

        async def scenario(server):
            async with await AsyncServeClient.connect(
                port=server.port
            ) as client:
                with pytest.raises(ServingError):
                    await client.predict_proba(bad)
                return await client.predict_proba(good)

        served = serve(session, scenario)
        assert np.array_equal(served, serial.predict_proba(good))
        session.close()

    def test_client_dtype_normalized_to_session_precision(self, rng):
        model = small_model()
        session = InferenceSession.freeze(model)  # fp64 session
        serial = InferenceSession.freeze(model)
        x32 = rng.normal(size=(4, 96)).astype(np.float32)

        async def scenario(server):
            async with await AsyncServeClient.connect(
                port=server.port
            ) as client:
                return await client.predict_proba(x32)

        served = serve(session, scenario)
        # Same cast the session applies at its own boundary.
        assert served.dtype == np.float64
        assert np.array_equal(served, serial.predict_proba(x32))
        session.close()

    def test_request_id_echoed(self, rng):
        model = small_model()
        session = InferenceSession.freeze(model)

        async def scenario(server):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            from repro.serving.protocol import read_frame, send_frame

            await send_frame(writer, {"op": "ping", "id": 41})
            response, _ = await read_frame(reader)
            writer.close()
            return response

        response = serve(session, scenario)
        assert response["id"] == 41
        session.close()

    def test_stats_and_info_expose_scheduler(self, rng):
        model = small_model()
        session = InferenceSession.freeze(
            model, executor=ShardedExecutor(workers=2)
        )

        async def scenario(server):
            async with await AsyncServeClient.connect(
                port=server.port
            ) as client:
                await client.predict_proba(rng.normal(size=(4, 96)))
                return await client.info()

        info = serve(session, scenario)
        assert info["stats"]["requests"] == 1
        assert info["batcher"]["batches"] == 1
        assert info["scheduler"]["mode"] == "auto"
        session.close()

    def test_port_zero_binds_ephemeral(self):
        model = small_model()
        session = InferenceSession.freeze(model)

        async def scenario(server):
            assert server.port != 0
            with socket.create_connection(("127.0.0.1", server.port)):
                pass
            return server.port

        serve(session, scenario)
        session.close()
