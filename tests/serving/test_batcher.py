"""MicroBatcher: flush triggers, per-request row splitting, errors."""

import asyncio

import numpy as np
import pytest

from repro.exceptions import ServingError
from repro.serving import MicroBatcher


class RecordingRunner:
    """Identity runner that records every batch it was handed."""

    def __init__(self):
        self.batches = []

    def __call__(self, batch):
        self.batches.append(batch)
        return batch * 2.0


def run(coro):
    return asyncio.run(coro)


class TestFlushTriggers:
    def test_full_batch_flushes_without_waiting(self, rng):
        runner = RecordingRunner()

        async def scenario():
            # max_wait far beyond the test budget: only the row-count
            # trigger can flush.
            batcher = MicroBatcher(runner, max_batch=4, max_wait_ms=60_000)
            rows = rng.normal(size=(4, 3))
            out = await asyncio.wait_for(batcher.submit(rows), timeout=5)
            assert np.array_equal(out, rows * 2.0)

        run(scenario())
        assert len(runner.batches) == 1

    def test_partial_batch_flushes_on_max_wait(self, rng):
        runner = RecordingRunner()

        async def scenario():
            batcher = MicroBatcher(runner, max_batch=1000, max_wait_ms=10)
            rows = rng.normal(size=(2, 3))
            start = asyncio.get_running_loop().time()
            out = await asyncio.wait_for(batcher.submit(rows), timeout=5)
            waited = asyncio.get_running_loop().time() - start
            assert np.array_equal(out, rows * 2.0)
            assert waited >= 0.005  # sat in the queue until the timer fired

        run(scenario())
        assert len(runner.batches) == 1

    def test_concurrent_submissions_fuse_into_one_batch(self, rng):
        runner = RecordingRunner()

        async def scenario():
            batcher = MicroBatcher(runner, max_batch=6, max_wait_ms=1000)
            a, b, c = (rng.normal(size=(2, 3)) for _ in range(3))
            outs = await asyncio.gather(
                batcher.submit(a), batcher.submit(b), batcher.submit(c)
            )
            assert np.array_equal(outs[0], a * 2.0)
            assert np.array_equal(outs[1], b * 2.0)
            assert np.array_equal(outs[2], c * 2.0)

        run(scenario())
        assert len(runner.batches) == 1
        assert runner.batches[0].shape == (6, 3)


class TestSplitting:
    def test_each_request_gets_exactly_its_rows(self, rng):
        runner = RecordingRunner()

        async def scenario():
            batcher = MicroBatcher(runner, max_batch=100, max_wait_ms=5)
            sizes = (1, 3, 2, 5)
            arrays = [rng.normal(size=(n, 4)) for n in sizes]
            outs = await asyncio.gather(*[batcher.submit(a) for a in arrays])
            for arr, out in zip(arrays, outs):
                assert out.shape == arr.shape
                assert np.array_equal(out, arr * 2.0)

        run(scenario())

    def test_stats_track_fused_batches(self, rng):
        runner = RecordingRunner()

        async def scenario():
            batcher = MicroBatcher(runner, max_batch=4, max_wait_ms=1000)
            await asyncio.gather(
                batcher.submit(rng.normal(size=(2, 3))),
                batcher.submit(rng.normal(size=(2, 3))),
            )
            assert batcher.stats["requests"] == 2
            assert batcher.stats["batches"] == 1
            assert batcher.stats["rows"] == 4
            assert batcher.stats["max_batch_rows"] == 4

        run(scenario())


class TestBucketing:
    def test_mixed_widths_fuse_separately_and_both_succeed(self, rng):
        runner = RecordingRunner()

        async def scenario():
            batcher = MicroBatcher(runner, max_batch=100, max_wait_ms=5)
            narrow = rng.normal(size=(2, 3))
            wide = rng.normal(size=(2, 7))
            out_narrow, out_wide = await asyncio.gather(
                batcher.submit(narrow), batcher.submit(wide)
            )
            assert np.array_equal(out_narrow, narrow * 2.0)
            assert np.array_equal(out_wide, wide * 2.0)

        run(scenario())
        # One flush window, but incompatible shapes ran as two batches.
        assert len(runner.batches) == 2

    def test_mixed_dtypes_do_not_upcast_each_other(self, rng):
        runner = RecordingRunner()

        async def scenario():
            batcher = MicroBatcher(runner, max_batch=100, max_wait_ms=5)
            f32 = rng.normal(size=(2, 3)).astype(np.float32)
            f64 = rng.normal(size=(2, 3))
            out32, out64 = await asyncio.gather(
                batcher.submit(f32), batcher.submit(f64)
            )
            assert out32.dtype == np.float32  # not upcast by fusion
            assert out64.dtype == np.float64
            assert np.array_equal(out32, f32 * np.float32(2.0))

        run(scenario())
        assert len(runner.batches) == 2

    def test_same_shape_requests_still_fuse(self, rng):
        runner = RecordingRunner()

        async def scenario():
            batcher = MicroBatcher(runner, max_batch=100, max_wait_ms=5)
            a, b = rng.normal(size=(2, 3)), rng.normal(size=(3, 3))
            await asyncio.gather(batcher.submit(a), batcher.submit(b))

        run(scenario())
        assert len(runner.batches) == 1
        assert runner.batches[0].shape == (5, 3)


class TestErrors:
    def test_runner_failure_propagates_to_every_waiter(self, rng):
        def broken(batch):
            raise RuntimeError("engine on fire")

        async def scenario():
            batcher = MicroBatcher(broken, max_batch=4, max_wait_ms=1000)
            results = await asyncio.gather(
                batcher.submit(rng.normal(size=(2, 3))),
                batcher.submit(rng.normal(size=(2, 3))),
                return_exceptions=True,
            )
            assert all(isinstance(r, ServingError) for r in results)
            assert all("engine on fire" in str(r) for r in results)

        run(scenario())

    def test_empty_request_rejected(self):
        async def scenario():
            batcher = MicroBatcher(lambda b: b, max_batch=4)
            with pytest.raises(ServingError):
                await batcher.submit(np.empty((0, 3)))

        run(scenario())

    def test_closed_batcher_refuses_work(self, rng):
        async def scenario():
            batcher = MicroBatcher(lambda b: b, max_batch=4)
            await batcher.aclose()
            with pytest.raises(ServingError):
                await batcher.submit(rng.normal(size=(1, 3)))

        run(scenario())

    def test_invalid_construction_rejected(self):
        with pytest.raises(ValueError):
            MicroBatcher(lambda b: b, max_batch=0)
        with pytest.raises(ValueError):
            MicroBatcher(lambda b: b, max_wait_ms=-1)
