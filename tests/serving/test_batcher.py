"""MicroBatcher: flush triggers, splitting, priorities, deadlines, errors."""

import asyncio

import numpy as np
import pytest

from repro.exceptions import ServingError
from repro.serving import DeadlineExpired, MicroBatcher


class RecordingRunner:
    """Identity runner that records every batch it was handed."""

    def __init__(self):
        self.batches = []

    def __call__(self, batch):
        self.batches.append(batch)
        return batch * 2.0


def run(coro):
    return asyncio.run(coro)


class TestFlushTriggers:
    def test_full_batch_flushes_without_waiting(self, rng):
        runner = RecordingRunner()

        async def scenario():
            # max_wait far beyond the test budget: only the row-count
            # trigger can flush.
            batcher = MicroBatcher(runner, max_batch=4, max_wait_ms=60_000)
            rows = rng.normal(size=(4, 3))
            out = await asyncio.wait_for(batcher.submit(rows), timeout=5)
            assert np.array_equal(out, rows * 2.0)

        run(scenario())
        assert len(runner.batches) == 1

    def test_partial_batch_flushes_on_max_wait(self, rng):
        runner = RecordingRunner()

        async def scenario():
            batcher = MicroBatcher(runner, max_batch=1000, max_wait_ms=10)
            rows = rng.normal(size=(2, 3))
            start = asyncio.get_running_loop().time()
            out = await asyncio.wait_for(batcher.submit(rows), timeout=5)
            waited = asyncio.get_running_loop().time() - start
            assert np.array_equal(out, rows * 2.0)
            assert waited >= 0.005  # sat in the queue until the timer fired

        run(scenario())
        assert len(runner.batches) == 1

    def test_concurrent_submissions_fuse_into_one_batch(self, rng):
        runner = RecordingRunner()

        async def scenario():
            batcher = MicroBatcher(runner, max_batch=6, max_wait_ms=1000)
            a, b, c = (rng.normal(size=(2, 3)) for _ in range(3))
            outs = await asyncio.gather(
                batcher.submit(a), batcher.submit(b), batcher.submit(c)
            )
            assert np.array_equal(outs[0], a * 2.0)
            assert np.array_equal(outs[1], b * 2.0)
            assert np.array_equal(outs[2], c * 2.0)

        run(scenario())
        assert len(runner.batches) == 1
        assert runner.batches[0].shape == (6, 3)


class TestSplitting:
    def test_each_request_gets_exactly_its_rows(self, rng):
        runner = RecordingRunner()

        async def scenario():
            batcher = MicroBatcher(runner, max_batch=100, max_wait_ms=5)
            sizes = (1, 3, 2, 5)
            arrays = [rng.normal(size=(n, 4)) for n in sizes]
            outs = await asyncio.gather(*[batcher.submit(a) for a in arrays])
            for arr, out in zip(arrays, outs):
                assert out.shape == arr.shape
                assert np.array_equal(out, arr * 2.0)

        run(scenario())

    def test_stats_track_fused_batches(self, rng):
        runner = RecordingRunner()

        async def scenario():
            batcher = MicroBatcher(runner, max_batch=4, max_wait_ms=1000)
            await asyncio.gather(
                batcher.submit(rng.normal(size=(2, 3))),
                batcher.submit(rng.normal(size=(2, 3))),
            )
            assert batcher.stats["requests"] == 2
            assert batcher.stats["batches"] == 1
            assert batcher.stats["rows"] == 4
            assert batcher.stats["max_batch_rows"] == 4

        run(scenario())


class TestBucketing:
    def test_mixed_widths_fuse_separately_and_both_succeed(self, rng):
        runner = RecordingRunner()

        async def scenario():
            batcher = MicroBatcher(runner, max_batch=100, max_wait_ms=5)
            narrow = rng.normal(size=(2, 3))
            wide = rng.normal(size=(2, 7))
            out_narrow, out_wide = await asyncio.gather(
                batcher.submit(narrow), batcher.submit(wide)
            )
            assert np.array_equal(out_narrow, narrow * 2.0)
            assert np.array_equal(out_wide, wide * 2.0)

        run(scenario())
        # One flush window, but incompatible shapes ran as two batches.
        assert len(runner.batches) == 2

    def test_mixed_dtypes_do_not_upcast_each_other(self, rng):
        runner = RecordingRunner()

        async def scenario():
            batcher = MicroBatcher(runner, max_batch=100, max_wait_ms=5)
            f32 = rng.normal(size=(2, 3)).astype(np.float32)
            f64 = rng.normal(size=(2, 3))
            out32, out64 = await asyncio.gather(
                batcher.submit(f32), batcher.submit(f64)
            )
            assert out32.dtype == np.float32  # not upcast by fusion
            assert out64.dtype == np.float64
            assert np.array_equal(out32, f32 * np.float32(2.0))

        run(scenario())
        assert len(runner.batches) == 2

    def test_same_shape_requests_still_fuse(self, rng):
        runner = RecordingRunner()

        async def scenario():
            batcher = MicroBatcher(runner, max_batch=100, max_wait_ms=5)
            a, b = rng.normal(size=(2, 3)), rng.normal(size=(3, 3))
            await asyncio.gather(batcher.submit(a), batcher.submit(b))

        run(scenario())
        assert len(runner.batches) == 1
        assert runner.batches[0].shape == (5, 3)


class TestPriorities:
    def test_priority_orders_rows_within_fused_batch(self):
        runner = RecordingRunner()

        async def scenario():
            batcher = MicroBatcher(runner, max_batch=100, max_wait_ms=5)
            low = np.full((1, 3), 0.0)
            high = np.full((1, 3), 2.0)
            mid = np.full((1, 3), 1.0)
            outs = await asyncio.gather(
                batcher.submit(low, priority=0),
                batcher.submit(high, priority=2),
                batcher.submit(mid, priority=1),
            )
            # Every request still gets exactly its own rows back.
            assert np.array_equal(outs[0], low * 2.0)
            assert np.array_equal(outs[1], high * 2.0)
            assert np.array_equal(outs[2], mid * 2.0)

        run(scenario())
        # One fused batch, rows ordered high -> mid -> low.
        assert len(runner.batches) == 1
        assert runner.batches[0][:, 0].tolist() == [2.0, 1.0, 0.0]

    def test_priority_ties_keep_arrival_order(self, rng):
        runner = RecordingRunner()

        async def scenario():
            batcher = MicroBatcher(runner, max_batch=100, max_wait_ms=5)
            first = np.full((1, 3), 10.0)
            second = np.full((1, 3), 20.0)
            await asyncio.gather(
                batcher.submit(first, priority=1),
                batcher.submit(second, priority=1),
            )

        run(scenario())
        assert runner.batches[0][:, 0].tolist() == [10.0, 20.0]

    def test_priority_orders_buckets_under_saturated_window(self):
        # Incompatible widths cannot fuse; the bucket holding the
        # highest-priority request must run first even though its
        # request arrived last in the saturated flush window.
        runner = RecordingRunner()

        async def scenario():
            batcher = MicroBatcher(runner, max_batch=100, max_wait_ms=10)
            bulk = [np.full((2, 3), float(i)) for i in range(3)]
            interactive = np.full((1, 7), 99.0)
            await asyncio.gather(
                *[batcher.submit(b, priority=0) for b in bulk],
                batcher.submit(interactive, priority=2),
            )

        run(scenario())
        assert len(runner.batches) == 2
        # The interactive bucket (width 7) ran before the bulk fuse.
        assert runner.batches[0].shape == (1, 7)
        assert runner.batches[1].shape == (6, 3)


class TestDeadlines:
    def test_expired_request_errors_without_occupying_batch_rows(self, rng):
        runner = RecordingRunner()

        async def scenario():
            batcher = MicroBatcher(runner, max_batch=100, max_wait_ms=5)
            live_rows = rng.normal(size=(2, 3))
            live = batcher.submit(live_rows)
            doomed = batcher.submit(rng.normal(size=(4, 3)), deadline_ms=0)
            out, err = await asyncio.gather(
                live, doomed, return_exceptions=True
            )
            assert np.array_equal(out, live_rows * 2.0)
            assert isinstance(err, DeadlineExpired)
            assert batcher.stats["expired"] == 1

        run(scenario())
        # The fused batch carried only the live request's rows.
        assert len(runner.batches) == 1
        assert runner.batches[0].shape == (2, 3)

    def test_all_requests_expired_skips_the_runner(self, rng):
        runner = RecordingRunner()

        async def scenario():
            batcher = MicroBatcher(runner, max_batch=100, max_wait_ms=5)
            with pytest.raises(DeadlineExpired):
                await batcher.submit(rng.normal(size=(2, 3)), deadline_ms=0)

        run(scenario())
        assert runner.batches == []

    def test_tight_deadline_pulls_flush_before_max_wait(self, rng):
        runner = RecordingRunner()

        async def scenario():
            # max_wait alone would sit for a minute; the deadline must
            # pull the flush early enough for the request to make it.
            batcher = MicroBatcher(runner, max_batch=1000, max_wait_ms=60_000)
            rows = rng.normal(size=(2, 3))
            start = asyncio.get_running_loop().time()
            out = await asyncio.wait_for(
                batcher.submit(rows, deadline_ms=500), timeout=5
            )
            waited = asyncio.get_running_loop().time() - start
            assert np.array_equal(out, rows * 2.0)
            assert waited < 0.5  # flushed around the deadline midpoint

        run(scenario())
        assert len(runner.batches) == 1  # it ran — nothing expired

    def test_negative_deadline_rejected(self, rng):
        async def scenario():
            batcher = MicroBatcher(lambda b: b, max_batch=4)
            with pytest.raises(ServingError):
                await batcher.submit(rng.normal(size=(1, 3)), deadline_ms=-5)

        run(scenario())


class TestErrors:
    def test_runner_failure_propagates_to_every_waiter(self, rng):
        def broken(batch):
            raise RuntimeError("engine on fire")

        async def scenario():
            batcher = MicroBatcher(broken, max_batch=4, max_wait_ms=1000)
            results = await asyncio.gather(
                batcher.submit(rng.normal(size=(2, 3))),
                batcher.submit(rng.normal(size=(2, 3))),
                return_exceptions=True,
            )
            assert all(isinstance(r, ServingError) for r in results)
            assert all("engine on fire" in str(r) for r in results)

        run(scenario())

    def test_empty_request_rejected(self):
        async def scenario():
            batcher = MicroBatcher(lambda b: b, max_batch=4)
            with pytest.raises(ServingError):
                await batcher.submit(np.empty((0, 3)))

        run(scenario())

    def test_closed_batcher_refuses_work(self, rng):
        async def scenario():
            batcher = MicroBatcher(lambda b: b, max_batch=4)
            await batcher.aclose()
            with pytest.raises(ServingError):
                await batcher.submit(rng.normal(size=(1, 3)))

        run(scenario())

    def test_invalid_construction_rejected(self):
        with pytest.raises(ValueError):
            MicroBatcher(lambda b: b, max_batch=0)
        with pytest.raises(ValueError):
            MicroBatcher(lambda b: b, max_wait_ms=-1)
