"""Live-server coverage for the threaded executor and the shared pool."""

import asyncio

import numpy as np
import pytest

from repro.engine import Engine
from repro.nn import BlockCirculantLinear, Linear, ReLU, Sequential
from repro.runtime import (
    ForkWorkerPool,
    InferenceSession,
    ThreadWorkerPool,
)
from repro.serving import AsyncServeClient, InferenceServer


def small_model():
    rng = np.random.default_rng(0)
    return Sequential(
        BlockCirculantLinear(96, 64, 8, rng=rng),
        ReLU(),
        Linear(64, 10, rng=rng),
    ).eval()


def serve(engine, scenario, **server_kwargs):
    """Run an async scenario against an in-process server."""

    async def main():
        server = InferenceServer(engine, port=0, **server_kwargs)
        async with server:
            return await scenario(server)

    return asyncio.run(main())


class TestThreadedServing:
    def test_threaded_server_bitwise_equals_serial(self, rng):
        model = small_model()
        engine = Engine(model=model, executor="threaded", threads=2)
        serial = InferenceSession.freeze(model)
        x = rng.normal(size=(24, 96))

        async def scenario(server):
            async with await AsyncServeClient.connect(
                port=server.port
            ) as client:
                return await client.predict_proba(x)

        served = serve(engine, scenario)
        assert np.array_equal(served, serial.predict_proba(x))
        engine.close()

    def test_info_reports_executor_and_shared_pool(self, rng):
        engine = Engine(
            model=small_model(),
            precisions=("fp64", "fp32"),
            executor="threaded",
            threads=2,
            profile=True,
        )
        x = rng.normal(size=(8, 96))

        async def scenario(server):
            async with await AsyncServeClient.connect(
                port=server.port
            ) as client:
                await client.predict_proba(x)
                await client.predict_proba(x, precision="fp32")
                return await client.info()

        info = serve(engine, scenario)
        executor = info["executor"]
        assert executor["kind"] == "threaded"
        assert executor["workers"] == 2
        assert executor["profile"] is True
        assert executor["shared_pool"]["kind"] == "thread"
        assert executor["shared_pool"]["plans"] == 2  # both routes, one pool
        assert info["health"]["pool"]["kind"] == "thread"
        # Per-op profile stats are visible per route through `info`.
        for route in ("default/fp64", "default/fp32"):
            stats = info["routes"][route]["op_stats"]
            assert stats["bc_linear"]["total_ns"] > 0
        engine.close()

    def test_two_routes_one_thread_pool_interleaved(self, rng):
        model = small_model()
        engine = Engine(
            model=model,
            precisions=("fp64", "fp32"),
            executor="threaded",
            threads=2,
        )
        serial64 = InferenceSession.freeze(model, precision="fp64")
        serial32 = InferenceSession.freeze(model, precision="fp32")
        x = rng.normal(size=(16, 96))

        async def scenario(server):
            async def route(precision, repeats=4):
                async with await AsyncServeClient.connect(
                    port=server.port
                ) as client:
                    return [
                        await client.predict_proba(x, precision=precision)
                        for _ in range(repeats)
                    ]

            return await asyncio.gather(route("fp64"), route("fp32"))

        got64, got32 = serve(engine, scenario)
        # Both routes shared one ThreadWorkerPool end to end.
        assert isinstance(engine._workpool, ThreadWorkerPool)
        s64 = engine.session(precision="fp64")
        s32 = engine.session(precision="fp32")
        assert s64.executor.pool is s32.executor.pool is engine._workpool
        want64 = serial64.predict_proba(x)
        want32 = serial32.predict_proba(x)
        for out in got64:
            assert np.array_equal(out, want64)
        for out in got32:
            assert np.array_equal(out, want32)
        engine.close()

    def test_two_routes_one_fork_pool_interleaved(self, rng):
        model = small_model()
        engine = Engine(
            model=model,
            precisions=("fp64", "fp32"),
            executor="sharded",
            workers=2,
        )
        serial64 = InferenceSession.freeze(model, precision="fp64")
        serial32 = InferenceSession.freeze(model, precision="fp32")
        x = rng.normal(size=(16, 96))

        async def scenario(server):
            async def route(precision, repeats=3):
                async with await AsyncServeClient.connect(
                    port=server.port
                ) as client:
                    return [
                        await client.predict_proba(x, precision=precision)
                        for _ in range(repeats)
                    ]

            results = await asyncio.gather(route("fp64"), route("fp32"))
            async with await AsyncServeClient.connect(
                port=server.port
            ) as client:
                info = await client.info()
            return results, info

        (got64, got32), info = serve(engine, scenario)
        assert isinstance(engine._workpool, ForkWorkerPool)
        pool_info = info["executor"]["shared_pool"]
        assert pool_info["kind"] == "fork"
        assert pool_info["plans"] == 2
        want64 = serial64.predict_proba(x)
        want32 = serial32.predict_proba(x)
        for out in got64:
            assert np.array_equal(out, want64)
        for out in got32:
            assert np.array_equal(out, want32)
        engine.close()

    def test_auto_executor_serves_correctly(self, rng):
        # Whatever auto resolves to on this host, served results must
        # match serial bitwise.
        model = small_model()
        engine = Engine(model=model, executor="auto")
        serial = InferenceSession.freeze(model)
        x = rng.normal(size=(12, 96))

        async def scenario(server):
            async with await AsyncServeClient.connect(
                port=server.port
            ) as client:
                out = await client.predict_proba(x)
                info = await client.info()
                return out, info

        served, info = serve(engine, scenario)
        assert np.array_equal(served, serial.predict_proba(x))
        assert info["executor"]["requested"] == "auto"
        assert info["executor"]["kind"] in ("serial", "threaded")
        engine.close()
