"""Fault injection e2e: every injected fault yields a bitwise-correct
result (after internal retry/degradation) or a typed error frame —
never a hang, a silent drop, or a leaked shm segment."""

import asyncio
import glob
import socket
import struct
import warnings

import numpy as np
import pytest

import repro.runtime.plan as plan_mod
from repro.engine import Engine
from repro.exceptions import (
    Overloaded,
    ServerUnavailable,
    ServingError,
    WorkerFault,
)
from repro.nn import BlockCirculantLinear, Linear, ReLU, Sequential
from repro.runtime import InferenceSession
from repro.runtime.executors import ShardedExecutor
from repro.serving import (
    AsyncServeClient,
    InferenceServer,
    MicroBatcher,
    QueueLimits,
    ServeClient,
    TokenBucket,
)
from repro.serving.batcher import DeadlineExpired
from repro.testing import faults


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.reset()
    yield
    faults.reset()


def small_model():
    rng = np.random.default_rng(0)
    return Sequential(
        BlockCirculantLinear(96, 64, 8, rng=rng),
        ReLU(),
        Linear(64, 10, rng=rng),
    ).eval()


def serve(engine, scenario, **server_kwargs):
    async def main():
        server = InferenceServer(engine, port=0, **server_kwargs)
        async with server:
            return await scenario(server)

    return asyncio.run(main())


# ----------------------------------------------------------------------
# The harness itself
# ----------------------------------------------------------------------
class TestHarness:
    def test_disarmed_take_is_none_and_cheap(self):
        assert faults.enabled is False
        assert faults.take("worker.kill") is None

    def test_budget_is_consumed_exactly(self):
        fault = faults.arm("worker.delay", times=2, seconds=0.1)
        assert faults.take("worker.delay") == {"seconds": 0.1}
        assert faults.take("worker.delay", seconds=9.9) == {"seconds": 0.1}
        assert faults.take("worker.delay") is None
        assert fault.fired == 2
        assert fault.remaining == 0

    def test_unlimited_budget(self):
        faults.arm("admission.shed", times=None)
        for _ in range(10):
            assert faults.take("admission.shed") is not None
        assert faults.fired("admission.shed") == 10

    def test_defaults_merge_under_armed_params(self):
        faults.arm("worker.hang", times=1)
        assert faults.take("worker.hang", seconds=3600.0) == {"seconds": 3600.0}

    def test_disarm_and_reset_restore_fast_path(self):
        faults.arm("a")
        faults.arm("b")
        faults.disarm("a")
        assert faults.enabled is True
        faults.disarm("b")
        assert faults.enabled is False

    def test_arm_from_env_spec(self):
        armed = faults.arm_from_env(
            "worker.kill*3; server.delay_response:seconds=0.02 ;"
            "admission.shed*inf:retry_after_ms=75"
        )
        assert [f.point for f in armed] == [
            "worker.kill", "server.delay_response", "admission.shed",
        ]
        assert faults.describe()["worker.kill"]["remaining"] == 3
        assert faults.describe()["admission.shed"]["remaining"] is None
        assert faults.take("server.delay_response") == {"seconds": 0.02}
        assert faults.take("admission.shed")["retry_after_ms"] == 75

    def test_arm_from_env_rejects_junk(self):
        with pytest.raises(ValueError):
            faults.arm_from_env("*3")
        with pytest.raises(ValueError):
            faults.arm_from_env("point:novalue")


# ----------------------------------------------------------------------
# Admission primitives
# ----------------------------------------------------------------------
class TestTokenBucket:
    def test_burst_then_refill(self):
        now = [0.0]
        bucket = TokenBucket(rate=10.0, burst=2, clock=lambda: now[0])
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() == 0.0
        wait = bucket.try_acquire()
        assert wait == pytest.approx(0.1)
        now[0] += 0.1  # one token accrues
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() > 0.0

    def test_tokens_cap_at_burst(self):
        now = [0.0]
        bucket = TokenBucket(rate=100.0, burst=3, clock=lambda: now[0])
        now[0] += 60.0
        assert bucket.available == 3.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0)


class TestQueueLimits:
    def test_total_and_class_caps(self):
        limits = QueueLimits(max_rows=10, class_caps={0: 4})
        assert limits.admits(10, 1, queued=0, queued_at_level=0)
        assert not limits.admits(11, 1, queued=0, queued_at_level=0)
        assert not limits.admits(2, 1, queued=9, queued_at_level=0)
        assert limits.admits(4, 0, queued=0, queued_at_level=0)
        assert not limits.admits(5, 0, queued=0, queued_at_level=0)
        assert not limits.admits(1, 0, queued=0, queued_at_level=4)

    def test_from_config_resolves_class_names(self):
        engine = Engine(
            model=small_model(),
            max_queue_rows=64,
            queue_class_caps={"batch": 8},
        )
        limits = QueueLimits.from_config(engine.config)
        level = engine.config.resolve_priority("batch")
        assert limits.max_rows == 64
        assert limits.class_caps == {level: 8}

    def test_config_rejects_bad_caps(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            Engine(model=small_model(), queue_class_caps={"nope": 4})
        with pytest.raises(ConfigurationError):
            Engine(
                model=small_model(),
                max_queue_rows=8,
                queue_class_caps={"batch": 99},
            )
        with pytest.raises(ConfigurationError):
            Engine(model=small_model(), rate_burst=4)  # no rate_limit_rps


# ----------------------------------------------------------------------
# Batcher admission
# ----------------------------------------------------------------------
class TestBatcherShedding:
    def test_sheds_over_row_budget_with_retry_hint(self, rng):
        async def main():
            release = asyncio.Event()

            def runner(batch):
                return batch

            batcher = MicroBatcher(
                runner,
                max_batch=64,
                max_wait_ms=10_000.0,
                limits=QueueLimits(max_rows=8),
            )
            first = asyncio.ensure_future(
                batcher.submit(rng.normal(size=(8, 4)))
            )
            await asyncio.sleep(0)  # first request now occupies the queue
            with pytest.raises(Overloaded) as excinfo:
                await batcher.submit(rng.normal(size=(1, 4)))
            assert excinfo.value.retry_after_ms >= 1.0
            assert batcher.stats["shed"] == 1
            assert batcher.queue_depth()["inflight_rows"] == 8
            release.set()
            await batcher.drain()
            await first
            # Budget released after the future resolved: admits again.
            await batcher.submit(rng.normal(size=(8, 4)))
            await batcher.aclose()

        asyncio.run(main())

    def test_class_cap_sheds_low_priority_only(self, rng):
        async def main():
            batcher = MicroBatcher(
                lambda b: b,
                max_batch=64,
                max_wait_ms=10_000.0,
                limits=QueueLimits(max_rows=32, class_caps={0: 4}),
            )
            low = asyncio.ensure_future(
                batcher.submit(rng.normal(size=(4, 4)), priority=0)
            )
            await asyncio.sleep(0)
            with pytest.raises(Overloaded):
                await batcher.submit(rng.normal(size=(1, 4)), priority=0)
            # The higher class is bounded only by max_rows.
            high = asyncio.ensure_future(
                batcher.submit(rng.normal(size=(8, 4)), priority=2)
            )
            await asyncio.sleep(0)
            await batcher.drain()
            await asyncio.gather(low, high)
            await batcher.aclose()

        asyncio.run(main())


# ----------------------------------------------------------------------
# Executor fault recovery (worker kill / hang, respawn, degrade, shm)
# ----------------------------------------------------------------------
def _sharded_session(model, **kwargs):
    executor = ShardedExecutor(task_timeout=kwargs.pop("task_timeout", 5.0),
                               **kwargs)
    return InferenceSession.freeze(model, executor=executor), executor


class TestWorkerFaultRecovery:
    def test_killed_worker_respawns_and_result_is_bitwise(self, rng):
        model = small_model()
        x = rng.normal(size=(64, 96))
        ref = InferenceSession.freeze(model).predict_proba(x)
        faults.arm("worker.kill", times=1)
        session, executor = _sharded_session(model, workers=2, mode="batch")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            session.warm_up()
            out = session.predict_proba(x, batch_size=16)
        try:
            assert np.array_equal(out, ref)
            assert faults.fired("worker.kill") >= 1
            assert executor.fault_stats["faults"] >= 1
            assert executor.fault_stats["respawns"] == 1
            assert executor.fault_stats["retried_calls"] >= 1
            assert not executor.degraded
        finally:
            session.close()

    def test_hung_worker_hits_task_timeout_and_recovers(self, rng):
        model = small_model()
        x = rng.normal(size=(64, 96))
        ref = InferenceSession.freeze(model).predict_proba(x)
        faults.arm("worker.hang", times=1)  # sleeps far past task_timeout
        session, executor = _sharded_session(
            model, workers=2, mode="batch", task_timeout=1.0
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            session.warm_up()
            out = session.predict_proba(x, batch_size=16)
        try:
            assert np.array_equal(out, ref)
            assert executor.fault_stats["faults"] >= 1
        finally:
            session.close()

    def test_persistent_faults_degrade_to_serial(self, rng):
        model = small_model()
        x = rng.normal(size=(64, 96))
        ref = InferenceSession.freeze(model).predict_proba(x)
        faults.arm("worker.kill", times=None)  # every pool attempt dies
        session, executor = _sharded_session(model, workers=2, mode="batch")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            session.warm_up()
            out = session.predict_proba(x, batch_size=16)
        try:
            assert np.array_equal(out, ref)
            assert executor.degraded
            assert executor.fault_stats["degraded"] is True
            assert executor.fault_stats["respawns"] == 1
            # Degraded mode stays serial — and stays correct — with the
            # fault still armed (no pool exists for it to fire in).
            again = session.predict_proba(x, batch_size=16)
            assert np.array_equal(again, ref)
        finally:
            session.close()

    def test_rows_mode_recovers_too(self, rng, monkeypatch):
        monkeypatch.setattr(plan_mod, "MIN_SHARD_BYTES", 0)
        model = small_model()
        x = rng.normal(size=(32, 96))
        ref = InferenceSession.freeze(model).predict_proba(x)
        faults.arm("worker.kill", times=1)
        executor = ShardedExecutor(workers=2, mode="rows", task_timeout=5.0)
        session = InferenceSession.freeze(
            model, executor=executor, row_shards=2
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            session.warm_up()
            out = session.predict_proba(x)
        try:
            assert np.array_equal(out, ref)
            assert executor.fault_stats["respawns"] == 1
        finally:
            session.close()

    def test_no_shm_segments_leak_after_worker_death(self, rng):
        model = small_model()
        x = rng.normal(size=(64, 96))
        ref = InferenceSession.freeze(model).predict_proba(x)
        before = set(glob.glob("/dev/shm/psm_*"))
        faults.arm("worker.kill", times=1)
        session, executor = _sharded_session(
            model, workers=2, mode="batch", transport="shm"
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            session.warm_up()
            out = session.predict_proba(x, batch_size=16)
        assert np.array_equal(out, ref)
        session.close()
        leaked = set(glob.glob("/dev/shm/psm_*")) - before
        assert not leaked, f"leaked shm segments: {leaked}"

    def test_worker_fault_is_internal(self, rng):
        # WorkerFault never escapes to callers: recovery retries or
        # degrades, both returning a correct result.
        model = small_model()
        x = rng.normal(size=(64, 96))
        faults.arm("worker.kill", times=None)
        session, executor = _sharded_session(model, workers=2, mode="batch")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            session.warm_up()
            try:
                session.predict_proba(x, batch_size=16)  # must not raise
            except WorkerFault:
                pytest.fail("WorkerFault escaped the executor")
            finally:
                session.close()


# ----------------------------------------------------------------------
# Server-level faults (shed, corrupt, drop, disconnect, drain)
# ----------------------------------------------------------------------
class TestServerFaults:
    def test_injected_shed_returns_typed_overloaded(self, rng):
        engine = Engine(model=small_model())
        x = rng.normal(size=(4, 96))

        async def scenario(server):
            faults.arm("admission.shed", times=1, retry_after_ms=77.0)
            async with await AsyncServeClient.connect(
                port=server.port, retries=0
            ) as client:
                with pytest.raises(Overloaded) as excinfo:
                    await client.predict_proba(x)
                assert excinfo.value.retry_after_ms == 77.0
                # Budget spent: the same connection now succeeds.
                out = await client.predict_proba(x)
                info = await client.info()
            return out, info

        out, info = serve(engine, scenario)
        ref = InferenceSession.freeze(small_model()).predict_proba(x)
        assert np.array_equal(out, ref)
        assert info["stats"]["shed"] == 1
        assert info["health"]["shed"] == 1

    def test_client_retries_past_shed_transparently(self, rng):
        engine = Engine(model=small_model())
        x = rng.normal(size=(4, 96))

        async def scenario(server):
            faults.arm("admission.shed", times=2, retry_after_ms=5.0)
            async with await AsyncServeClient.connect(
                port=server.port, retries=3, backoff_ms=1.0
            ) as client:
                return await client.predict_proba(x)

        out = serve(engine, scenario)
        ref = InferenceSession.freeze(small_model()).predict_proba(x)
        assert np.array_equal(out, ref)

    def test_rate_limit_sheds_with_retry_after(self, rng):
        engine = Engine(
            model=small_model(), rate_limit_rps=0.5, rate_burst=1
        )
        x = rng.normal(size=(2, 96))

        async def scenario(server):
            async with await AsyncServeClient.connect(
                port=server.port, retries=0
            ) as client:
                first = await client.predict_proba(x)
                with pytest.raises(Overloaded) as excinfo:
                    await client.predict_proba(x)
                info = await client.info()
            return first, excinfo.value, info

        first, exc, info = serve(engine, scenario)
        ref = InferenceSession.freeze(small_model()).predict_proba(x)
        assert np.array_equal(first, ref)
        assert exc.retry_after_ms is not None and exc.retry_after_ms > 0
        assert info["stats"]["rate_limited"] == 1

    def test_queue_exhaustion_sheds_not_hangs(self, rng):
        # A route bounded at 8 rows with a huge flush window: the first
        # request occupies the queue, the second is shed immediately.
        engine = Engine(model=small_model(), max_queue_rows=8)
        x8 = rng.normal(size=(8, 96))
        x1 = rng.normal(size=(1, 96))

        async def scenario(server):
            a = await AsyncServeClient.connect(port=server.port, retries=0)
            b = await AsyncServeClient.connect(port=server.port, retries=0)
            try:
                big = asyncio.ensure_future(a.predict_proba(x8))
                await asyncio.sleep(0.05)  # ensure it is queued
                with pytest.raises(Overloaded):
                    await b.predict_proba(x1)
                out = await big
            finally:
                await a.close()
                await b.close()
            return out

        out = serve(engine, scenario, max_batch=64, max_wait_ms=10_000.0)
        ref = InferenceSession.freeze(small_model()).predict_proba(x8)
        assert np.array_equal(out, ref)

    def test_corrupt_payload_yields_typed_error_not_crash(self, rng):
        engine = Engine(model=small_model())
        x = rng.normal(size=(4, 96))

        async def scenario(server):
            faults.arm("server.corrupt_payload", times=1)
            async with await AsyncServeClient.connect(
                port=server.port, retries=0
            ) as client:
                with pytest.raises(ServingError):
                    await client.predict_proba(x)
                # Same connection still serves clean requests.
                return await client.predict_proba(x)

        out = serve(engine, scenario)
        ref = InferenceSession.freeze(small_model()).predict_proba(x)
        assert np.array_equal(out, ref)

    def test_dropped_connection_is_retried_on_fresh_socket(self, rng):
        engine = Engine(model=small_model())
        x = rng.normal(size=(4, 96))

        async def scenario(server):
            faults.arm("server.drop_connection", times=1)
            async with await AsyncServeClient.connect(
                port=server.port, retries=2, backoff_ms=1.0
            ) as client:
                return await client.predict_proba(x)

        out = serve(engine, scenario)
        ref = InferenceSession.freeze(small_model()).predict_proba(x)
        assert np.array_equal(out, ref)

    def test_dropped_connection_without_retries_is_typed(self, rng):
        engine = Engine(model=small_model())
        x = rng.normal(size=(4, 96))

        async def scenario(server):
            faults.arm("server.drop_connection", times=1)
            async with await AsyncServeClient.connect(
                port=server.port, retries=0
            ) as client:
                with pytest.raises(ServerUnavailable):
                    await client.predict_proba(x)

        serve(engine, scenario)

    def test_delayed_response_still_bitwise(self, rng):
        engine = Engine(model=small_model())
        x = rng.normal(size=(4, 96))

        async def scenario(server):
            faults.arm("server.delay_response", times=1, seconds=0.05)
            async with await AsyncServeClient.connect(
                port=server.port
            ) as client:
                return await client.predict_proba(x)

        out = serve(engine, scenario)
        ref = InferenceSession.freeze(small_model()).predict_proba(x)
        assert np.array_equal(out, ref)

    def test_mid_payload_disconnect_closes_only_that_connection(self, rng):
        # Regression: a client killed mid-payload must not take the
        # server (or any other connection) down with it.
        engine = Engine(model=small_model())
        x = rng.normal(size=(4, 96))

        async def scenario(server):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            # Declare a large frame, send half the header, vanish.
            writer.write(struct.pack(">II", 64, 1024) + b'{"op": "pre')
            await writer.drain()
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:
                pass
            await asyncio.sleep(0.05)
            async with await AsyncServeClient.connect(
                port=server.port
            ) as client:
                out = await client.predict_proba(x)
                info = await client.info()
            return out, info

        out, info = serve(engine, scenario)
        ref = InferenceSession.freeze(small_model()).predict_proba(x)
        assert np.array_equal(out, ref)
        assert info["stats"]["disconnects"] >= 1

    def test_drain_flushes_inflight_bitwise_then_refuses(self, rng):
        engine = Engine(model=small_model())
        x = rng.normal(size=(6, 96))

        async def scenario(server):
            # Huge flush window: without drain the request would sit
            # pending for 10 s.  Drain must flush it immediately.
            a = await AsyncServeClient.connect(port=server.port)
            b = await AsyncServeClient.connect(port=server.port, retries=0)
            try:
                pending = asyncio.ensure_future(a.predict_proba(x))
                await asyncio.sleep(0.05)
                drain_resp = await b.drain()
                assert drain_resp["draining"] is True
                out = await asyncio.wait_for(pending, timeout=5.0)
                with pytest.raises(ServerUnavailable):
                    await b.predict_proba(x)
                info = await b.info()
                assert info["health"]["draining"] is True
                # Once in-flight work empties, drain closes the
                # listener and serve_forever returns.
                if server._drain_task is not None:
                    await asyncio.wait_for(server._drain_task, timeout=5.0)
                assert server._server is None or not server._server.is_serving()
            finally:
                await a.close()
                await b.close()
            return out

        out = serve(engine, scenario, max_batch=64, max_wait_ms=10_000.0)
        ref = InferenceSession.freeze(small_model()).predict_proba(x)
        assert np.array_equal(out, ref)

    def test_info_reports_health_block(self, rng):
        engine = Engine(model=small_model())
        x = rng.normal(size=(2, 96))

        async def scenario(server):
            async with await AsyncServeClient.connect(
                port=server.port
            ) as client:
                await client.predict_proba(x)
                return await client.info()

        info = serve(engine, scenario)
        health = info["health"]
        assert health["draining"] is False
        assert health["degraded"] is False
        assert health["inflight_requests"] >= 0
        assert "max_queue_rows" in health
        route = next(iter(health["queues"].values()))
        assert route["inflight_rows"] == 0


# ----------------------------------------------------------------------
# Client resilience details
# ----------------------------------------------------------------------
class TestClientResilience:
    def test_sync_client_connect_refused_is_typed(self):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            free_port = probe.getsockname()[1]
        with pytest.raises(ServerUnavailable):
            ServeClient(port=free_port, connect_timeout=0.5)

    def test_async_client_connect_refused_is_typed(self):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            free_port = probe.getsockname()[1]

        async def main():
            with pytest.raises(ServerUnavailable):
                await AsyncServeClient.connect(
                    port=free_port, connect_timeout=0.5
                )

        asyncio.run(main())

    def test_sync_client_retries_and_recovers(self, rng):
        engine = Engine(model=small_model())
        x = rng.normal(size=(4, 96))
        result = {}

        async def scenario(server):
            faults.arm("server.drop_connection", times=1)
            loop = asyncio.get_running_loop()

            def blocking():
                with ServeClient(
                    port=server.port, retries=2, backoff_ms=1.0
                ) as client:
                    return client.predict_proba(x)

            result["out"] = await loop.run_in_executor(None, blocking)

        serve(engine, scenario)
        ref = InferenceSession.freeze(small_model()).predict_proba(x)
        assert np.array_equal(result["out"], ref)

    def test_deadline_expired_is_never_retried(self, rng):
        engine = Engine(model=small_model())
        x = rng.normal(size=(2, 96))

        async def scenario(server):
            async with await AsyncServeClient.connect(
                port=server.port, retries=5, backoff_ms=1.0
            ) as client:
                with pytest.raises(DeadlineExpired):
                    await client.predict_proba(x, deadline_ms=0)
                info = await client.info()
            # Exactly one request reached the server: no retry happened.
            assert info["stats"]["expired"] == 1

        serve(engine, scenario, max_wait_ms=30.0)

    def test_retry_policy_honors_server_hint(self):
        from repro.serving.client import _RetryPolicy

        policy = _RetryPolicy(retries=3, backoff_ms=1.0, backoff_max_ms=8.0)
        # The hint is a floor, even above the backoff ceiling.
        assert policy.delay_s(0, 500.0) >= 0.5
        # Without a hint the delay respects the (tiny) ceiling.
        assert policy.delay_s(0, None) <= 0.001 + 1e-9

    def test_recv_exactly_mid_frame_is_server_unavailable(self):
        server_sock = socket.socket()
        server_sock.bind(("127.0.0.1", 0))
        server_sock.listen(1)
        port = server_sock.getsockname()[1]
        client = socket.create_connection(("127.0.0.1", port), timeout=2.0)
        conn, _ = server_sock.accept()
        conn.sendall(b"\x00\x00")  # half a length prefix, then EOF
        conn.close()
        server_sock.close()
        from repro.serving.protocol import read_frame_sync

        try:
            with pytest.raises(ServerUnavailable):
                read_frame_sync(client)
        finally:
            client.close()
