"""StreamPlan: incremental pushes bitwise-equal to the batch plan."""

import numpy as np
import pytest

from repro.embedded import DeployedModel
from repro.engine import Engine, EngineConfig
from repro.exceptions import (
    ConfigurationError,
    DeploymentError,
    ShapeError,
)
from repro.nn import (
    FFTLayer1d,
    LeakyReLU,
    Linear,
    Pointwise1d,
    ReLU,
    Sequential,
    Softmax,
)
from repro.precision import FP32, FP64
from repro.runtime import InferenceSession, compile_stream_plan
from repro.streaming import StreamPlan
from repro.zoo import build_fftnet


def fftnet(depth=3, channels=8, classes=5, in_channels=1, seed=0):
    return build_fftnet(
        channels=channels,
        depth=depth,
        classes=classes,
        in_channels=in_channels,
        rng=np.random.default_rng(seed),
    )


def batch_reference(model, full, precision="fp64"):
    session = InferenceSession.freeze(model, precision=precision)
    return session.predict_proba(full[None])[0]


def push_all(plan, full, sizes):
    """Push ``full`` through a fresh stream in ``sizes``-row chunks."""
    state = plan.open()
    outs = []
    i = 0
    for k in sizes:
        outs.append(plan.push(state, full[i : i + k], proba=True))
        i += k
    assert i == full.shape[0], "sizes must tile the sequence exactly"
    return np.concatenate(outs), state


class TestIncrementalParity:
    def test_single_sample_pushes_bitwise_equal_fp64(self, rng):
        model = fftnet()
        full = rng.standard_normal((33, 1))
        plan = compile_stream_plan(model)
        inc, state = push_all(plan, full, [1] * 33)
        ref = batch_reference(model, full)
        assert inc.dtype == ref.dtype == np.float64
        assert np.array_equal(inc, ref)
        assert state.samples == 33

    @pytest.mark.parametrize("sizes", [
        [7, 1, 1, 24],
        [1, 2, 3, 4, 5, 6, 7, 5],
        [33],
        [32, 1],
        [1, 31, 1],
    ])
    def test_ragged_pushes_bitwise_equal(self, rng, sizes):
        model = fftnet()
        full = rng.standard_normal((sum(sizes), 1))
        inc, _ = push_all(compile_stream_plan(model), full, sizes)
        assert np.array_equal(inc, batch_reference(model, full))

    @pytest.mark.parametrize("length", [1, 2, 3, 7, 8, 9, 31])
    def test_odd_lengths(self, rng, length):
        # Lengths below, at, and beyond the receptive field (8 here).
        model = fftnet()
        full = rng.standard_normal((length, 1))
        inc, _ = push_all(compile_stream_plan(model), full, [length])
        assert np.array_equal(inc, batch_reference(model, full))

    @pytest.mark.parametrize("depth", [1, 2, 4, 5])
    def test_dilation_sweeps(self, rng, depth):
        model = fftnet(depth=depth)
        full = rng.standard_normal((50, 1))
        inc, _ = push_all(
            compile_stream_plan(model), full, [3, 11, 1, 35]
        )
        assert np.array_equal(inc, batch_reference(model, full))

    def test_fp32_parity(self, rng):
        # seq_matmul is row-stable at every precision, so fp32 parity
        # is bitwise too (far inside the documented 1e-5 envelope).
        model = fftnet()
        full = rng.standard_normal((40, 1))
        plan = compile_stream_plan(model, FP32)
        inc, _ = push_all(plan, full, [9, 13, 18])
        ref = batch_reference(model, full, "fp32")
        assert inc.dtype == ref.dtype == np.float32
        np.testing.assert_allclose(inc, ref, atol=1e-5)
        assert np.array_equal(inc, ref)

    def test_multichannel_input(self, rng):
        model = fftnet(in_channels=3)
        full = rng.standard_normal((21, 3))
        inc, _ = push_all(compile_stream_plan(model), full, [4, 17])
        assert np.array_equal(inc, batch_reference(model, full))

    def test_leaky_relu_and_explicit_softmax(self, rng):
        rng0 = np.random.default_rng(2)
        model = Sequential(
            FFTLayer1d(1, 6, 4, rng=rng0),
            LeakyReLU(0.1),
            FFTLayer1d(6, 6, 1, rng=rng0),
            Pointwise1d(6, 4, rng=rng0),
            Softmax(),
        )
        full = rng.standard_normal((17, 1))
        plan = compile_stream_plan(model)
        assert plan.ends_with_softmax
        inc, _ = push_all(plan, full, [5, 12])
        assert np.array_equal(inc, batch_reference(model, full))


class TestFusedMultiStream:
    def test_push_many_bitwise_per_stream(self, rng):
        model = fftnet()
        plan = compile_stream_plan(model)
        fulls = [rng.standard_normal((30, 1)) for _ in range(5)]
        refs = [batch_reference(model, f) for f in fulls]
        states = [plan.open() for _ in fulls]
        outs = [[] for _ in fulls]
        # Ragged, unequal chunk sizes per stream per fused step.
        cuts = [
            [1, 4, 9, 16],
            [16, 9, 4, 1],
            [7, 7, 7, 9],
            [2, 2, 2, 24],
            [29, 1, 0, 0],
        ]
        offsets = [0] * 5
        for step in range(4):
            idx = [i for i in range(5) if cuts[i][step] > 0]
            chunks = [
                fulls[i][offsets[i] : offsets[i] + cuts[i][step]]
                for i in idx
            ]
            fused = plan.push_many(
                [states[i] for i in idx], chunks, proba=True
            )
            for j, i in enumerate(idx):
                outs[i].append(fused[j])
                offsets[i] += cuts[i][step]
        for i in range(5):
            assert np.array_equal(np.concatenate(outs[i]), refs[i])

    def test_fused_equals_solo(self, rng):
        # A stream's rows are identical whether its push ran alone or
        # fused with other streams' rows in one call.
        model = fftnet()
        plan = compile_stream_plan(model)
        full = rng.standard_normal((12, 1))
        solo_state = plan.open()
        solo = plan.push(solo_state, full, proba=True)
        fused_state = plan.open()
        noise_state = plan.open()
        fused = plan.push_many(
            [noise_state, fused_state],
            [rng.standard_normal((7, 1)), full],
            proba=True,
        )
        assert np.array_equal(fused[1], solo)

    def test_push_many_rejects_duplicate_states(self, rng):
        plan = compile_stream_plan(fftnet())
        state = plan.open()
        chunk = rng.standard_normal((2, 1))
        with pytest.raises(DeploymentError):
            plan.push_many([state, state], [chunk, chunk])

    def test_push_many_rejects_foreign_state(self, rng):
        plan_a = compile_stream_plan(fftnet())
        plan_b = compile_stream_plan(fftnet(seed=9))
        with pytest.raises(DeploymentError):
            plan_a.push(plan_b.open(), rng.standard_normal((2, 1)))

    def test_push_many_length_mismatch(self, rng):
        plan = compile_stream_plan(fftnet())
        with pytest.raises(ShapeError):
            plan.push_many([plan.open()], [])


class TestSources:
    def test_compile_from_artifact_records(self, rng, tmp_path):
        model = fftnet()
        full = rng.standard_normal((25, 1))
        deployed = DeployedModel.from_model(model)
        path = tmp_path / "fftnet.npz"
        deployed.save(path)
        loaded = DeployedModel.load(path)
        plan = compile_stream_plan(loaded)
        inc, _ = push_all(plan, full, [6, 19])
        # Artifacts persist weights at fp32, so the parity reference is
        # the artifact's own frozen session, not the original model.
        ref = Engine(model=loaded).session().predict_proba(full[None])[0]
        assert np.array_equal(inc, ref)

    def test_non_streamable_model_rejected(self):
        rng0 = np.random.default_rng(0)
        dense = Sequential(Linear(8, 4, rng=rng0), ReLU())
        with pytest.raises(DeploymentError, match="not streamable"):
            compile_stream_plan(dense)

    def test_describe_and_geometry(self):
        plan = compile_stream_plan(fftnet(depth=3, channels=8, classes=5))
        # Dilations 4, 2, 1 -> receptive field 1 + 7 = 8.
        assert plan.receptive_field == 8
        assert plan.in_channels == 1
        assert plan.out_channels == 5
        described = plan.describe()
        assert described[0].startswith("fft1d(1->8,d=4)")
        assert described[-1].startswith("pointwise1d(")
        # Per-stream history: one (dilation, in_c) fp64 buffer per tap.
        assert plan.state_bytes == (4 * 1 + 2 * 8 + 1 * 8) * 8


class TestStreamState:
    def test_state_accounting_and_reset(self, rng):
        plan = compile_stream_plan(fftnet())
        state = plan.open()
        assert state.samples == 0 and state.pushes == 0
        assert state.state_bytes == plan.state_bytes
        plan.push(state, rng.standard_normal((5, 1)))
        assert state.samples == 5 and state.pushes == 1
        state.reset()
        assert state.samples == 0 and state.pushes == 0
        for buffer in state.buffers:
            if buffer is not None:
                assert not buffer.any()

    def test_reset_state_replays_from_scratch(self, rng):
        model = fftnet()
        plan = compile_stream_plan(model)
        full = rng.standard_normal((14, 1))
        state = plan.open()
        plan.push(state, rng.standard_normal((9, 1)), proba=True)
        state.reset()
        out = plan.push(state, full, proba=True)
        assert np.array_equal(out, batch_reference(model, full))

    def test_bad_chunk_shapes(self, rng):
        plan = compile_stream_plan(fftnet())
        state = plan.open()
        with pytest.raises(ShapeError):
            plan.push(state, rng.standard_normal((3, 2)))  # wrong channels
        # An empty chunk is legal at the plan layer (the serving layer
        # rejects it before it gets here): zero rows out, no advance.
        out = plan.push(state, np.empty((0, 1)), proba=True)
        assert out.shape == (0, plan.out_channels)

    def test_1d_chunk_promoted_for_single_channel(self, rng):
        model = fftnet()
        plan = compile_stream_plan(model)
        full = rng.standard_normal(11)
        out = plan.push(plan.open(), full, proba=True)
        assert np.array_equal(out, batch_reference(model, full[:, None]))


class TestEngineStreamPlan:
    def test_plan_pooled_per_route(self):
        engine = Engine(model=fftnet())
        assert engine.stream_plan() is engine.stream_plan()

    def test_adopted_session_not_streamable(self):
        session = InferenceSession.freeze(fftnet())
        engine = Engine.from_session(session)
        with pytest.raises(ConfigurationError, match="frozen session"):
            engine.stream_plan()

    def test_stream_plan_matches_engine_session(self, rng):
        engine = Engine(model=fftnet())
        full = rng.standard_normal((19, 1))
        plan = engine.stream_plan()
        out = plan.push(plan.open(), full, proba=True)
        assert np.array_equal(
            out, engine.session().predict_proba(full[None])[0]
        )

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            EngineConfig(models={"m": fftnet()}, max_streams=0)
        with pytest.raises(ConfigurationError):
            EngineConfig(models={"m": fftnet()}, max_stream_state_bytes=0)
