"""Tests for the inputs parser (paper Fig. 4, module 3)."""

import numpy as np
import pytest

from repro.exceptions import ParseError
from repro.io import load_inputs, save_inputs, validate_inputs


class TestNpzRoundTrip:
    def test_inputs_and_labels(self, rng, tmp_path):
        path = tmp_path / "data.npz"
        x = rng.normal(size=(5, 4))
        y = np.array([0, 1, 2, 0, 1])
        save_inputs(path, x, y)
        loaded_x, loaded_y = load_inputs(path)
        assert np.allclose(loaded_x, x)
        assert np.array_equal(loaded_y, y)

    def test_inputs_only(self, rng, tmp_path):
        path = tmp_path / "data.npz"
        save_inputs(path, rng.normal(size=(3, 2)))
        _, labels = load_inputs(path)
        assert labels is None

    def test_save_rejects_wrong_suffix(self, rng, tmp_path):
        with pytest.raises(ParseError):
            save_inputs(tmp_path / "data.txt", rng.normal(size=(2, 2)))

    def test_load_rejects_missing_inputs_key(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, other=np.zeros(3))
        with pytest.raises(ParseError):
            load_inputs(path)


class TestOtherFormats:
    def test_npy(self, rng, tmp_path):
        path = tmp_path / "data.npy"
        x = rng.normal(size=(4, 3))
        np.save(path, x)
        loaded, labels = load_inputs(path)
        assert np.allclose(loaded, x)
        assert labels is None

    def test_csv_with_labels(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("f0,f1,label\n1.0,2.0,0\n3.0,4.0,1\n")
        x, y = load_inputs(path)
        assert np.allclose(x, [[1, 2], [3, 4]])
        assert np.array_equal(y, [0, 1])

    def test_csv_without_header(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("1.0,2.0\n3.0,4.0\n")
        x, y = load_inputs(path)
        assert x.shape == (2, 2)
        assert y is None

    def test_missing_file(self, tmp_path):
        with pytest.raises(ParseError):
            load_inputs(tmp_path / "nothing.npz")

    def test_unknown_suffix(self, tmp_path):
        path = tmp_path / "data.bin"
        path.write_bytes(b"\x00")
        with pytest.raises(ParseError):
            load_inputs(path)


class TestValidateInputs:
    def test_batch_passthrough(self, rng):
        x = rng.normal(size=(4, 8))
        assert validate_inputs(x, (8,)).shape == (4, 8)

    def test_single_sample_promoted(self, rng):
        assert validate_inputs(rng.normal(size=8), (8,)).shape == (1, 8)

    def test_image_shape(self, rng):
        x = rng.normal(size=(2, 3, 8, 8))
        assert validate_inputs(x, (3, 8, 8)).shape == (2, 3, 8, 8)

    def test_wrong_shape_raises(self, rng):
        with pytest.raises(ParseError):
            validate_inputs(rng.normal(size=(4, 7)), (8,))

    def test_range_check(self, rng):
        x = rng.uniform(0, 1, size=(3, 4))
        validate_inputs(x, (4,), value_range=(0.0, 1.0))
        with pytest.raises(ParseError):
            validate_inputs(x + 10, (4,), value_range=(0.0, 1.0))
