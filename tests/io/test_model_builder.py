"""Tests for building models from architecture specs."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.io import build_model_from_string, parse_architecture, build_model
from repro.nn import (
    BlockCirculantConv2d,
    BlockCirculantLinear,
    Conv2d,
    Flatten,
    Linear,
    MaxPool2d,
    ReLU,
    Tensor,
)


class TestBuildModel:
    def test_fc_chain_layers(self, rng):
        model = build_model_from_string("256-128CFb64-128CFb64-10F", rng=rng)
        kinds = [type(layer) for layer in model]
        assert kinds == [
            BlockCirculantLinear, ReLU, BlockCirculantLinear, ReLU, Linear
        ]

    def test_final_layer_has_no_relu(self, rng):
        model = build_model_from_string("8-4F-2F", rng=rng)
        assert not isinstance(model[-1], ReLU)

    def test_conv_chain_with_flatten(self, rng):
        model = build_model_from_string("3x16x16-8Conv3-MP2-16CFb8-10F", rng=rng)
        kinds = [type(layer) for layer in model]
        assert Flatten in kinds
        assert kinds.index(Flatten) > kinds.index(MaxPool2d)

    def test_forward_shapes(self, rng):
        model = build_model_from_string(
            "3x16x16-8Conv3-MP2-4CConv3b2-16F-10F", rng=rng
        )
        out = model(Tensor(rng.normal(size=(2, 3, 16, 16))))
        assert out.shape == (2, 10)

    def test_arch1_equivalent_string(self, rng):
        # Paper Arch. 1 expressed in the extended notation.
        model = build_model_from_string("256-128CFb64-128CFb64-10F", rng=rng)
        out = model(Tensor(rng.normal(size=(4, 256))))
        assert out.shape == (4, 10)

    def test_arch2_equivalent_string(self, rng):
        model = build_model_from_string("121-64CFb32-64CFb32-10F", rng=rng)
        out = model(Tensor(rng.normal(size=(4, 121))))
        assert out.shape == (4, 10)

    def test_conv_geometry_validation(self, rng):
        with pytest.raises(ConfigurationError):
            build_model_from_string("3x4x4-8Conv5-10F", rng=rng)

    def test_pool_geometry_validation(self, rng):
        with pytest.raises(ConfigurationError):
            build_model_from_string("3x4x4-8Conv3-MP4-10F", rng=rng)

    def test_bc_conv_built_with_block(self, rng):
        model = build_model_from_string("4x8x8-8CConv3b4-10F", rng=rng)
        assert isinstance(model[0], BlockCirculantConv2d)
        assert model[0].block_size == 4

    def test_dense_conv_built(self, rng):
        model = build_model_from_string("3x8x8-8Conv3-10F", rng=rng)
        assert isinstance(model[0], Conv2d)

    def test_deterministic_with_seed(self):
        a = build_model_from_string("16-8F-2F", rng=np.random.default_rng(0))
        b = build_model_from_string("16-8F-2F", rng=np.random.default_rng(0))
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            assert np.array_equal(pa.data, pb.data)

    def test_build_from_spec_object(self, rng):
        spec = parse_architecture("8-4F-2F")
        model = build_model(spec, rng=rng)
        assert model(Tensor(rng.normal(size=(1, 8)))).shape == (1, 2)
