"""Tests for the architecture-string parser (paper Fig. 4 notation)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ParseError
from repro.io import format_architecture, parse_architecture


class TestInputSpecs:
    def test_flat_input(self):
        spec = parse_architecture("256-10F")
        assert spec.input_shape == (256,)
        assert spec.batch_size is None
        assert not spec.is_convolutional

    def test_chw_input(self):
        spec = parse_architecture("3x32x32-10F")
        assert spec.input_shape == (3, 32, 32)
        assert spec.is_convolutional

    def test_batched_input_records_batch(self):
        # The paper's own Arch. 3 string begins "128x3x32x32".
        spec = parse_architecture("128x3x32x32-10F")
        assert spec.batch_size == 128
        assert spec.input_shape == (3, 32, 32)

    def test_rejects_two_dims(self):
        with pytest.raises(ParseError):
            parse_architecture("32x32-10F")

    def test_rejects_zero_dims(self):
        with pytest.raises(ParseError):
            parse_architecture("0x3x4-10F")

    def test_rejects_garbage_input(self):
        with pytest.raises(ParseError):
            parse_architecture("abc-10F")


class TestLayerTokens:
    def test_paper_arch3_string(self):
        spec = parse_architecture(
            "128x3x32x32-64Conv3-64Conv3-128Conv3-128Conv3-512F-1024F-1024F-10F"
        )
        kinds = [layer.kind for layer in spec.layers]
        assert kinds == ["conv"] * 4 + ["fc"] * 4
        assert spec.layers[0].units == 64
        assert spec.layers[0].kernel == 3
        assert spec.layers[-1].units == 10

    def test_block_circulant_fc(self):
        spec = parse_architecture("256-128CFb64-10F")
        assert spec.layers[0].kind == "bc_fc"
        assert spec.layers[0].units == 128
        assert spec.layers[0].block == 64

    def test_block_circulant_conv(self):
        spec = parse_architecture("3x16x16-32CConv3b8-10F")
        assert spec.layers[0].kind == "bc_conv"
        assert spec.layers[0].block == 8

    def test_pooling(self):
        spec = parse_architecture("3x16x16-8Conv3-MP2-10F")
        assert spec.layers[1].kind == "maxpool"
        assert spec.layers[1].kernel == 2
        spec = parse_architecture("3x16x16-8Conv3-AP2-10F")
        assert spec.layers[1].kind == "avgpool"

    def test_unknown_token_raises(self):
        with pytest.raises(ParseError):
            parse_architecture("256-128Q-10F")

    def test_conv_on_flat_input_raises(self):
        with pytest.raises(ParseError):
            parse_architecture("256-64Conv3-10F")

    def test_pool_on_flat_input_raises(self):
        with pytest.raises(ParseError):
            parse_architecture("256-MP2-10F")

    def test_final_layer_must_be_fc(self):
        with pytest.raises(ParseError):
            parse_architecture("3x8x8-16Conv3")
        with pytest.raises(ParseError):
            parse_architecture("3x8x8-16Conv3-MP2")

    def test_conv_after_fc_raises(self):
        with pytest.raises(ParseError):
            parse_architecture("3x8x8-16F-16Conv3-10F")

    def test_empty_string_raises(self):
        with pytest.raises(ParseError):
            parse_architecture("")
        with pytest.raises(ParseError):
            parse_architecture("256")


class TestFormatRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            "256-128CFb64-128CFb64-10F",
            "121-64CFb32-64CFb32-10F",
            "3x32x32-64Conv3-MP2-128CConv3b32-AP2-512CFb128-10F",
            "128x3x32x32-64Conv3-64Conv3-128Conv3-128Conv3-512F-1024F-1024F-10F",
        ],
    )
    def test_round_trip(self, text):
        assert format_architecture(parse_architecture(text)) == text

    @given(
        st.lists(
            st.sampled_from(["64F", "32CFb8", "128F", "16CFb4"]), min_size=1,
            max_size=5
        ),
        st.integers(1, 512),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_fc_chains_round_trip(self, hidden, input_size):
        text = "-".join([str(input_size)] + hidden + ["10F"])
        assert format_architecture(parse_architecture(text)) == text
