"""Tests for parameter serialization (checkpoints and FFT-domain export)."""

import numpy as np
import pytest

from repro.exceptions import ParseError
from repro.io import (
    build_model_from_string,
    export_fft_weights,
    import_fft_weights,
    load_weights,
    save_weights,
)
from repro.nn import Linear, Sequential, Tensor


@pytest.fixture
def model(rng):
    return build_model_from_string("16-8CFb4-8CFb4-4F", rng=rng)


class TestCheckpointRoundTrip:
    def test_round_trip_preserves_outputs(self, rng, model, tmp_path):
        path = tmp_path / "checkpoint.npz"
        save_weights(model, path)
        other = build_model_from_string("16-8CFb4-8CFb4-4F",
                                        rng=np.random.default_rng(99))
        load_weights(other, path)
        x = rng.normal(size=(3, 16))
        assert np.allclose(model(Tensor(x)).data, other(Tensor(x)).data)

    def test_load_into_wrong_architecture_raises(self, rng, model, tmp_path):
        path = tmp_path / "checkpoint.npz"
        save_weights(model, path)
        wrong = build_model_from_string("16-8F-4F", rng=rng)
        with pytest.raises((KeyError, ValueError)):
            load_weights(wrong, path)

    def test_rejects_foreign_npz(self, rng, model, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, something=np.zeros(3))
        with pytest.raises(ParseError):
            load_weights(model, path)

    def test_save_requires_parameters(self, tmp_path):
        from repro.nn import ReLU

        with pytest.raises(ValueError):
            save_weights(Sequential(ReLU()), tmp_path / "empty.npz")


class TestFftExport:
    def test_spectra_shapes(self, model):
        spectra = export_fft_weights(model)
        assert len(spectra) == 2  # two block-circulant layers
        for value in spectra.values():
            assert value.ndim == 3
            assert value.shape[-1] == 4 // 2 + 1
            assert np.iscomplexobj(value)

    def test_round_trip_restores_weights(self, rng, model):
        spectra = export_fft_weights(model)
        other = build_model_from_string(
            "16-8CFb4-8CFb4-4F", rng=np.random.default_rng(1)
        )
        # Restore non-BC params first so outputs can match exactly.
        other.load_state_dict(model.state_dict())
        other.weight_before = None
        import_fft_weights(other, spectra)
        x = rng.normal(size=(2, 16))
        assert np.allclose(model(Tensor(x)).data, other(Tensor(x)).data, atol=1e-10)

    def test_key_mismatch_raises(self, rng, model):
        spectra = export_fft_weights(model)
        spectra["bogus.weight"] = next(iter(spectra.values()))
        with pytest.raises(ParseError):
            import_fft_weights(model, spectra)

    def test_missing_key_raises(self, model):
        spectra = export_fft_weights(model)
        spectra.pop(next(iter(spectra)))
        with pytest.raises(ParseError):
            import_fft_weights(model, spectra)

    def test_dense_model_has_no_spectra(self, rng):
        dense = Sequential(Linear(4, 2, rng=rng))
        with pytest.raises(ValueError):
            export_fft_weights(dense)

    def test_export_is_half_spectrum_storage(self, model):
        # The paper's claim: storing FFT(w) keeps O(n) numbers per block.
        spectra = export_fft_weights(model)
        for key, value in spectra.items():
            p, q, bins = value.shape
            assert bins == 3  # block 4 -> 3 bins
            # 3 complex numbers = 6 reals >= 4 reals of w, but per-block
            # storage stays O(b); with conjugate symmetry bins 0 and b/2
            # are real, so the true information content is exactly b reals.
            assert np.allclose(value[..., 0].imag, 0.0, atol=1e-12)
            assert np.allclose(value[..., -1].imag, 0.0, atol=1e-12)
