"""Tests for twiddle factors, bit reversal, and size helpers."""

import numpy as np
import pytest

from repro.fft import (
    bit_reversal_permutation,
    is_power_of_two,
    next_power_of_two,
    smallest_prime_factor,
    twiddle_factors,
)


class TestTwiddleFactors:
    def test_forward_values(self):
        factors = twiddle_factors(4)
        expected = np.exp(-2j * np.pi * np.arange(4) / 4)
        assert np.allclose(factors, expected)

    def test_inverse_is_conjugate(self):
        forward = twiddle_factors(8)
        inverse = twiddle_factors(8, inverse=True)
        assert np.allclose(inverse, np.conj(forward))

    def test_unit_magnitude(self):
        assert np.allclose(np.abs(twiddle_factors(13)), 1.0)

    def test_first_factor_is_one(self):
        for n in (1, 2, 5, 16):
            assert twiddle_factors(n)[0] == pytest.approx(1.0)

    def test_cached_result_is_readonly(self):
        factors = twiddle_factors(8)
        with pytest.raises((ValueError, RuntimeError)):
            factors[0] = 0.0

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            twiddle_factors(0)

    def test_nth_roots_of_unity(self):
        n = 12
        factors = twiddle_factors(n)
        assert np.allclose(factors**n, 1.0)


class TestBitReversal:
    def test_size_8(self):
        assert list(bit_reversal_permutation(8)) == [0, 4, 2, 6, 1, 5, 3, 7]

    def test_size_1_and_2(self):
        assert list(bit_reversal_permutation(1)) == [0]
        assert list(bit_reversal_permutation(2)) == [0, 1]

    def test_is_permutation(self):
        perm = bit_reversal_permutation(64)
        assert sorted(perm) == list(range(64))

    def test_is_involution(self):
        perm = bit_reversal_permutation(32)
        assert np.array_equal(perm[perm], np.arange(32))

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            bit_reversal_permutation(12)


class TestSizeHelpers:
    @pytest.mark.parametrize("n,expected", [(1, True), (2, True), (3, False),
                                            (16, True), (24, False), (0, False),
                                            (-4, False)])
    def test_is_power_of_two(self, n, expected):
        assert is_power_of_two(n) is expected

    @pytest.mark.parametrize("n,expected", [(1, 1), (2, 2), (3, 4), (17, 32),
                                            (64, 64), (100, 128)])
    def test_next_power_of_two(self, n, expected):
        assert next_power_of_two(n) == expected

    def test_next_power_of_two_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            next_power_of_two(0)

    @pytest.mark.parametrize("n,expected", [(2, 2), (3, 3), (4, 2), (9, 3),
                                            (15, 3), (49, 7), (97, 97)])
    def test_smallest_prime_factor(self, n, expected):
        assert smallest_prime_factor(n) == expected

    def test_smallest_prime_factor_rejects_small(self):
        with pytest.raises(ValueError):
            smallest_prime_factor(1)
