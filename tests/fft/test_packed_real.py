"""Pure-backend packed (two-for-one) real transforms vs numpy.fft."""

import numpy as np
import pytest

from repro.fft import irfft, rfft
from repro.fft.backend import use_backend

LENGTHS = [1, 2, 3, 4, 5, 6, 8, 10, 12, 16, 17, 30, 64, 100, 127, 128, 256]
BATCHES = [(), (3,), (2, 4)]


@pytest.mark.parametrize("n", LENGTHS)
@pytest.mark.parametrize("batch", BATCHES)
class TestPackedRfft:
    def test_matches_numpy(self, n, batch, rng):
        x = rng.normal(size=batch + (n,))
        with use_backend("pure"):
            result = rfft(x)
        assert result.shape == batch + (n // 2 + 1,)
        assert np.allclose(result, np.fft.rfft(x), atol=1e-10)

    def test_roundtrip(self, n, batch, rng):
        x = rng.normal(size=batch + (n,))
        with use_backend("pure"):
            back = irfft(rfft(x), n=n)
        assert np.allclose(back, x, atol=1e-10)


@pytest.mark.parametrize("n", LENGTHS)
class TestPackedIrfft:
    def test_matches_numpy_on_hermitian_spectra(self, n, rng):
        spectrum = np.fft.rfft(rng.normal(size=(4, n)))
        with use_backend("pure"):
            result = irfft(spectrum, n=n)
        assert np.allclose(result, np.fft.irfft(spectrum, n=n), atol=1e-10)

    def test_matches_numpy_on_arbitrary_spectra(self, n, rng):
        # numpy discards the imaginary parts of the DC and Nyquist bins;
        # the packed unpacking must follow the same convention.
        bins = n // 2 + 1
        spectrum = rng.normal(size=(2, bins)) + 1j * rng.normal(size=(2, bins))
        with use_backend("pure"):
            result = irfft(spectrum, n=n)
        assert np.allclose(result, np.fft.irfft(spectrum, n=n), atol=1e-10)


class TestPackedEdgeCases:
    def test_rfft_rejects_complex_input(self):
        with use_backend("pure"):
            with pytest.raises(TypeError):
                rfft(np.ones(8, dtype=np.complex128))

    def test_axis_and_padding_still_work(self, rng):
        x = rng.normal(size=(5, 12))
        with use_backend("pure"):
            padded = rfft(x, n=16, axis=0)
        assert np.allclose(padded, np.fft.rfft(x, n=16, axis=0), atol=1e-10)

    def test_odd_length_fallback_matches(self, rng):
        x = rng.normal(size=(3, 9))
        with use_backend("pure"):
            assert np.allclose(rfft(x), np.fft.rfft(x), atol=1e-10)
            assert np.allclose(irfft(rfft(x), n=9), x, atol=1e-10)
