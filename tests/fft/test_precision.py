"""Dtype-following transforms: complex64 in, complex64 through, float32 out."""

import numpy as np
import pytest

from repro.fft import fft, ifft, irfft, rfft
from repro.fft.backend import use_backend
from repro.fft.bluestein import fft_bluestein
from repro.fft.cooley_tukey import fft_radix2

BACKENDS = ("numpy", "pure")
# Power-of-two (radix-2), even composite, odd, and prime lengths.
LENGTHS = (8, 12, 64, 100, 101, 121, 128)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("n", LENGTHS)
class TestSinglePrecisionContract:
    def test_rfft_float32_gives_complex64(self, rng, backend, n):
        x = rng.normal(size=(3, n)).astype(np.float32)
        with use_backend(backend):
            spectrum = rfft(x)
        assert spectrum.dtype == np.complex64
        ref = np.fft.rfft(x.astype(np.float64))
        assert np.abs(spectrum - ref).max() < 1e-3 * max(1, n // 8)

    def test_irfft_complex64_gives_float32_roundtrip(self, rng, backend, n):
        x = rng.normal(size=(3, n)).astype(np.float32)
        with use_backend(backend):
            back = irfft(rfft(x), n=n)
        assert back.dtype == np.float32
        assert np.abs(back - x).max() < 1e-4

    def test_fft_ifft_complex64(self, rng, backend, n):
        x = (
            rng.normal(size=(2, n)) + 1j * rng.normal(size=(2, n))
        ).astype(np.complex64)
        with use_backend(backend):
            spectrum = fft(x)
            back = ifft(spectrum)
        assert spectrum.dtype == np.complex64
        assert back.dtype == np.complex64
        assert np.abs(back - x).max() < 1e-4

    def test_float64_unchanged(self, rng, backend, n):
        x = rng.normal(size=(2, n))
        with use_backend(backend):
            spectrum = rfft(x)
            back = irfft(spectrum, n=n)
        assert spectrum.dtype == np.complex128
        assert back.dtype == np.float64
        assert np.abs(spectrum - np.fft.rfft(x)).max() < 1e-8


class TestPureKernelsNative:
    """The pure kernels themselves stay in complex64 — no internal widening."""

    def test_radix2_native_complex64(self, rng):
        x = (rng.normal(size=(2, 64)) + 1j * rng.normal(size=(2, 64))).astype(
            np.complex64
        )
        out = fft_radix2(x)
        assert out.dtype == np.complex64
        assert np.abs(out - np.fft.fft(x.astype(np.complex128))).max() < 1e-3

    def test_bluestein_native_complex64(self, rng):
        x = (rng.normal(size=(2, 37)) + 1j * rng.normal(size=(2, 37))).astype(
            np.complex64
        )
        out = fft_bluestein(x)
        assert out.dtype == np.complex64
        assert np.abs(out - np.fft.fft(x.astype(np.complex128))).max() < 1e-3

    def test_radix2_float64_stays_complex128(self, rng):
        assert fft_radix2(rng.normal(size=(2, 32))).dtype == np.complex128
