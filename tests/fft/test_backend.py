"""Tests for FFT backend selection."""

import pytest

from repro.exceptions import BackendError
from repro.fft import available_backends, get_backend, set_backend, use_backend


class TestBackendSelection:
    def test_default_is_numpy(self):
        assert get_backend() == "numpy"

    def test_available_backends(self):
        assert set(available_backends()) == {"numpy", "pure"}

    def test_set_and_restore(self):
        set_backend("pure")
        try:
            assert get_backend() == "pure"
        finally:
            set_backend("numpy")

    def test_rejects_unknown(self):
        with pytest.raises(BackendError):
            set_backend("fftw")

    def test_context_manager_restores(self):
        assert get_backend() == "numpy"
        with use_backend("pure"):
            assert get_backend() == "pure"
        assert get_backend() == "numpy"

    def test_context_manager_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with use_backend("pure"):
                raise RuntimeError("boom")
        assert get_backend() == "numpy"

    def test_nested_contexts(self):
        with use_backend("pure"):
            with use_backend("numpy"):
                assert get_backend() == "numpy"
            assert get_backend() == "pure"
        assert get_backend() == "numpy"

    def test_backend_error_is_value_error(self):
        # Callers catching ValueError keep working.
        with pytest.raises(ValueError):
            set_backend("nonsense")
