"""Tests for FFT-based convolution and correlation (paper Eqn. 3 engine)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fft import (
    circular_convolve,
    circular_convolve_direct,
    circular_correlate,
    circular_correlate_direct,
    convolve2d,
    convolve2d_direct,
    linear_convolve,
    linear_convolve_direct,
    overlap_add_convolve,
    use_backend,
)


class TestCircularConvolve:
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8, 12])
    def test_matches_direct(self, rng, n):
        a, b = rng.normal(size=n), rng.normal(size=n)
        assert np.allclose(circular_convolve(a, b), circular_convolve_direct(a, b))

    def test_pure_backend(self, rng):
        a, b = rng.normal(size=11), rng.normal(size=11)
        with use_backend("pure"):
            assert np.allclose(
                circular_convolve(a, b), circular_convolve_direct(a, b)
            )

    def test_commutative(self, rng):
        a, b = rng.normal(size=9), rng.normal(size=9)
        assert np.allclose(circular_convolve(a, b), circular_convolve(b, a))

    def test_identity_kernel(self, rng):
        x = rng.normal(size=8)
        delta = np.zeros(8)
        delta[0] = 1.0
        assert np.allclose(circular_convolve(delta, x), x)

    def test_shift_kernel_rotates(self, rng):
        x = rng.normal(size=8)
        shift = np.zeros(8)
        shift[1] = 1.0
        assert np.allclose(circular_convolve(shift, x), np.roll(x, 1))

    def test_real_inputs_produce_real_output(self, rng):
        result = circular_convolve(rng.normal(size=6), rng.normal(size=6))
        assert result.dtype.kind == "f"

    def test_complex_inputs(self, rng):
        a = rng.normal(size=6) + 1j * rng.normal(size=6)
        b = rng.normal(size=6)
        assert np.allclose(circular_convolve(a, b), circular_convolve_direct(a, b))

    def test_length_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            circular_convolve(rng.normal(size=4), rng.normal(size=6))

    def test_explicit_length_pads(self, rng):
        a, b = rng.normal(size=3), rng.normal(size=3)
        result = circular_convolve(a, b, n=8)
        assert np.allclose(result[:5], np.convolve(a, b))

    def test_batched_broadcast(self, rng):
        a = rng.normal(size=(4, 8))
        b = rng.normal(size=8)
        batch = circular_convolve(a, b)
        for i in range(4):
            assert np.allclose(batch[i], circular_convolve(a[i], b))

    @given(st.integers(1, 24), st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_property_matches_direct(self, n, seed):
        local = np.random.default_rng(seed)
        a, b = local.normal(size=n), local.normal(size=n)
        assert np.allclose(circular_convolve(a, b), circular_convolve_direct(a, b))


class TestCircularCorrelate:
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8, 12])
    def test_matches_direct(self, rng, n):
        a, b = rng.normal(size=n), rng.normal(size=n)
        assert np.allclose(circular_correlate(a, b), circular_correlate_direct(a, b))

    def test_autocorrelation_peak_at_zero(self, rng):
        x = rng.normal(size=16)
        corr = circular_correlate(x, x)
        assert corr.argmax() == 0
        assert corr[0] == pytest.approx(np.sum(x * x))

    def test_transpose_relation(self, rng):
        # correlate(w, y) realizes C(w)^T y (the training-path identity).
        from repro.structured import CirculantMatrix

        w, y = rng.normal(size=7), rng.normal(size=7)
        dense = CirculantMatrix(w).to_dense()
        assert np.allclose(circular_correlate(w, y), dense.T @ y)

    def test_complex_conjugation(self, rng):
        a = rng.normal(size=5) + 1j * rng.normal(size=5)
        b = rng.normal(size=5) + 1j * rng.normal(size=5)
        assert np.allclose(circular_correlate(a, b), circular_correlate_direct(a, b))


class TestLinearConvolve:
    def test_matches_numpy(self, rng):
        a, b = rng.normal(size=9), rng.normal(size=4)
        assert np.allclose(linear_convolve(a, b), np.convolve(a, b))

    def test_direct_matches_numpy(self, rng):
        a, b = rng.normal(size=6), rng.normal(size=5)
        assert np.allclose(linear_convolve_direct(a, b), np.convolve(a, b))

    def test_output_length(self, rng):
        assert linear_convolve(rng.normal(size=7), rng.normal(size=3)).shape == (9,)


class TestOverlapAdd:
    def test_matches_numpy(self, rng):
        signal, kernel = rng.normal(size=100), rng.normal(size=7)
        assert np.allclose(overlap_add_convolve(signal, kernel), np.convolve(signal, kernel))

    @pytest.mark.parametrize("block", [4, 8, 13, 64, 1000])
    def test_block_size_invariance(self, rng, block):
        signal, kernel = rng.normal(size=50), rng.normal(size=5)
        assert np.allclose(
            overlap_add_convolve(signal, kernel, block_size=block),
            np.convolve(signal, kernel),
        )

    def test_short_signal(self, rng):
        signal, kernel = rng.normal(size=3), rng.normal(size=5)
        assert np.allclose(overlap_add_convolve(signal, kernel), np.convolve(signal, kernel))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            overlap_add_convolve(np.array([]), np.ones(3))

    def test_rejects_2d(self, rng):
        with pytest.raises(ValueError):
            overlap_add_convolve(rng.normal(size=(2, 4)), np.ones(3))


class TestConvolve2d:
    def test_matches_direct(self, rng):
        image, kernel = rng.normal(size=(10, 9)), rng.normal(size=(3, 3))
        assert np.allclose(convolve2d(image, kernel), convolve2d_direct(image, kernel))

    def test_matches_scipy(self, rng):
        from scipy.signal import correlate2d

        image, kernel = rng.normal(size=(8, 8)), rng.normal(size=(4, 4))
        assert np.allclose(
            convolve2d(image, kernel), correlate2d(image, kernel, mode="valid")
        )

    def test_output_shape(self, rng):
        out = convolve2d(rng.normal(size=(12, 10)), rng.normal(size=(3, 5)))
        assert out.shape == (10, 6)

    def test_kernel_too_large_raises(self, rng):
        with pytest.raises(ValueError):
            convolve2d(rng.normal(size=(3, 3)), rng.normal(size=(4, 4)))

    def test_averaging_kernel(self):
        image = np.ones((6, 6))
        kernel = np.full((3, 3), 1.0 / 9.0)
        assert np.allclose(convolve2d(image, kernel), np.ones((4, 4)))
