"""Tests for Rader's prime-size FFT."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fft import fft_bluestein, fft_rader, primitive_root

PRIMES = (2, 3, 5, 7, 11, 13, 17, 31, 97, 101, 257)


class TestPrimitiveRoot:
    @pytest.mark.parametrize("p,expected", [(2, 1), (3, 2), (5, 2), (7, 3),
                                            (11, 2), (13, 2), (23, 5)])
    def test_known_roots(self, p, expected):
        assert primitive_root(p) == expected

    @pytest.mark.parametrize("p", PRIMES[1:])
    def test_generates_full_group(self, p):
        g = primitive_root(p)
        powers = {pow(g, k, p) for k in range(p - 1)}
        assert powers == set(range(1, p))

    def test_rejects_composite(self):
        with pytest.raises(ValueError):
            primitive_root(12)

    def test_rejects_too_small(self):
        with pytest.raises(ValueError):
            primitive_root(1)


class TestFftRader:
    @pytest.mark.parametrize("p", PRIMES)
    def test_matches_numpy(self, rng, p):
        x = rng.normal(size=p) + 1j * rng.normal(size=p)
        assert np.allclose(fft_rader(x), np.fft.fft(x))

    @pytest.mark.parametrize("p", (3, 7, 13))
    def test_inverse_flag(self, rng, p):
        x = rng.normal(size=p) + 1j * rng.normal(size=p)
        assert np.allclose(fft_rader(x, inverse=True) / p, np.fft.ifft(x))

    def test_batched(self, rng):
        x = rng.normal(size=(3, 4, 13)) + 1j * rng.normal(size=(3, 4, 13))
        assert np.allclose(fft_rader(x), np.fft.fft(x, axis=-1))

    def test_rejects_composite_length(self, rng):
        with pytest.raises(ValueError):
            fft_rader(rng.normal(size=12))

    def test_length_one_and_two(self, rng):
        x1 = rng.normal(size=1) + 0j
        assert np.allclose(fft_rader(x1), x1)
        x2 = rng.normal(size=2) + 0j
        assert np.allclose(fft_rader(x2), np.fft.fft(x2))

    def test_agrees_with_bluestein(self, rng):
        x = rng.normal(size=31) + 1j * rng.normal(size=31)
        assert np.allclose(fft_rader(x), fft_bluestein(x))

    def test_does_not_mutate_input(self, rng):
        x = rng.normal(size=7) + 0j
        copy = x.copy()
        fft_rader(x)
        assert np.array_equal(x, copy)

    @given(
        st.sampled_from((3, 5, 7, 11, 13, 17, 19, 23, 29, 31)),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_matches_numpy(self, p, seed):
        local = np.random.default_rng(seed)
        x = local.normal(size=p) + 1j * local.normal(size=p)
        assert np.allclose(fft_rader(x), np.fft.fft(x))
