"""Tests for the Bluestein chirp-z FFT."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fft import fft_bluestein


class TestBluestein:
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 7, 11, 13, 97, 121, 128, 100])
    def test_matches_numpy(self, rng, n):
        x = rng.normal(size=n) + 1j * rng.normal(size=n)
        assert np.allclose(fft_bluestein(x), np.fft.fft(x))

    def test_inverse_flag(self, rng):
        x = rng.normal(size=11) + 1j * rng.normal(size=11)
        assert np.allclose(fft_bluestein(x, inverse=True) / 11, np.fft.ifft(x))

    def test_batched(self, rng):
        x = rng.normal(size=(3, 4, 7))
        assert np.allclose(fft_bluestein(x), np.fft.fft(x, axis=-1))

    def test_large_prime(self, rng):
        n = 1009
        x = rng.normal(size=n)
        assert np.allclose(fft_bluestein(x), np.fft.fft(x))

    def test_does_not_mutate_input(self, rng):
        x = rng.normal(size=9) + 0j
        copy = x.copy()
        fft_bluestein(x)
        assert np.array_equal(x, copy)

    @given(st.integers(1, 200), st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_property_matches_numpy(self, n, seed):
        local = np.random.default_rng(seed)
        x = local.normal(size=n) + 1j * local.normal(size=n)
        assert np.allclose(fft_bluestein(x), np.fft.fft(x))
