"""Tests for the radix-2 and mixed-radix Cooley-Tukey kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fft import fft_mixed_radix, fft_radix2, ifft_radix2


class TestRadix2:
    @pytest.mark.parametrize("n", [1, 2, 4, 8, 16, 64, 256])
    def test_matches_numpy(self, rng, n):
        x = rng.normal(size=n) + 1j * rng.normal(size=n)
        assert np.allclose(fft_radix2(x), np.fft.fft(x))

    def test_rejects_non_power_of_two(self, rng):
        with pytest.raises(ValueError):
            fft_radix2(rng.normal(size=12))

    def test_inverse_round_trip(self, rng):
        x = rng.normal(size=32) + 1j * rng.normal(size=32)
        assert np.allclose(ifft_radix2(fft_radix2(x)), x)

    def test_batched(self, rng):
        x = rng.normal(size=(5, 3, 16))
        assert np.allclose(fft_radix2(x), np.fft.fft(x, axis=-1))

    def test_does_not_mutate_input(self, rng):
        x = rng.normal(size=8) + 0j
        copy = x.copy()
        fft_radix2(x)
        assert np.array_equal(x, copy)

    def test_parseval(self, rng):
        x = rng.normal(size=64)
        spectrum = fft_radix2(x)
        assert np.sum(np.abs(x) ** 2) == pytest.approx(
            np.sum(np.abs(spectrum) ** 2) / 64
        )

    @given(st.integers(0, 6), st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_property_matches_numpy(self, log_n, seed):
        n = 2**log_n
        local = np.random.default_rng(seed)
        x = local.normal(size=n) + 1j * local.normal(size=n)
        assert np.allclose(fft_radix2(x), np.fft.fft(x))


class TestMixedRadix:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 6, 9, 12, 15, 30, 36, 49, 121])
    def test_matches_numpy(self, rng, n):
        x = rng.normal(size=n) + 1j * rng.normal(size=n)
        assert np.allclose(fft_mixed_radix(x), np.fft.fft(x))

    @pytest.mark.parametrize("n", [5, 7, 13, 31])
    def test_prime_sizes(self, rng, n):
        x = rng.normal(size=n) + 1j * rng.normal(size=n)
        assert np.allclose(fft_mixed_radix(x), np.fft.fft(x))

    def test_inverse_flag(self, rng):
        x = rng.normal(size=18) + 1j * rng.normal(size=18)
        inverse = fft_mixed_radix(x, inverse=True) / 18
        assert np.allclose(inverse, np.fft.ifft(x))

    def test_batched(self, rng):
        x = rng.normal(size=(4, 6))
        assert np.allclose(fft_mixed_radix(x), np.fft.fft(x, axis=-1))

    @given(st.integers(1, 60), st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_property_matches_numpy(self, n, seed):
        local = np.random.default_rng(seed)
        x = local.normal(size=n) + 1j * local.normal(size=n)
        assert np.allclose(fft_mixed_radix(x), np.fft.fft(x))
