"""Tests for the O(n^2) reference DFT."""

import numpy as np
import pytest

from repro.fft import dft_matrix, naive_dft, naive_idft


class TestDftMatrix:
    def test_size_1(self):
        assert np.allclose(dft_matrix(1), [[1.0]])

    def test_size_2(self):
        assert np.allclose(dft_matrix(2), [[1, 1], [1, -1]])

    def test_unitary_up_to_scale(self):
        n = 8
        w = dft_matrix(n)
        assert np.allclose(w @ np.conj(w.T), n * np.eye(n))

    def test_inverse_matrix_is_conjugate(self):
        assert np.allclose(dft_matrix(6, inverse=True), np.conj(dft_matrix(6)))

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            dft_matrix(0)


class TestNaiveDft:
    def test_matches_numpy(self, rng):
        for n in (1, 2, 3, 7, 16, 21):
            x = rng.normal(size=n) + 1j * rng.normal(size=n)
            assert np.allclose(naive_dft(x), np.fft.fft(x))

    def test_round_trip(self, rng):
        x = rng.normal(size=11) + 1j * rng.normal(size=11)
        assert np.allclose(naive_idft(naive_dft(x)), x)

    def test_impulse_gives_flat_spectrum(self):
        x = np.zeros(8)
        x[0] = 1.0
        assert np.allclose(naive_dft(x), np.ones(8))

    def test_constant_gives_impulse_spectrum(self):
        spectrum = naive_dft(np.ones(8))
        expected = np.zeros(8)
        expected[0] = 8.0
        assert np.allclose(spectrum, expected)

    def test_batched_along_axis(self, rng):
        x = rng.normal(size=(3, 5, 4))
        assert np.allclose(naive_dft(x, axis=1), np.fft.fft(x, axis=1))
        assert np.allclose(naive_dft(x, axis=0), np.fft.fft(x, axis=0))

    def test_linearity(self, rng):
        a = rng.normal(size=9)
        b = rng.normal(size=9)
        assert np.allclose(
            naive_dft(2.0 * a + 3.0 * b),
            2.0 * naive_dft(a) + 3.0 * naive_dft(b),
        )
