"""Tests for 2-D transforms."""

import numpy as np
import pytest

from repro.fft import fft2, ifft2, use_backend


@pytest.mark.parametrize("backend", ["numpy", "pure"])
class TestFft2:
    def test_matches_numpy(self, rng, backend):
        x = rng.normal(size=(6, 8)) + 1j * rng.normal(size=(6, 8))
        with use_backend(backend):
            assert np.allclose(fft2(x), np.fft.fft2(x))

    def test_round_trip(self, rng, backend):
        x = rng.normal(size=(5, 7))
        with use_backend(backend):
            assert np.allclose(ifft2(fft2(x)).real, x)

    def test_padding_shape(self, rng, backend):
        x = rng.normal(size=(4, 4))
        with use_backend(backend):
            result = fft2(x, shape=(8, 8))
        assert result.shape == (8, 8)
        assert np.allclose(result, np.fft.fft2(x, s=(8, 8)))

    def test_batched(self, rng, backend):
        x = rng.normal(size=(3, 6, 5))
        with use_backend(backend):
            assert np.allclose(fft2(x), np.fft.fft2(x, axes=(-2, -1)))

    def test_custom_axes(self, rng, backend):
        x = rng.normal(size=(4, 3, 5))
        with use_backend(backend):
            assert np.allclose(
                fft2(x, axes=(0, 2)), np.fft.fft2(x, axes=(0, 2))
            )

    def test_rejects_duplicate_axes(self, rng, backend):
        with use_backend(backend):
            with pytest.raises(ValueError):
                fft2(rng.normal(size=(4, 4)), axes=(1, 1))

    def test_separability(self, rng, backend):
        # 2-D transform of an outer product is the outer product of 1-D
        # transforms.
        a = rng.normal(size=6)
        b = rng.normal(size=8)
        with use_backend(backend):
            lhs = fft2(np.outer(a, b))
        assert np.allclose(lhs, np.outer(np.fft.fft(a), np.fft.fft(b)))
