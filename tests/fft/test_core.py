"""Tests for the dispatching fft/ifft/rfft/irfft entry points."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fft import fft, ifft, irfft, rfft, use_backend

BACKENDS = ("numpy", "pure")


@pytest.mark.parametrize("backend", BACKENDS)
class TestFft:
    @pytest.mark.parametrize("n", [1, 2, 3, 8, 12, 121])
    def test_matches_numpy(self, rng, backend, n):
        x = rng.normal(size=n) + 1j * rng.normal(size=n)
        with use_backend(backend):
            assert np.allclose(fft(x), np.fft.fft(x))

    def test_round_trip(self, rng, backend):
        x = rng.normal(size=24) + 1j * rng.normal(size=24)
        with use_backend(backend):
            assert np.allclose(ifft(fft(x)), x)

    def test_zero_padding(self, rng, backend):
        x = rng.normal(size=10)
        with use_backend(backend):
            assert np.allclose(fft(x, n=16), np.fft.fft(x, n=16))

    def test_truncation(self, rng, backend):
        x = rng.normal(size=20)
        with use_backend(backend):
            assert np.allclose(fft(x, n=8), np.fft.fft(x, n=8))

    def test_axis_argument(self, rng, backend):
        x = rng.normal(size=(3, 6, 5))
        with use_backend(backend):
            for axis in (0, 1, 2, -1, -2):
                assert np.allclose(fft(x, axis=axis), np.fft.fft(x, axis=axis))

    def test_rejects_nonpositive_length(self, rng, backend):
        with use_backend(backend):
            with pytest.raises(ValueError):
                fft(rng.normal(size=4), n=0)

    def test_linearity(self, rng, backend):
        a = rng.normal(size=12)
        b = rng.normal(size=12)
        with use_backend(backend):
            assert np.allclose(fft(3 * a - b), 3 * fft(a) - fft(b))


@pytest.mark.parametrize("backend", BACKENDS)
class TestRfft:
    @pytest.mark.parametrize("n", [1, 2, 3, 8, 11, 16, 121])
    def test_matches_numpy(self, rng, backend, n):
        x = rng.normal(size=n)
        with use_backend(backend):
            assert np.allclose(rfft(x), np.fft.rfft(x))

    @pytest.mark.parametrize("n", [1, 2, 3, 8, 11, 16])
    def test_round_trip(self, rng, backend, n):
        x = rng.normal(size=n)
        with use_backend(backend):
            assert np.allclose(irfft(rfft(x), n=n), x)

    def test_rfft_rejects_complex(self, rng, backend):
        with use_backend(backend):
            with pytest.raises(TypeError):
                rfft(rng.normal(size=4) + 1j)

    def test_irfft_checks_bin_count(self, rng, backend):
        with use_backend(backend):
            with pytest.raises(ValueError):
                irfft(rng.normal(size=5) + 0j, n=16)

    def test_irfft_matches_numpy(self, rng, backend):
        spectrum = np.fft.rfft(rng.normal(size=14))
        with use_backend(backend):
            assert np.allclose(irfft(spectrum, n=14), np.fft.irfft(spectrum, n=14))

    def test_batched(self, rng, backend):
        x = rng.normal(size=(4, 3, 10))
        with use_backend(backend):
            assert np.allclose(rfft(x), np.fft.rfft(x, axis=-1))

    def test_half_spectrum_size(self, rng, backend):
        with use_backend(backend):
            assert rfft(rng.normal(size=10)).shape == (6,)
            assert rfft(rng.normal(size=11)).shape == (6,)


class TestBackendParity:
    @given(st.integers(1, 96), st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_pure_equals_numpy_backend(self, n, seed):
        local = np.random.default_rng(seed)
        x = local.normal(size=n) + 1j * local.normal(size=n)
        with use_backend("numpy"):
            reference = fft(x)
        with use_backend("pure"):
            ours = fft(x)
        assert np.allclose(ours, reference)

    @given(st.integers(1, 96), st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_rfft_parity(self, n, seed):
        local = np.random.default_rng(seed)
        x = local.normal(size=n)
        with use_backend("numpy"):
            reference = rfft(x)
        with use_backend("pure"):
            ours = rfft(x)
        assert np.allclose(ours, reference)


@pytest.mark.parametrize("backend", BACKENDS)
class TestDestinationBuffers:
    """rfft/irfft out=: bitwise-identical results written in place."""

    @pytest.mark.parametrize("n", [1, 2, 3, 8, 12, 17, 64])
    def test_rfft_out_bitwise(self, rng, backend, n):
        x = rng.normal(size=(3, n))
        with use_backend(backend):
            reference = rfft(x)
            out = np.empty_like(reference)
            returned = rfft(x, out=out)
        assert returned is out
        assert np.array_equal(out, reference)

    @pytest.mark.parametrize("n", [1, 2, 3, 8, 12, 17, 64])
    def test_irfft_out_bitwise(self, rng, backend, n):
        x = rng.normal(size=(3, n))
        with use_backend(backend):
            spec = rfft(x)
            reference = irfft(spec, n=n)
            out = np.empty_like(reference)
            returned = irfft(spec, n=n, out=out)
        assert returned is out
        assert np.array_equal(out, reference)

    def test_rfft_out_fp32(self, rng, backend):
        x = rng.normal(size=(4, 16)).astype(np.float32)
        with use_backend(backend):
            reference = rfft(x)
            out = np.empty((4, 9), dtype=np.complex64)
            rfft(x, out=out)
        assert out.dtype == reference.dtype == np.complex64
        assert np.array_equal(out, reference)

    def test_irfft_out_fp32(self, rng, backend):
        x = rng.normal(size=(4, 16)).astype(np.float32)
        with use_backend(backend):
            spec = rfft(x)
            reference = irfft(spec, n=16)
            out = np.empty((4, 16), dtype=np.float32)
            irfft(spec, n=16, out=out)
        assert out.dtype == reference.dtype == np.float32
        assert np.array_equal(out, reference)

    def test_out_respects_axis(self, rng, backend):
        x = rng.normal(size=(5, 8, 3))
        with use_backend(backend):
            reference = rfft(x, axis=1)
            out = np.empty((5, 5, 3), dtype=np.complex128)
            rfft(x, axis=1, out=out)
        assert np.array_equal(out, reference)

    def test_rfft_out_shape_mismatch_raises(self, rng, backend):
        x = rng.normal(size=(3, 8))
        with use_backend(backend):
            with pytest.raises(ValueError, match="shape"):
                rfft(x, out=np.empty((3, 8), dtype=np.complex128))

    def test_rfft_out_dtype_mismatch_raises(self, rng, backend):
        x = rng.normal(size=(3, 8))
        with use_backend(backend):
            with pytest.raises(ValueError, match="dtype"):
                rfft(x, out=np.empty((3, 5), dtype=np.complex64))

    def test_irfft_out_dtype_mismatch_raises(self, rng, backend):
        x = rng.normal(size=(3, 8))
        with use_backend(backend):
            spec = rfft(x)
            with pytest.raises(ValueError, match="dtype"):
                irfft(spec, n=8, out=np.empty((3, 8), dtype=np.float32))

    def test_out_rejects_readonly(self, rng, backend):
        x = rng.normal(size=(3, 8))
        buf = np.empty((3, 5), dtype=np.complex128)
        buf.flags.writeable = False
        with use_backend(backend):
            with pytest.raises(ValueError, match="writeable"):
                rfft(x, out=buf)
