"""Tests for the model zoo (paper Arch. 1 / 2 / 3) and its registry."""

import numpy as np
import pytest

from repro import zoo
from repro.exceptions import ConfigurationError
from repro.nn import BlockCirculantConv2d, BlockCirculantLinear, Conv2d, Linear, Tensor
from repro.zoo import (
    ARCH1_INPUT_SIDE,
    ARCH2_INPUT_SIDE,
    build_arch1,
    build_arch2,
    build_arch3,
    build_arch3_reduced,
)


class TestArch1:
    def test_layer_dimensions(self, rng):
        model = build_arch1(rng=rng)
        bc_layers = [l for l in model if isinstance(l, BlockCirculantLinear)]
        assert [l.in_features for l in bc_layers] == [256, 128]
        assert [l.out_features for l in bc_layers] == [128, 128]
        assert isinstance(model[-1], Linear)
        assert model[-1].out_features == 10

    def test_input_side_constant(self):
        assert ARCH1_INPUT_SIDE**2 == 256

    def test_forward_shape(self, rng):
        model = build_arch1(rng=rng)
        assert model(Tensor(rng.normal(size=(4, 256)))).shape == (4, 10)

    def test_block_size_configurable(self, rng):
        model = build_arch1(block_size=32, rng=rng)
        assert model[0].block_size == 32

    def test_compressed_vs_dense_storage(self, rng):
        model = build_arch1(rng=rng)
        dense_params = 256 * 128 + 128 * 128 + 128 * 10
        assert model.parameter_count() < dense_params / 2


class TestArch2:
    def test_layer_dimensions(self, rng):
        model = build_arch2(rng=rng)
        bc_layers = [l for l in model if isinstance(l, BlockCirculantLinear)]
        assert [l.in_features for l in bc_layers] == [121, 64]
        assert [l.out_features for l in bc_layers] == [64, 64]

    def test_input_side_constant(self):
        assert ARCH2_INPUT_SIDE**2 == 121

    def test_forward_shape(self, rng):
        model = build_arch2(rng=rng)
        assert model(Tensor(rng.normal(size=(2, 121)))).shape == (2, 10)

    def test_smaller_than_arch1(self, rng):
        assert build_arch2(rng=rng).parameter_count() < build_arch1(
            rng=rng
        ).parameter_count()


class TestArch3:
    def test_structure_matches_paper(self, rng):
        model = build_arch3(rng=rng)
        convs = [l for l in model if isinstance(l, (Conv2d, BlockCirculantConv2d))]
        # First two CONV layers dense ("traditional"), next two BC.
        assert [type(l) for l in convs] == [
            Conv2d, Conv2d, BlockCirculantConv2d, BlockCirculantConv2d
        ]
        assert [l.out_channels for l in convs] == [64, 64, 128, 128]
        fcs = [l for l in model if isinstance(l, (Linear, BlockCirculantLinear))]
        assert [l.out_features for l in fcs] == [512, 1024, 1024, 10]

    def test_forward_shape(self, rng):
        model = build_arch3(block_size=32, rng=rng)
        out = model(Tensor(rng.normal(size=(1, 3, 32, 32))))
        assert out.shape == (1, 10)

    def test_compression_substantial(self, rng):
        from repro.analysis import storage_report

        report = storage_report(build_arch3(rng=rng))
        assert report.compression > 10


class TestRegistry:
    def test_all_architectures_registered(self):
        assert set(zoo.names()) >= {
            "arch1", "arch2", "arch3", "arch3_reduced"
        }

    def test_get_builds_by_name(self, rng):
        model = zoo.get("arch1", rng=rng)
        assert model(Tensor(rng.normal(size=(2, 256)))).shape == (2, 10)

    def test_get_passes_builder_kwargs(self, rng):
        model = zoo.get("arch1", block_size=32, rng=rng)
        assert model[0].block_size == 32

    def test_entry_metadata(self):
        entry = zoo.entry("arch2")
        assert entry.input_shape == (121,)
        assert entry.dataset == "synthetic_mnist"
        assert zoo.entry("arch3").input_shape == (3, 32, 32)
        assert zoo.entry("arch3").dataset == "synthetic_cifar"

    def test_unknown_name_lists_registry(self):
        with pytest.raises(ConfigurationError, match="arch1"):
            zoo.get("arch99")

    def test_register_idempotent_but_conflict_rejected(self):
        entry = zoo.entry("arch1")
        # Re-registering the identical entry is a no-op...
        zoo.register(
            entry.name, entry.builder, entry.input_shape,
            entry.dataset, entry.description,
        )
        # ...but a different builder under the same name is an error.
        with pytest.raises(ConfigurationError, match="already registered"):
            zoo.register(
                "arch1", build_arch2, (121,), "synthetic_mnist"
            )

    def test_register_new_name_round_trips(self, rng):
        name = "test_only_arch"
        try:
            zoo.register(
                name, build_arch2, (121,), "synthetic_mnist", "test entry"
            )
            assert name in zoo.names()
            model = zoo.get(name, rng=rng)
            assert model(Tensor(rng.normal(size=(1, 121)))).shape == (1, 10)
        finally:
            zoo._REGISTRY.pop(name, None)


class TestArch3Reduced:
    def test_same_topology_smaller_width(self, rng):
        model = build_arch3_reduced(rng=rng)
        convs = [l for l in model if isinstance(l, (Conv2d, BlockCirculantConv2d))]
        assert [type(l) for l in convs] == [
            Conv2d, Conv2d, BlockCirculantConv2d, BlockCirculantConv2d
        ]

    def test_forward_shape(self, rng):
        model = build_arch3_reduced(rng=rng)
        out = model(Tensor(rng.normal(size=(2, 3, 32, 32))))
        assert out.shape == (2, 10)

    def test_trainable_quickly(self, rng):
        # A couple of optimizer steps must reduce the loss.
        from repro.data import generate_cifar
        from repro.nn import Adam, CrossEntropyLoss

        model = build_arch3_reduced(width=8, block_size=4, rng=rng)
        x, y = generate_cifar(32, rng)
        loss_fn = CrossEntropyLoss()
        optimizer = Adam(model.parameters(), lr=0.003)
        losses = []
        for _ in range(6):
            optimizer.zero_grad()
            loss = loss_fn(model(Tensor(x)), y)
            loss.backward()
            optimizer.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0]
