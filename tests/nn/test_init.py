"""Tests for weight initializers."""

import numpy as np
import pytest

from repro.nn.init import (
    circulant_spectral,
    he_normal,
    he_uniform,
    xavier_normal,
    xavier_uniform,
)


class TestInitializers:
    def test_xavier_uniform_bounds(self, rng):
        values = xavier_uniform((1000,), fan_in=50, fan_out=50, rng=rng)
        bound = np.sqrt(6.0 / 100)
        assert np.all(np.abs(values) <= bound)

    def test_xavier_normal_variance(self, rng):
        values = xavier_normal((20000,), fan_in=40, fan_out=60, rng=rng)
        assert values.var() == pytest.approx(2.0 / 100, rel=0.1)

    def test_he_uniform_bounds(self, rng):
        values = he_uniform((1000,), fan_in=32, rng=rng)
        assert np.all(np.abs(values) <= np.sqrt(6.0 / 32))

    def test_he_normal_variance(self, rng):
        values = he_normal((20000,), fan_in=64, rng=rng)
        assert values.var() == pytest.approx(2.0 / 64, rel=0.1)

    def test_shapes(self, rng):
        assert xavier_uniform((3, 4), 3, 4, rng).shape == (3, 4)
        assert he_normal((2, 5, 7), 70, rng).shape == (2, 5, 7)

    def test_rejects_bad_fans(self, rng):
        with pytest.raises(ValueError):
            he_normal((3,), fan_in=0, rng=rng)
        with pytest.raises(ValueError):
            xavier_uniform((3,), fan_in=-1, fan_out=2, rng=rng)

    def test_deterministic_with_seed(self):
        a = he_normal((10,), 5, np.random.default_rng(42))
        b = he_normal((10,), 5, np.random.default_rng(42))
        assert np.array_equal(a, b)


class TestCirculantSpectral:
    def test_shape(self, rng):
        assert circulant_spectral((2, 3, 8), fan_in=24, rng=rng).shape == (2, 3, 8)

    def test_rejects_bad_grid(self, rng):
        with pytest.raises(ValueError):
            circulant_spectral((2, 3), fan_in=6, rng=rng)

    def test_dense_expansion_variance_matches_he(self, rng):
        # The dense expansion of the block-circulant init should have
        # output variance comparable to a He-initialized dense layer.
        from repro.structured import block_circulant_to_dense

        fan_in, block = 256, 16
        weights = circulant_spectral((1, 16, block), fan_in=fan_in, rng=rng)
        dense = block_circulant_to_dense(weights)
        x = rng.normal(size=fan_in)
        outputs = dense @ x
        # var(out) ~ fan_in * var(w) = 2 under He scaling.
        assert outputs.var() == pytest.approx(2.0, rel=0.8)
