"""Tests for dense -> block-circulant model conversion."""

import numpy as np
import pytest

from repro.nn import (
    BlockCirculantConv2d,
    BlockCirculantLinear,
    Conv2d,
    ConversionRow,
    Flatten,
    Linear,
    ReLU,
    Sequential,
    Tensor,
    conversion_report,
    convert_to_block_circulant,
)


@pytest.fixture
def dense_model(rng):
    return Sequential(
        Conv2d(4, 8, 3, rng=rng),
        ReLU(),
        Flatten(),
        Linear(8 * 4 * 4, 16, rng=rng),
        ReLU(),
        Linear(16, 10, rng=rng),
    )


class TestConvertToBlockCirculant:
    def test_layer_types_swapped(self, dense_model):
        converted = convert_to_block_circulant(dense_model, block_size=4)
        assert isinstance(converted[0], BlockCirculantConv2d)
        assert isinstance(converted[3], BlockCirculantLinear)
        assert isinstance(converted[5], BlockCirculantLinear)

    def test_non_weight_layers_preserved(self, dense_model):
        converted = convert_to_block_circulant(dense_model, block_size=4)
        assert converted[1] is dense_model[1]
        assert converted[2] is dense_model[2]

    def test_skip_indices_stay_dense(self, dense_model):
        converted = convert_to_block_circulant(
            dense_model, block_size=4, skip=(0, 5)
        )
        assert isinstance(converted[0], Conv2d)
        assert not isinstance(converted[0], BlockCirculantConv2d)
        assert isinstance(converted[5], Linear)
        assert not isinstance(converted[5], BlockCirculantLinear)

    def test_original_model_untouched(self, dense_model, rng):
        state = {k: v.copy() for k, v in dense_model.state_dict().items()}
        convert_to_block_circulant(dense_model, block_size=4)
        after = dense_model.state_dict()
        assert all(np.array_equal(state[k], after[k]) for k in state)

    def test_exact_structure_round_trips_linear(self, rng):
        source = BlockCirculantLinear(16, 8, 4, rng=rng)
        dense = Sequential(Linear(16, 8, rng=rng))
        dense[0].weight.data = source.dense_weight()
        dense[0].bias.data = source.bias.data.copy()
        converted = convert_to_block_circulant(dense, block_size=4)
        x = rng.normal(size=(3, 16))
        assert np.allclose(
            converted(Tensor(x)).data, source(Tensor(x)).data, atol=1e-9
        )

    def test_exact_structure_round_trips_conv(self, rng):
        source = BlockCirculantConv2d(4, 8, 3, block_size=4, rng=rng)
        dense = Sequential(Conv2d(4, 8, 3, rng=rng))
        dense[0].weight.data = source.dense_weight()
        dense[0].bias.data = source.bias.data.copy()
        converted = convert_to_block_circulant(dense, block_size=4)
        x = rng.normal(size=(2, 4, 6, 6))
        assert np.allclose(
            converted(Tensor(x)).data, source(Tensor(x)).data, atol=1e-9
        )

    def test_block_size_clamped_to_feasible(self, rng):
        model = Sequential(Linear(4, 4, rng=rng))
        converted = convert_to_block_circulant(model, block_size=64)
        assert converted[0].block_size == 4

    def test_output_shape_preserved(self, dense_model, rng):
        converted = convert_to_block_circulant(dense_model, block_size=4)
        x = rng.normal(size=(2, 4, 6, 6))
        assert converted(Tensor(x)).shape == dense_model(Tensor(x)).shape

    def test_rejects_bad_block_size(self, dense_model):
        with pytest.raises(ValueError):
            convert_to_block_circulant(dense_model, block_size=0)

    def test_fine_tuning_recovers_accuracy(self, rng):
        # The paper's workflow: project then fine-tune.  After projection
        # accuracy drops; a few epochs bring it back close to dense.
        from repro.nn import Adam, CrossEntropyLoss, accuracy

        n, dim = 300, 16
        x = rng.normal(size=(n, dim))
        labels = (x[:, :4].sum(axis=1) > 0).astype(int)
        dense = Sequential(Linear(dim, 32, rng=rng), ReLU(), Linear(32, 2, rng=rng))
        loss_fn = CrossEntropyLoss()
        optimizer = Adam(dense.parameters(), lr=0.01)
        for _ in range(40):
            optimizer.zero_grad()
            loss_fn(dense(Tensor(x)), labels).backward()
            optimizer.step()
        dense_acc = accuracy(dense(Tensor(x)), labels)
        assert dense_acc > 0.9

        converted = convert_to_block_circulant(dense, block_size=8, skip=(2,))
        projected_acc = accuracy(converted(Tensor(x)), labels)
        fine_tune = Adam(converted.parameters(), lr=0.01)
        for _ in range(40):
            fine_tune.zero_grad()
            loss_fn(converted(Tensor(x)), labels).backward()
            fine_tune.step()
        tuned_acc = accuracy(converted(Tensor(x)), labels)
        assert tuned_acc >= projected_acc
        assert tuned_acc > dense_acc - 0.1


class TestConversionReport:
    def test_rows_for_weight_layers_only(self, dense_model):
        rows = conversion_report(dense_model, 4)
        assert [row.index for row in rows] == [0, 3, 5]
        assert all(isinstance(row, ConversionRow) for row in rows)

    def test_zero_error_for_exact_structure(self, rng):
        source = BlockCirculantLinear(16, 8, 4, rng=rng)
        dense = Sequential(Linear(16, 8, rng=rng))
        dense[0].weight.data = source.dense_weight()
        rows = conversion_report(dense, 4)
        assert rows[0].relative_error == pytest.approx(0.0, abs=1e-10)

    def test_error_grows_with_block_size(self, dense_model):
        small = conversion_report(dense_model, 2)[1].relative_error
        large = conversion_report(dense_model, 8)[1].relative_error
        assert large >= small

    def test_skip_respected(self, dense_model):
        rows = conversion_report(dense_model, 4, skip=(0,))
        assert [row.index for row in rows] == [3, 5]

    def test_no_dense_layers_raises(self):
        with pytest.raises(ValueError):
            conversion_report(Sequential(ReLU()), 4)

    def test_quantization_column_absent_by_default(self, dense_model):
        rows = conversion_report(dense_model, 4)
        assert all(row.quantization_error is None for row in rows)

    def test_quantization_column_populated(self, dense_model):
        rows = conversion_report(dense_model, 4, quantize_bits=12)
        assert all(row.quantization_error is not None for row in rows)
        assert all(0 <= row.quantization_error < 0.05 for row in rows)

    def test_quantization_error_shrinks_with_bits(self, dense_model):
        coarse = conversion_report(dense_model, 4, quantize_bits=8)
        fine = conversion_report(dense_model, 4, quantize_bits=16)
        for row8, row16 in zip(coarse, fine):
            assert row16.quantization_error <= row8.quantization_error

    def test_quantization_error_matches_direct_measurement(self, rng):
        from repro.quantize import choose_qformat, quantization_error
        from repro.structured import BlockCirculantMatrix

        dense = Sequential(Linear(16, 8, rng=rng))
        rows = conversion_report(dense, 4, quantize_bits=10)
        stored = BlockCirculantMatrix.from_dense(
            dense[0].weight.data, 4
        ).block_weights
        expected = quantization_error(stored, choose_qformat(stored, 10))
        assert rows[0].quantization_error == pytest.approx(expected)


class TestConversionRowsFrom:
    def test_matches_conversion_report(self, dense_model):
        from repro.nn.convert import (
            conversion_rows_from,
            convert_to_block_circulant,
        )

        converted = convert_to_block_circulant(dense_model, 4, skip=(5,))
        derived = conversion_rows_from(
            dense_model, converted, skip=(5,), quantize_bits=12
        )
        direct = conversion_report(
            dense_model, 4, skip=(5,), quantize_bits=12
        )
        assert len(derived) == len(direct)
        for mine, theirs in zip(derived, direct):
            assert mine.index == theirs.index
            assert mine.relative_error == pytest.approx(
                theirs.relative_error, abs=1e-12
            )
            assert mine.compression == pytest.approx(theirs.compression)
            assert mine.quantization_error == pytest.approx(
                theirs.quantization_error, abs=1e-12
            )


class TestPerLayerOverrides:
    def test_override_applies_to_named_layer(self, dense_model):
        converted = convert_to_block_circulant(
            dense_model, 4, overrides={0: 2}
        )
        assert converted[0].block_size == 2
        assert converted[3].block_size == 4

    def test_report_respects_overrides(self, dense_model):
        base = conversion_report(dense_model, 4)
        overridden = conversion_report(dense_model, 4, overrides={0: 2})
        assert overridden[0].compression < base[0].compression
        assert overridden[1].compression == base[1].compression

    def test_bad_override_rejected(self, dense_model):
        with pytest.raises(ValueError, match="positive"):
            convert_to_block_circulant(dense_model, 4, overrides={0: 0})
