"""Tests for the autograd Tensor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor, as_tensor
from repro.nn.tensor import unbroadcast


def numerical_gradient(f, x, eps=1e-6):
    grad = np.zeros_like(x)
    base = f(x)
    it = np.nditer(x, flags=["multi_index"])
    for _ in it:
        idx = it.multi_index
        bumped = x.copy()
        bumped[idx] += eps
        grad[idx] = (f(bumped) - base) / eps
    return grad


class TestConstruction:
    def test_int_input_becomes_float(self):
        t = Tensor([1, 2, 3])
        assert t.dtype == np.float64

    def test_bool_input_becomes_float(self):
        assert Tensor(np.array([True, False])).dtype == np.float64

    def test_requires_grad_default_false(self):
        assert not Tensor([1.0]).requires_grad

    def test_as_tensor_passthrough(self):
        t = Tensor([1.0])
        assert as_tensor(t) is t

    def test_as_tensor_wraps_scalar(self):
        assert as_tensor(2.0).item() == 2.0

    def test_shape_properties(self):
        t = Tensor(np.zeros((3, 4)))
        assert t.shape == (3, 4)
        assert t.ndim == 2
        assert t.size == 12
        assert len(t) == 3

    def test_detach_cuts_graph(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = (x * 2).detach()
        assert not y.requires_grad

    def test_repr(self):
        assert "requires_grad=True" in repr(Tensor([1.0], requires_grad=True))


class TestUnbroadcast:
    def test_identity(self):
        g = np.ones((3, 4))
        assert unbroadcast(g, (3, 4)).shape == (3, 4)

    def test_sum_leading_axis(self):
        g = np.ones((5, 3))
        assert unbroadcast(g, (3,)).shape == (3,)
        assert np.allclose(unbroadcast(g, (3,)), 5.0)

    def test_sum_size_one_axis(self):
        g = np.ones((4, 3))
        assert unbroadcast(g, (1, 3)).shape == (1, 3)
        assert np.allclose(unbroadcast(g, (1, 3)), 4.0)


class TestBackwardMechanics:
    def test_backward_on_nonscalar_requires_grad_arg(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2).backward()

    def test_backward_without_grad_flag_raises(self):
        x = Tensor([1.0])
        with pytest.raises(RuntimeError):
            x.backward()

    def test_grad_accumulates_across_backward_calls(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        (x.sum()).backward()
        (x.sum()).backward()
        assert np.allclose(x.grad, [2.0, 2.0])

    def test_zero_grad(self):
        x = Tensor([1.0], requires_grad=True)
        x.sum().backward()
        x.zero_grad()
        assert x.grad is None

    def test_diamond_graph_accumulates_once_per_path(self):
        x = Tensor([3.0], requires_grad=True)
        y = x * 2
        z = y + y  # two paths through y
        z.backward(np.array([1.0]))
        assert np.allclose(x.grad, [4.0])

    def test_shared_leaf_in_two_ops(self):
        x = Tensor([2.0], requires_grad=True)
        z = x * x  # d/dx x^2 = 2x
        z.backward(np.array([1.0]))
        assert np.allclose(x.grad, [4.0])

    def test_constant_branch_gets_no_grad(self):
        x = Tensor([1.0], requires_grad=True)
        c = Tensor([5.0])
        (x * c).backward(np.array([1.0]))
        assert c.grad is None

    def test_deep_chain(self):
        x = Tensor([1.0], requires_grad=True)
        y = x
        for _ in range(50):
            y = y * 1.1
        y.backward(np.array([1.0]))
        assert x.grad[0] == pytest.approx(1.1**50, rel=1e-9)


class TestArithmeticGradients:
    @pytest.mark.parametrize(
        "fn",
        [
            lambda x: (x + 2.0).sum(),
            lambda x: (2.0 - x).sum(),
            lambda x: (x * 3.0).sum(),
            lambda x: (x / 2.0).sum(),
            lambda x: (6.0 / (x + 3.0)).sum(),
            lambda x: (x**3).sum(),
            lambda x: (-x).sum(),
            lambda x: x.exp().sum(),
            lambda x: (x + 3.0).log().sum(),
            lambda x: (x + 3.0).sqrt().sum(),
            lambda x: x.tanh().sum(),
            lambda x: x.abs().sum(),
            lambda x: x.maximum(0.1).sum(),
        ],
    )
    def test_elementwise_grad_numerical(self, rng, fn):
        data = rng.uniform(0.5, 2.0, size=(3, 4))
        x = Tensor(data, requires_grad=True)
        fn(x).backward()
        numeric = numerical_gradient(lambda d: fn(Tensor(d)).item(), data)
        assert np.allclose(x.grad, numeric, atol=1e-4)

    def test_tensor_tensor_mul_grads(self, rng):
        a_data, b_data = rng.normal(size=4), rng.normal(size=4)
        a = Tensor(a_data, requires_grad=True)
        b = Tensor(b_data, requires_grad=True)
        (a * b).sum().backward()
        assert np.allclose(a.grad, b_data)
        assert np.allclose(b.grad, a_data)

    def test_broadcast_add_grads(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(4,)), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == (3, 4)
        assert b.grad.shape == (4,)
        assert np.allclose(b.grad, 3.0)

    def test_division_by_tensor_grads(self, rng):
        a_data = rng.uniform(1, 2, size=5)
        b_data = rng.uniform(1, 2, size=5)
        a = Tensor(a_data, requires_grad=True)
        b = Tensor(b_data, requires_grad=True)
        (a / b).sum().backward()
        assert np.allclose(a.grad, 1.0 / b_data)
        assert np.allclose(b.grad, -a_data / b_data**2)

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** Tensor([2.0])

    def test_radd_and_rmul(self):
        x = Tensor([2.0], requires_grad=True)
        y = 1.0 + x
        z = 3.0 * y
        z.backward(np.array([1.0]))
        assert np.allclose(x.grad, [3.0])


class TestMatmulGradients:
    def test_matrix_matrix(self, rng):
        a_data = rng.normal(size=(3, 4))
        b_data = rng.normal(size=(4, 5))
        a = Tensor(a_data, requires_grad=True)
        b = Tensor(b_data, requires_grad=True)
        (a @ b).sum().backward()
        assert np.allclose(a.grad, numerical_gradient(
            lambda d: (d @ b_data).sum(), a_data), atol=1e-4)
        assert np.allclose(b.grad, numerical_gradient(
            lambda d: (a_data @ d).sum(), b_data), atol=1e-4)

    def test_matrix_vector(self, rng):
        a_data = rng.normal(size=(3, 4))
        v_data = rng.normal(size=4)
        a = Tensor(a_data, requires_grad=True)
        v = Tensor(v_data, requires_grad=True)
        (a @ v).sum().backward()
        assert np.allclose(a.grad, np.tile(v_data, (3, 1)))
        assert np.allclose(v.grad, a_data.sum(axis=0))

    def test_vector_matrix(self, rng):
        v_data = rng.normal(size=3)
        a_data = rng.normal(size=(3, 4))
        v = Tensor(v_data, requires_grad=True)
        a = Tensor(a_data, requires_grad=True)
        (v @ a).sum().backward()
        assert np.allclose(v.grad, a_data.sum(axis=1))
        assert np.allclose(a.grad, np.outer(v_data, np.ones(4)))


class TestReductionsAndShapes:
    def test_sum_axis_keepdims(self, rng):
        data = rng.normal(size=(2, 3, 4))
        x = Tensor(data, requires_grad=True)
        x.sum(axis=1, keepdims=True).sum().backward()
        assert np.allclose(x.grad, 1.0)

    def test_mean_grad(self, rng):
        data = rng.normal(size=(4, 5))
        x = Tensor(data, requires_grad=True)
        x.mean().backward()
        assert np.allclose(x.grad, 1.0 / 20)

    def test_mean_axis(self, rng):
        data = rng.normal(size=(4, 5))
        x = Tensor(data, requires_grad=True)
        x.mean(axis=0).sum().backward()
        assert np.allclose(x.grad, 0.25)

    def test_max_routes_grad_to_argmax(self):
        x = Tensor([[1.0, 5.0, 2.0]], requires_grad=True)
        x.max(axis=1).sum().backward()
        assert np.allclose(x.grad, [[0.0, 1.0, 0.0]])

    def test_max_splits_grad_between_ties(self):
        x = Tensor([[3.0, 3.0]], requires_grad=True)
        x.max(axis=1).sum().backward()
        assert np.allclose(x.grad, [[0.5, 0.5]])

    def test_reshape_grad(self, rng):
        data = rng.normal(size=(2, 6))
        x = Tensor(data, requires_grad=True)
        (x.reshape(3, 4) * 2).sum().backward()
        assert x.grad.shape == (2, 6)
        assert np.allclose(x.grad, 2.0)

    def test_reshape_accepts_tuple(self, rng):
        x = Tensor(rng.normal(size=(2, 6)))
        assert x.reshape((4, 3)).shape == (4, 3)

    def test_transpose_grad(self, rng):
        data = rng.normal(size=(2, 3, 4))
        x = Tensor(data, requires_grad=True)
        y = x.transpose((2, 0, 1))
        assert y.shape == (4, 2, 3)
        y.sum().backward()
        assert x.grad.shape == (2, 3, 4)

    def test_T_property(self, rng):
        data = rng.normal(size=(2, 5))
        assert Tensor(data).T.shape == (5, 2)

    def test_getitem_grad_scatter(self, rng):
        data = rng.normal(size=(4, 3))
        x = Tensor(data, requires_grad=True)
        x[1:3].sum().backward()
        expected = np.zeros((4, 3))
        expected[1:3] = 1.0
        assert np.allclose(x.grad, expected)

    def test_getitem_fancy_indexing_repeats(self, rng):
        x = Tensor(rng.normal(size=5), requires_grad=True)
        idx = np.array([0, 0, 2])
        x[idx].sum().backward()
        assert np.allclose(x.grad, [2.0, 0.0, 1.0, 0.0, 0.0])

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_property_composite_expression(self, seed):
        local = np.random.default_rng(seed)
        data = local.uniform(0.5, 1.5, size=(3, 3))

        def f(d):
            t = Tensor(d, requires_grad=isinstance(d, np.ndarray))
            return ((t * 2 + 1).tanh() * t.exp()).mean()

        x = Tensor(data, requires_grad=True)
        ((x * 2 + 1).tanh() * x.exp()).mean().backward()
        numeric = numerical_gradient(lambda d: f(d).item(), data)
        assert np.allclose(x.grad, numeric, atol=1e-4)
