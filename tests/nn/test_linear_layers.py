"""Tests for Linear and BlockCirculantLinear (paper Algorithms 1-2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import BlockCirculantLinear, Linear, Tensor
from repro.structured import BlockCirculantMatrix


def numerical_gradient(f, x, eps=1e-6):
    grad = np.zeros_like(x)
    base = f(x)
    it = np.nditer(x, flags=["multi_index"])
    for _ in it:
        idx = it.multi_index
        bumped = x.copy()
        bumped[idx] += eps
        grad[idx] = (f(bumped) - base) / eps
    return grad


class TestLinear:
    def test_forward_matches_formula(self, rng):
        layer = Linear(4, 3, rng=rng)
        x = rng.normal(size=(5, 4))
        expected = x @ layer.weight.data.T + layer.bias.data
        assert np.allclose(layer(Tensor(x)).data, expected)

    def test_1d_input_promoted(self, rng):
        layer = Linear(4, 3, rng=rng)
        assert layer(Tensor(rng.normal(size=4))).shape == (1, 3)

    def test_no_bias(self, rng):
        layer = Linear(4, 3, bias=False, rng=rng)
        assert layer.bias is None
        x = rng.normal(size=(2, 4))
        assert np.allclose(layer(Tensor(x)).data, x @ layer.weight.data.T)

    def test_wrong_input_width_raises(self, rng):
        with pytest.raises(ValueError):
            Linear(4, 3, rng=rng)(Tensor(rng.normal(size=(2, 5))))

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            Linear(0, 3)

    def test_gradients_numerical(self, rng):
        layer = Linear(3, 2, rng=rng)
        x_data = rng.normal(size=(4, 3))
        g = rng.normal(size=(4, 2))
        x = Tensor(x_data, requires_grad=True)
        layer(x).backward(g)
        assert np.allclose(x.grad, g @ layer.weight.data)
        assert np.allclose(layer.bias.grad, g.sum(axis=0))
        w_numeric = numerical_gradient(
            lambda w: float(np.sum(g * (x_data @ w.T + layer.bias.data))),
            layer.weight.data,
        )
        assert np.allclose(layer.weight.grad, w_numeric, atol=1e-4)


class TestBlockCirculantLinearForward:
    @pytest.mark.parametrize(
        "n_in,n_out,block",
        [(8, 12, 4), (10, 7, 3), (6, 6, 6), (121, 64, 32), (16, 16, 1)],
    )
    def test_matches_dense_equivalent(self, rng, n_in, n_out, block):
        layer = BlockCirculantLinear(n_in, n_out, block, rng=rng)
        x = rng.normal(size=(3, n_in))
        expected = x @ layer.dense_weight().T + layer.bias.data
        assert np.allclose(layer(Tensor(x)).data, expected, atol=1e-9)

    def test_block_size_one_behaves_dense_diagonal(self, rng):
        # b=1 blocks are scalars: the matrix is unstructured.
        layer = BlockCirculantLinear(4, 4, 1, rng=rng)
        assert layer.weight.data.shape == (4, 4, 1)

    def test_1d_input_promoted(self, rng):
        layer = BlockCirculantLinear(8, 8, 4, rng=rng)
        assert layer(Tensor(rng.normal(size=8))).shape == (1, 8)

    def test_no_bias(self, rng):
        layer = BlockCirculantLinear(8, 8, 4, bias=False, rng=rng)
        assert layer.bias is None

    def test_wrong_input_width_raises(self, rng):
        with pytest.raises(ValueError):
            BlockCirculantLinear(8, 8, 4, rng=rng)(Tensor(rng.normal(size=(2, 9))))

    def test_block_size_validation(self):
        with pytest.raises(ValueError):
            BlockCirculantLinear(4, 4, 0)
        with pytest.raises(ValueError):
            BlockCirculantLinear(4, 4, 8)

    def test_block_size_up_to_max_dim_allowed(self, rng):
        # The paper's layout: block = min dimension is valid and compresses.
        layer = BlockCirculantLinear(256, 128, 128, rng=rng)
        assert layer.weight.data.shape == (1, 2, 128)

    def test_compression_ratio(self, rng):
        layer = BlockCirculantLinear(256, 128, 64, rng=rng)
        assert layer.compression_ratio == pytest.approx(64.0)

    @given(
        st.integers(1, 20),
        st.integers(1, 20),
        st.integers(1, 8),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_forward_matches_dense(self, n_in, n_out, block, seed):
        local = np.random.default_rng(seed)
        block = min(block, max(n_in, n_out))
        layer = BlockCirculantLinear(n_in, n_out, block, rng=local)
        x = local.normal(size=(2, n_in))
        expected = x @ layer.dense_weight().T + layer.bias.data
        assert np.allclose(layer(Tensor(x)).data, expected, atol=1e-8)


class TestBlockCirculantLinearBackward:
    def test_input_gradient_matches_dense(self, rng):
        layer = BlockCirculantLinear(10, 6, 4, rng=rng)
        x = Tensor(rng.normal(size=(3, 10)), requires_grad=True)
        g = rng.normal(size=(3, 6))
        layer(x).backward(g)
        assert np.allclose(x.grad, g @ layer.dense_weight(), atol=1e-9)

    def test_weight_gradient_numerical(self, rng):
        layer = BlockCirculantLinear(6, 8, 4, rng=rng)
        x_data = rng.normal(size=(3, 6))
        g = rng.normal(size=(3, 8))
        layer(Tensor(x_data)).backward(g)

        def loss(w):
            dense = BlockCirculantMatrix(w, rows=8, cols=6).to_dense()
            return float(np.sum(g * (x_data @ dense.T + layer.bias.data)))

        numeric = numerical_gradient(loss, layer.weight.data)
        assert np.allclose(layer.weight.grad, numeric, atol=1e-4)

    def test_bias_gradient(self, rng):
        layer = BlockCirculantLinear(8, 5, 4, rng=rng)
        g = rng.normal(size=(4, 5))
        layer(Tensor(rng.normal(size=(4, 8)))).backward(g)
        assert np.allclose(layer.bias.grad, g.sum(axis=0))

    def test_training_reduces_loss(self, rng):
        # One SGD step along the computed gradient must reduce the loss —
        # the end-to-end sanity check of Algorithm 2.
        from repro.nn import SGD

        layer = BlockCirculantLinear(12, 8, 4, rng=rng)
        x = rng.normal(size=(16, 12))
        target = rng.normal(size=(16, 8))

        def loss_value():
            out = layer(Tensor(x))
            return float(((out.data - target) ** 2).mean())

        optimizer = SGD(layer.parameters(), lr=0.05)
        before = loss_value()
        for _ in range(5):
            optimizer.zero_grad()
            out = layer(Tensor(x))
            loss = ((out - Tensor(target)) ** 2).mean()
            loss.backward()
            optimizer.step()
        assert loss_value() < before


class TestFromDense:
    def test_projection_round_trip_exact(self, rng):
        source = BlockCirculantLinear(8, 12, 4, rng=rng)
        rebuilt = BlockCirculantLinear.from_dense(
            source.dense_weight(), 4, bias=source.bias.data
        )
        x = rng.normal(size=(2, 8))
        assert np.allclose(
            rebuilt(Tensor(x)).data, source(Tensor(x)).data, atol=1e-9
        )

    def test_bias_shape_check(self, rng):
        with pytest.raises(ValueError):
            BlockCirculantLinear.from_dense(
                rng.normal(size=(4, 4)), 2, bias=rng.normal(size=3)
            )

    def test_rejects_1d_weight(self, rng):
        with pytest.raises(ValueError):
            BlockCirculantLinear.from_dense(rng.normal(size=4), 2)

    def test_as_matrix_view(self, rng):
        layer = BlockCirculantLinear(6, 9, 3, rng=rng)
        matrix = layer.as_matrix()
        assert matrix.shape == (9, 6)
        assert np.allclose(matrix.to_dense(), layer.dense_weight())
