"""Tests for loss functions."""

import numpy as np
import pytest

from repro.nn import CrossEntropyLoss, MSELoss, NLLLoss, Tensor
from repro.nn.functional import log_softmax


class TestCrossEntropyLoss:
    def test_uniform_logits_give_log_classes(self):
        loss = CrossEntropyLoss()(Tensor(np.zeros((4, 10))), np.zeros(4, dtype=int))
        assert loss.item() == pytest.approx(np.log(10))

    def test_perfect_prediction_near_zero(self):
        logits = np.full((3, 5), -100.0)
        labels = np.array([0, 2, 4])
        logits[np.arange(3), labels] = 100.0
        loss = CrossEntropyLoss()(Tensor(logits), labels)
        assert loss.item() == pytest.approx(0.0, abs=1e-8)

    def test_matches_manual_computation(self, rng):
        logits = rng.normal(size=(6, 4))
        labels = rng.integers(0, 4, size=6)
        shifted = logits - logits.max(axis=1, keepdims=True)
        log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        expected = -log_probs[np.arange(6), labels].mean()
        loss = CrossEntropyLoss()(Tensor(logits), labels)
        assert loss.item() == pytest.approx(expected)

    def test_gradient_is_softmax_minus_onehot(self, rng):
        logits_data = rng.normal(size=(5, 3))
        labels = rng.integers(0, 3, size=5)
        logits = Tensor(logits_data, requires_grad=True)
        CrossEntropyLoss()(logits, labels).backward()
        shifted = np.exp(logits_data - logits_data.max(axis=1, keepdims=True))
        soft = shifted / shifted.sum(axis=1, keepdims=True)
        onehot = np.eye(3)[labels]
        assert np.allclose(logits.grad, (soft - onehot) / 5, atol=1e-10)

    def test_extreme_logits_stable(self):
        logits = Tensor(np.array([[1e4, -1e4], [-1e4, 1e4]]), requires_grad=True)
        loss = CrossEntropyLoss()(logits, np.array([0, 1]))
        assert np.isfinite(loss.item())
        loss.backward()
        assert np.all(np.isfinite(logits.grad))

    def test_label_validation(self, rng):
        logits = Tensor(rng.normal(size=(3, 4)))
        with pytest.raises(ValueError):
            CrossEntropyLoss()(logits, np.array([0, 1, 4]))
        with pytest.raises(ValueError):
            CrossEntropyLoss()(logits, np.array([0, 1]))

    def test_rejects_1d_logits(self, rng):
        with pytest.raises(ValueError):
            CrossEntropyLoss()(Tensor(rng.normal(size=4)), np.array([1]))


class TestNLLLoss:
    def test_consistent_with_cross_entropy(self, rng):
        logits = rng.normal(size=(4, 6))
        labels = rng.integers(0, 6, size=4)
        ce = CrossEntropyLoss()(Tensor(logits), labels).item()
        nll = NLLLoss()(log_softmax(Tensor(logits)), labels).item()
        assert ce == pytest.approx(nll)

    def test_rejects_bad_labels(self, rng):
        with pytest.raises(ValueError):
            NLLLoss()(Tensor(rng.normal(size=(2, 3))), np.array([0, 3]))


class TestMSELoss:
    def test_zero_for_identical(self, rng):
        x = rng.normal(size=(3, 4))
        assert MSELoss()(Tensor(x), Tensor(x.copy())).item() == 0.0

    def test_matches_numpy(self, rng):
        a = rng.normal(size=(4, 5))
        b = rng.normal(size=(4, 5))
        assert MSELoss()(Tensor(a), Tensor(b)).item() == pytest.approx(
            ((a - b) ** 2).mean()
        )

    def test_gradient(self, rng):
        a_data = rng.normal(size=(2, 3))
        b = rng.normal(size=(2, 3))
        a = Tensor(a_data, requires_grad=True)
        MSELoss()(a, Tensor(b)).backward()
        assert np.allclose(a.grad, 2 * (a_data - b) / 6)

    def test_shape_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            MSELoss()(Tensor(rng.normal(size=(2, 3))), Tensor(rng.normal(size=(3, 2))))
