"""Tests for classification metrics."""

import numpy as np
import pytest

from repro.nn import Tensor, accuracy, confusion_matrix, top_k_accuracy


class TestAccuracy:
    def test_perfect(self):
        logits = np.eye(4) * 10
        assert accuracy(logits, np.arange(4)) == 1.0

    def test_none_correct(self):
        logits = np.eye(2) * 10
        assert accuracy(logits, np.array([1, 0])) == 0.0

    def test_partial(self):
        logits = np.array([[5.0, 0.0], [5.0, 0.0], [0.0, 5.0], [0.0, 5.0]])
        assert accuracy(logits, np.array([0, 1, 1, 0])) == 0.5

    def test_accepts_tensor(self, rng):
        logits = Tensor(rng.normal(size=(4, 3)))
        labels = rng.integers(0, 3, size=4)
        assert 0.0 <= accuracy(logits, labels) <= 1.0

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError):
            accuracy(rng.normal(size=(4, 3)), np.zeros(5, dtype=int))
        with pytest.raises(ValueError):
            accuracy(rng.normal(size=4), np.zeros(4, dtype=int))


class TestTopK:
    def test_top1_equals_accuracy(self, rng):
        logits = rng.normal(size=(10, 5))
        labels = rng.integers(0, 5, size=10)
        assert top_k_accuracy(logits, labels, 1) == accuracy(logits, labels)

    def test_top_all_is_one(self, rng):
        logits = rng.normal(size=(6, 4))
        labels = rng.integers(0, 4, size=6)
        assert top_k_accuracy(logits, labels, 4) == 1.0

    def test_monotone_in_k(self, rng):
        logits = rng.normal(size=(50, 6))
        labels = rng.integers(0, 6, size=50)
        scores = [top_k_accuracy(logits, labels, k) for k in range(1, 7)]
        assert all(a <= b for a, b in zip(scores, scores[1:]))

    def test_k_validation(self, rng):
        logits = rng.normal(size=(4, 3))
        with pytest.raises(ValueError):
            top_k_accuracy(logits, np.zeros(4, dtype=int), 0)
        with pytest.raises(ValueError):
            top_k_accuracy(logits, np.zeros(4, dtype=int), 4)


class TestConfusionMatrix:
    def test_diagonal_for_perfect(self):
        logits = np.eye(3) * 10
        matrix = confusion_matrix(logits, np.arange(3), 3)
        assert np.array_equal(matrix, np.eye(3, dtype=int))

    def test_counts_sum_to_samples(self, rng):
        logits = rng.normal(size=(40, 5))
        labels = rng.integers(0, 5, size=40)
        assert confusion_matrix(logits, labels, 5).sum() == 40

    def test_off_diagonal_entry(self):
        logits = np.array([[0.0, 10.0]])  # predicts class 1
        matrix = confusion_matrix(logits, np.array([0]), 2)
        assert matrix[0, 1] == 1

    def test_row_sums_are_class_counts(self, rng):
        logits = rng.normal(size=(30, 4))
        labels = rng.integers(0, 4, size=30)
        matrix = confusion_matrix(logits, labels, 4)
        assert np.array_equal(matrix.sum(axis=1), np.bincount(labels, minlength=4))
