"""Tests for optimizers and LR schedules."""

import numpy as np
import pytest

from repro.nn import SGD, Adam, ExponentialLR, Parameter, StepLR


def quadratic_param(rng):
    """A parameter whose loss is ||p - target||^2."""
    param = Parameter(rng.normal(size=5))
    target = rng.normal(size=5)
    return param, target


def step_quadratic(optimizer, param, target):
    optimizer.zero_grad()
    param.grad = 2.0 * (param.data - target)
    optimizer.step()


class TestSGD:
    def test_vanilla_step(self):
        param = Parameter(np.array([1.0]))
        opt = SGD([param], lr=0.1)
        param.grad = np.array([2.0])
        opt.step()
        assert param.data[0] == pytest.approx(0.8)

    def test_converges_on_quadratic(self, rng):
        param, target = quadratic_param(rng)
        opt = SGD([param], lr=0.1)
        for _ in range(100):
            step_quadratic(opt, param, target)
        assert np.allclose(param.data, target, atol=1e-6)

    def test_momentum_accelerates(self, rng):
        errors = {}
        for momentum in (0.0, 0.9):
            param = Parameter(np.full(5, 10.0))
            target = np.zeros(5)
            opt = SGD([param], lr=0.01, momentum=momentum)
            for _ in range(50):
                step_quadratic(opt, param, target)
            errors[momentum] = np.abs(param.data).max()
        assert errors[0.9] < errors[0.0]

    def test_weight_decay_shrinks(self):
        param = Parameter(np.array([1.0]))
        opt = SGD([param], lr=0.1, weight_decay=0.5)
        param.grad = np.array([0.0])
        opt.step()
        assert param.data[0] == pytest.approx(0.95)

    def test_nesterov_requires_momentum(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(2))], lr=0.1, nesterov=True)

    def test_nesterov_converges(self, rng):
        param, target = quadratic_param(rng)
        opt = SGD([param], lr=0.02, momentum=0.9, nesterov=True)
        for _ in range(200):
            step_quadratic(opt, param, target)
        assert np.allclose(param.data, target, atol=1e-5)

    def test_skips_params_without_grad(self):
        param = Parameter(np.array([1.0]))
        opt = SGD([param], lr=0.1)
        opt.step()  # no grad set
        assert param.data[0] == 1.0

    def test_zero_grad(self):
        param = Parameter(np.array([1.0]))
        opt = SGD([param], lr=0.1)
        param.grad = np.array([1.0])
        opt.zero_grad()
        assert param.grad is None

    def test_validation(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.0)
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.1, momentum=1.0)
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.1, weight_decay=-1.0)


class TestAdam:
    def test_converges_on_quadratic(self, rng):
        param, target = quadratic_param(rng)
        opt = Adam([param], lr=0.1)
        for _ in range(300):
            step_quadratic(opt, param, target)
        assert np.allclose(param.data, target, atol=1e-4)

    def test_first_step_size_is_lr(self):
        # With bias correction, |first update| == lr regardless of grad scale.
        param = Parameter(np.array([0.0]))
        opt = Adam([param], lr=0.05)
        param.grad = np.array([1234.5])
        opt.step()
        assert abs(param.data[0]) == pytest.approx(0.05, rel=1e-4)

    def test_weight_decay(self):
        param = Parameter(np.array([10.0]))
        opt = Adam([param], lr=0.1, weight_decay=0.1)
        for _ in range(50):
            param.grad = np.array([0.0])
            opt.step()
        assert abs(param.data[0]) < 10.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], lr=0.1, betas=(1.0, 0.9))


class TestSchedulers:
    def test_step_lr(self):
        opt = SGD([Parameter(np.zeros(1))], lr=1.0)
        sched = StepLR(opt, step_size=2, gamma=0.1)
        lrs = []
        for _ in range(5):
            sched.step()
            lrs.append(opt.lr)
        assert lrs == pytest.approx([1.0, 0.1, 0.1, 0.01, 0.01])

    def test_exponential_lr(self):
        opt = SGD([Parameter(np.zeros(1))], lr=2.0)
        sched = ExponentialLR(opt, gamma=0.5)
        sched.step()
        assert opt.lr == pytest.approx(1.0)
        sched.step()
        assert opt.lr == pytest.approx(0.5)

    def test_validation(self):
        opt = SGD([Parameter(np.zeros(1))], lr=1.0)
        with pytest.raises(ValueError):
            StepLR(opt, step_size=0)
        with pytest.raises(ValueError):
            ExponentialLR(opt, gamma=1.5)
