"""Tests for stateless NN operations (activations, softmax, im2col, pooling)."""

import numpy as np
import pytest

import repro.nn.functional as F
from repro.nn import Tensor


def numerical_gradient(f, x, eps=1e-6):
    grad = np.zeros_like(x)
    base = f(x)
    it = np.nditer(x, flags=["multi_index"])
    for _ in it:
        idx = it.multi_index
        bumped = x.copy()
        bumped[idx] += eps
        grad[idx] = (f(bumped) - base) / eps
    return grad


class TestActivations:
    def test_relu_values(self):
        out = F.relu(Tensor([-1.0, 0.0, 2.0]))
        assert np.allclose(out.data, [0.0, 0.0, 2.0])

    def test_relu_grad(self, rng):
        data = rng.normal(size=(4, 4))
        x = Tensor(data, requires_grad=True)
        F.relu(x).sum().backward()
        assert np.allclose(x.grad, (data > 0).astype(float))

    def test_leaky_relu_values(self):
        out = F.leaky_relu(Tensor([-2.0, 3.0]), negative_slope=0.1)
        assert np.allclose(out.data, [-0.2, 3.0])

    def test_leaky_relu_grad(self, rng):
        data = rng.normal(size=6)
        x = Tensor(data, requires_grad=True)
        F.leaky_relu(x, 0.2).sum().backward()
        assert np.allclose(x.grad, np.where(data > 0, 1.0, 0.2))

    def test_sigmoid_range_and_symmetry(self, rng):
        data = rng.normal(size=10) * 5
        out = F.sigmoid(Tensor(data)).data
        assert np.all((out > 0) & (out < 1))
        assert np.allclose(
            F.sigmoid(Tensor(-data)).data, 1.0 - out, atol=1e-12
        )

    def test_sigmoid_extreme_inputs_stable(self):
        out = F.sigmoid(Tensor([-1000.0, 1000.0])).data
        assert np.all(np.isfinite(out))
        assert out[0] == pytest.approx(0.0, abs=1e-12)
        assert out[1] == pytest.approx(1.0, abs=1e-12)

    def test_sigmoid_grad_numerical(self, rng):
        data = rng.normal(size=5)
        x = Tensor(data, requires_grad=True)
        F.sigmoid(x).sum().backward()
        numeric = numerical_gradient(
            lambda d: F.sigmoid(Tensor(d)).sum().item(), data
        )
        assert np.allclose(x.grad, numeric, atol=1e-4)

    def test_tanh_matches_numpy(self, rng):
        data = rng.normal(size=7)
        assert np.allclose(F.tanh(Tensor(data)).data, np.tanh(data))


class TestSoftmax:
    def test_sums_to_one(self, rng):
        out = F.softmax(Tensor(rng.normal(size=(4, 6)))).data
        assert np.allclose(out.sum(axis=-1), 1.0)

    def test_shift_invariance(self, rng):
        data = rng.normal(size=(3, 5))
        assert np.allclose(
            F.softmax(Tensor(data)).data,
            F.softmax(Tensor(data + 100.0)).data,
        )

    def test_extreme_logits_stable(self):
        out = F.softmax(Tensor([[1000.0, 0.0, -1000.0]])).data
        assert np.all(np.isfinite(out))
        assert out[0, 0] == pytest.approx(1.0)

    def test_grad_numerical(self, rng):
        data = rng.normal(size=(2, 4))
        x = Tensor(data, requires_grad=True)
        weights = rng.normal(size=(2, 4))
        (F.softmax(x) * Tensor(weights)).sum().backward()
        numeric = numerical_gradient(
            lambda d: float((F.softmax(Tensor(d)).data * weights).sum()), data
        )
        assert np.allclose(x.grad, numeric, atol=1e-4)

    def test_log_softmax_is_log_of_softmax(self, rng):
        data = rng.normal(size=(3, 5))
        assert np.allclose(
            F.log_softmax(Tensor(data)).data,
            np.log(F.softmax(Tensor(data)).data),
        )

    def test_log_softmax_grad_numerical(self, rng):
        data = rng.normal(size=(2, 3))
        x = Tensor(data, requires_grad=True)
        F.log_softmax(x).sum().backward()
        numeric = numerical_gradient(
            lambda d: float(F.log_softmax(Tensor(d)).data.sum()), data
        )
        assert np.allclose(x.grad, numeric, atol=1e-4)

    def test_axis_argument(self, rng):
        data = rng.normal(size=(3, 4))
        out = F.softmax(Tensor(data), axis=0).data
        assert np.allclose(out.sum(axis=0), 1.0)


class TestDropout:
    def test_eval_mode_is_identity(self, rng):
        x = Tensor(rng.normal(size=(10, 10)))
        out = F.dropout(x, 0.5, training=False)
        assert out is x

    def test_zero_probability_is_identity(self, rng):
        x = Tensor(rng.normal(size=(4,)))
        assert F.dropout(x, 0.0, training=True) is x

    def test_scaling_preserves_expectation(self):
        x = Tensor(np.ones((200, 200)))
        out = F.dropout(x, 0.3, training=True, rng=np.random.default_rng(0))
        assert out.data.mean() == pytest.approx(1.0, abs=0.02)

    def test_drop_fraction(self):
        x = Tensor(np.ones(100_000))
        out = F.dropout(x, 0.25, training=True, rng=np.random.default_rng(0))
        assert (out.data == 0).mean() == pytest.approx(0.25, abs=0.01)

    def test_grad_masks_match_forward(self, rng):
        x = Tensor(rng.normal(size=1000), requires_grad=True)
        out = F.dropout(x, 0.5, training=True, rng=np.random.default_rng(1))
        out.sum().backward()
        dropped = out.data == 0
        assert np.allclose(x.grad[dropped], 0.0)
        assert np.allclose(x.grad[~dropped], 2.0)

    def test_invalid_probability(self, rng):
        with pytest.raises(ValueError):
            F.dropout(Tensor(rng.normal(size=3)), 1.0, training=True)


class TestOneHot:
    def test_basic(self):
        out = F.one_hot(np.array([0, 2, 1]), 3)
        assert np.allclose(out, np.eye(3)[[0, 2, 1]])

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            F.one_hot(np.array([3]), 3)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            F.one_hot(np.zeros((2, 2), dtype=int), 3)


class TestIm2col:
    def test_shape(self, rng):
        cols = F.im2col(rng.normal(size=(2, 3, 8, 8)), kernel=3)
        assert cols.shape == (2, 36, 27)

    def test_stride_and_padding_shapes(self, rng):
        cols = F.im2col(rng.normal(size=(1, 1, 8, 8)), kernel=3, stride=2, padding=1)
        assert cols.shape == (1, 16, 9)

    def test_values_match_manual_window(self, rng):
        x = rng.normal(size=(1, 2, 5, 5))
        cols = F.im2col(x, kernel=3)
        # Window at position (1, 2), channel 1, kernel offset (2, 0).
        position = 1 * 3 + 2
        column = 1 * 9 + 2 * 3 + 0
        assert cols[0, position, column] == pytest.approx(x[0, 1, 1 + 2, 2 + 0])

    def test_conv_equivalence(self, rng):
        # im2col @ flattened filter == direct convolution (paper Fig. 3).
        from scipy.signal import correlate2d

        x = rng.normal(size=(1, 2, 6, 6))
        w = rng.normal(size=(2, 3, 3))
        cols = F.im2col(x, kernel=3)
        result = (cols @ w.reshape(-1)).reshape(4, 4)
        expected = sum(
            correlate2d(x[0, c], w[c], mode="valid") for c in range(2)
        )
        assert np.allclose(result, expected)

    def test_col2im_is_adjoint(self, rng):
        # <im2col(x), y> == <x, col2im(y)> defines the exact adjoint.
        x = rng.normal(size=(2, 3, 6, 7))
        y = rng.normal(size=(2, 20, 27))
        lhs = np.sum(F.im2col(x, 3) * y)
        rhs = np.sum(x * F.col2im(y, x.shape, 3))
        assert lhs == pytest.approx(rhs)

    def test_col2im_adjoint_with_stride_padding(self, rng):
        x = rng.normal(size=(1, 2, 8, 8))
        cols_shape = F.im2col(x, 3, stride=2, padding=1).shape
        y = rng.normal(size=cols_shape)
        lhs = np.sum(F.im2col(x, 3, stride=2, padding=1) * y)
        rhs = np.sum(x * F.col2im(y, x.shape, 3, stride=2, padding=1))
        assert lhs == pytest.approx(rhs)

    def test_rejects_3d_input(self, rng):
        with pytest.raises(ValueError):
            F.im2col(rng.normal(size=(3, 8, 8)), 3)

    def test_kernel_too_large(self, rng):
        with pytest.raises(ValueError):
            F.im2col(rng.normal(size=(1, 1, 4, 4)), kernel=5)

    def test_col2im_shape_check(self, rng):
        with pytest.raises(ValueError):
            F.col2im(rng.normal(size=(1, 4, 9)), (1, 1, 5, 5), kernel=3)


class TestPooling:
    def test_max_pool_values(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = F.max_pool2d(Tensor(x), 2).data
        assert np.allclose(out[0, 0], [[5, 7], [13, 15]])

    def test_max_pool_grad(self):
        x = Tensor(np.arange(16, dtype=float).reshape(1, 1, 4, 4),
                   requires_grad=True)
        F.max_pool2d(x, 2).sum().backward()
        expected = np.zeros((4, 4))
        expected[1, 1] = expected[1, 3] = expected[3, 1] = expected[3, 3] = 1.0
        assert np.allclose(x.grad[0, 0], expected)

    def test_avg_pool_values(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = F.avg_pool2d(Tensor(x), 2).data
        assert np.allclose(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_avg_pool_grad_uniform(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 6, 6)), requires_grad=True)
        F.avg_pool2d(x, 3).sum().backward()
        assert np.allclose(x.grad, 1.0 / 9.0)

    def test_strided_pooling_shape(self, rng):
        out = F.max_pool2d(Tensor(rng.normal(size=(1, 1, 7, 7))), 3, stride=2)
        assert out.shape == (1, 1, 3, 3)

    def test_rejects_non_4d(self, rng):
        with pytest.raises(ValueError):
            F.max_pool2d(Tensor(rng.normal(size=(4, 4))), 2)
