"""Tests for Module, Parameter, and Sequential."""

import numpy as np
import pytest

from repro.nn import (
    BlockCirculantLinear,
    Dropout,
    Linear,
    Module,
    Parameter,
    ReLU,
    Sequential,
    Tensor,
)


class TinyModule(Module):
    def __init__(self):
        super().__init__()
        self.weight = Parameter(np.ones(3))
        self.child = Sequential(Linear(3, 2, rng=np.random.default_rng(0)))

    def forward(self, x):
        return self.child(x * self.weight)


class TestParameterRegistration:
    def test_parameter_always_requires_grad(self):
        assert Parameter(np.zeros(3)).requires_grad

    def test_parameters_are_discovered(self):
        module = TinyModule()
        names = dict(module.named_parameters())
        assert "weight" in names
        assert "child.0.weight" in names
        assert "child.0.bias" in names

    def test_parameters_no_duplicates(self):
        module = TinyModule()
        params = list(module.parameters())
        assert len(params) == len({id(p) for p in params})

    def test_parameter_count(self):
        module = TinyModule()
        assert module.parameter_count() == 3 + 3 * 2 + 2

    def test_zero_grad_clears_all(self):
        module = TinyModule()
        out = module(Tensor(np.ones((2, 3))))
        out.sum().backward()
        assert any(p.grad is not None for p in module.parameters())
        module.zero_grad()
        assert all(p.grad is None for p in module.parameters())


class TestModes:
    def test_train_eval_propagates(self):
        model = Sequential(Dropout(0.5), ReLU())
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_dropout_respects_eval(self, rng):
        model = Sequential(Dropout(0.9))
        model.eval()
        x = rng.normal(size=(4, 4))
        assert np.allclose(model(Tensor(x)).data, x)


class TestStateDict:
    def test_round_trip(self, rng):
        a = Sequential(Linear(4, 3, rng=rng), ReLU(), Linear(3, 2, rng=rng))
        b = Sequential(
            Linear(4, 3, rng=np.random.default_rng(7)),
            ReLU(),
            Linear(3, 2, rng=np.random.default_rng(8)),
        )
        b.load_state_dict(a.state_dict())
        x = rng.normal(size=(5, 4))
        assert np.allclose(a(Tensor(x)).data, b(Tensor(x)).data)

    def test_state_dict_is_a_copy(self, rng):
        model = Sequential(Linear(2, 2, rng=rng))
        state = model.state_dict()
        state["0.weight"][...] = 0.0
        assert not np.allclose(model[0].weight.data, 0.0)

    def test_missing_key_raises(self, rng):
        model = Sequential(Linear(2, 2, rng=rng))
        with pytest.raises(KeyError):
            model.load_state_dict({})

    def test_unexpected_key_raises(self, rng):
        model = Sequential(Linear(2, 2, rng=rng))
        state = model.state_dict()
        state["bogus"] = np.zeros(1)
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_shape_mismatch_raises(self, rng):
        model = Sequential(Linear(2, 2, rng=rng))
        state = model.state_dict()
        state["0.weight"] = np.zeros((3, 3))
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_block_circulant_state_round_trip(self, rng):
        a = Sequential(BlockCirculantLinear(8, 8, 4, rng=rng))
        b = Sequential(BlockCirculantLinear(8, 8, 4, rng=np.random.default_rng(3)))
        b.load_state_dict(a.state_dict())
        x = rng.normal(size=(2, 8))
        assert np.allclose(a(Tensor(x)).data, b(Tensor(x)).data)


class TestSequential:
    def test_applies_in_order(self, rng):
        model = Sequential(Linear(4, 4, rng=rng), ReLU())
        x = rng.normal(size=(3, 4))
        assert np.all(model(Tensor(x)).data >= 0)

    def test_len_iter_getitem(self, rng):
        layers = [Linear(2, 2, rng=rng), ReLU(), Linear(2, 2, rng=rng)]
        model = Sequential(*layers)
        assert len(model) == 3
        assert list(model) == layers
        assert model[1] is layers[1]

    def test_rejects_non_module(self):
        with pytest.raises(TypeError):
            Sequential(lambda x: x)

    def test_forward_base_class_raises(self):
        with pytest.raises(NotImplementedError):
            Module().forward(Tensor([1.0]))

    def test_call_coerces_numpy(self, rng):
        model = Sequential(Linear(3, 2, rng=rng))
        out = model(rng.normal(size=(2, 3)))
        assert isinstance(out, Tensor)
