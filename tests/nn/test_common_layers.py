"""Tests for activations-as-modules, pooling modules, dropout, flatten,
and batch normalization."""

import numpy as np
import pytest

from repro.nn import (
    AvgPool2d,
    BatchNorm1d,
    BatchNorm2d,
    Dropout,
    Flatten,
    LeakyReLU,
    MaxPool2d,
    ReLU,
    Sigmoid,
    Softmax,
    Tanh,
    Tensor,
)


class TestActivationModules:
    def test_relu(self, rng):
        x = rng.normal(size=(3, 4))
        assert np.allclose(ReLU()(Tensor(x)).data, np.maximum(x, 0))

    def test_leaky_relu(self, rng):
        x = rng.normal(size=(3, 4))
        out = LeakyReLU(0.3)(Tensor(x)).data
        assert np.allclose(out, np.where(x > 0, x, 0.3 * x))

    def test_sigmoid(self, rng):
        x = rng.normal(size=5)
        assert np.allclose(Sigmoid()(Tensor(x)).data, 1 / (1 + np.exp(-x)))

    def test_tanh(self, rng):
        x = rng.normal(size=5)
        assert np.allclose(Tanh()(Tensor(x)).data, np.tanh(x))

    def test_softmax_module(self, rng):
        out = Softmax()(Tensor(rng.normal(size=(2, 5)))).data
        assert np.allclose(out.sum(axis=-1), 1.0)

    def test_reprs(self):
        assert repr(ReLU()) == "ReLU()"
        assert "0.3" in repr(LeakyReLU(0.3))


class TestDropoutModule:
    def test_train_mode_drops(self, rng):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        out = layer(Tensor(np.ones((100, 100))))
        assert (out.data == 0).any()

    def test_eval_mode_identity(self, rng):
        layer = Dropout(0.5)
        layer.eval()
        x = rng.normal(size=(5, 5))
        assert np.allclose(layer(Tensor(x)).data, x)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestFlatten:
    def test_flattens_conv_output(self, rng):
        x = rng.normal(size=(2, 3, 4, 5))
        assert Flatten()(Tensor(x)).shape == (2, 60)

    def test_preserves_batch(self, rng):
        x = rng.normal(size=(7, 3))
        assert Flatten()(Tensor(x)).shape == (7, 3)

    def test_rejects_unbatched(self, rng):
        with pytest.raises(ValueError):
            Flatten()(Tensor(rng.normal(size=5)))

    def test_grad_flows(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        Flatten()(x).sum().backward()
        assert x.grad.shape == (2, 3, 4)


class TestPoolingModules:
    def test_maxpool_shape(self, rng):
        out = MaxPool2d(2)(Tensor(rng.normal(size=(1, 2, 8, 8))))
        assert out.shape == (1, 2, 4, 4)

    def test_maxpool_custom_stride(self, rng):
        out = MaxPool2d(3, stride=1)(Tensor(rng.normal(size=(1, 1, 5, 5))))
        assert out.shape == (1, 1, 3, 3)

    def test_avgpool_values(self):
        x = np.ones((1, 1, 4, 4))
        assert np.allclose(AvgPool2d(2)(Tensor(x)).data, 1.0)

    def test_rejects_bad_kernel(self):
        with pytest.raises(ValueError):
            MaxPool2d(0)


class TestBatchNorm1d:
    def test_normalizes_in_training(self, rng):
        bn = BatchNorm1d(6)
        x = rng.normal(loc=4.0, scale=3.0, size=(64, 6))
        out = bn(Tensor(x)).data
        assert np.allclose(out.mean(axis=0), 0.0, atol=1e-8)
        assert np.allclose(out.std(axis=0), 1.0, atol=1e-2)

    def test_running_stats_converge(self, rng):
        bn = BatchNorm1d(3, momentum=0.5)
        for _ in range(40):
            bn(Tensor(rng.normal(loc=2.0, size=(128, 3))))
        assert np.allclose(bn.running_mean, 2.0, atol=0.2)

    def test_eval_uses_running_stats(self, rng):
        bn = BatchNorm1d(3)
        for _ in range(20):
            bn(Tensor(rng.normal(loc=1.0, size=(64, 3))))
        bn.eval()
        x = rng.normal(loc=1.0, size=(8, 3))
        out = bn(Tensor(x)).data
        expected = (x - bn.running_mean) / np.sqrt(bn.running_var + bn.eps)
        assert np.allclose(out, expected)

    def test_gamma_beta_affect_output(self, rng):
        bn = BatchNorm1d(2)
        bn.gamma.data = np.array([2.0, 3.0])
        bn.beta.data = np.array([1.0, -1.0])
        out = bn(Tensor(rng.normal(size=(32, 2)))).data
        assert out[:, 0].std() == pytest.approx(2.0, rel=0.1)
        assert out[:, 1].mean() == pytest.approx(-1.0, abs=0.1)

    def test_gradients_flow_to_gamma_beta(self, rng):
        bn = BatchNorm1d(4)
        out = bn(Tensor(rng.normal(size=(16, 4)), requires_grad=True))
        out.sum().backward()
        assert bn.gamma.grad is not None
        assert np.allclose(bn.beta.grad, 16.0)

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError):
            BatchNorm1d(3)(Tensor(rng.normal(size=(2, 4))))
        with pytest.raises(ValueError):
            BatchNorm1d(3)(Tensor(rng.normal(size=(2, 3, 4, 4))))

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            BatchNorm1d(0)
        with pytest.raises(ValueError):
            BatchNorm1d(3, momentum=0.0)


class TestBatchNorm2d:
    def test_normalizes_per_channel(self, rng):
        bn = BatchNorm2d(3)
        x = rng.normal(loc=5.0, scale=2.0, size=(8, 3, 6, 6))
        out = bn(Tensor(x)).data
        assert np.allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-8)
        assert np.allclose(out.std(axis=(0, 2, 3)), 1.0, atol=1e-2)

    def test_channel_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            BatchNorm2d(3)(Tensor(rng.normal(size=(2, 4, 5, 5))))

    def test_eval_mode(self, rng):
        bn = BatchNorm2d(2)
        for _ in range(10):
            bn(Tensor(rng.normal(size=(16, 2, 4, 4))))
        bn.eval()
        x = rng.normal(size=(4, 2, 4, 4))
        out = bn(Tensor(x)).data
        assert out.shape == x.shape
        assert np.all(np.isfinite(out))
