"""Tests for training callbacks and gradient clipping."""

import numpy as np
import pytest

from repro.nn import (
    BestWeightsKeeper,
    EarlyStopping,
    Linear,
    Parameter,
    Sequential,
    clip_grad_norm,
)
from repro.nn.trainer import EpochStats


def stats(epoch, val_accuracy):
    return EpochStats(
        epoch=epoch, train_loss=1.0, train_accuracy=0.5, val_loss=1.0,
        val_accuracy=val_accuracy,
    )


class TestClipGradNorm:
    def test_no_clip_below_threshold(self):
        param = Parameter(np.zeros(4))
        param.grad = np.array([0.1, 0.1, 0.1, 0.1])
        norm = clip_grad_norm([param], max_norm=10.0)
        assert norm == pytest.approx(0.2)
        assert np.allclose(param.grad, 0.1)

    def test_clips_to_max_norm(self):
        param = Parameter(np.zeros(3))
        param.grad = np.array([3.0, 4.0, 0.0])  # norm 5
        clip_grad_norm([param], max_norm=1.0)
        assert np.linalg.norm(param.grad) == pytest.approx(1.0, rel=1e-6)
        # Direction preserved.
        assert param.grad[0] / param.grad[1] == pytest.approx(0.75)

    def test_global_norm_across_params(self):
        a = Parameter(np.zeros(1))
        b = Parameter(np.zeros(1))
        a.grad = np.array([3.0])
        b.grad = np.array([4.0])
        norm = clip_grad_norm([a, b], max_norm=5.0)
        assert norm == pytest.approx(5.0)
        assert np.allclose(a.grad, 3.0)  # exactly at threshold: untouched

    def test_skips_gradless_params(self):
        a = Parameter(np.zeros(2))
        assert clip_grad_norm([a], max_norm=1.0) == 0.0

    def test_rejects_bad_norm(self):
        with pytest.raises(ValueError):
            clip_grad_norm([], max_norm=0.0)


class TestEarlyStopping:
    def test_stops_after_patience(self):
        stopper = EarlyStopping(patience=2)
        stopper(stats(1, 0.8))
        stopper(stats(2, 0.7))
        assert not stopper.should_stop
        stopper(stats(3, 0.7))
        assert stopper.should_stop
        assert stopper.best_epoch == 1

    def test_improvement_resets_counter(self):
        stopper = EarlyStopping(patience=2)
        stopper(stats(1, 0.5))
        stopper(stats(2, 0.4))
        stopper(stats(3, 0.6))  # improvement
        stopper(stats(4, 0.5))
        assert not stopper.should_stop
        assert stopper.best_score == 0.6

    def test_min_delta(self):
        stopper = EarlyStopping(patience=1, min_delta=0.05)
        stopper(stats(1, 0.50))
        stopper(stats(2, 0.52))  # below min_delta: counts as stale
        assert stopper.should_stop

    def test_requires_validation(self):
        stopper = EarlyStopping()
        with pytest.raises(ValueError):
            stopper(EpochStats(1, 1.0, 0.5))

    def test_validation_of_args(self):
        with pytest.raises(ValueError):
            EarlyStopping(patience=0)
        with pytest.raises(ValueError):
            EarlyStopping(min_delta=-1.0)


class TestBestWeightsKeeper:
    def test_restores_best(self, rng):
        model = Sequential(Linear(2, 2, rng=rng))
        keeper = BestWeightsKeeper(model)
        model[0].weight.data = np.full((2, 2), 1.0)
        keeper(stats(1, 0.9))
        model[0].weight.data = np.full((2, 2), 2.0)
        keeper(stats(2, 0.5))  # worse: not recorded
        keeper.restore()
        assert np.allclose(model[0].weight.data, 1.0)
        assert keeper.best_score == 0.9

    def test_restore_without_record_raises(self, rng):
        keeper = BestWeightsKeeper(Sequential(Linear(2, 2, rng=rng)))
        with pytest.raises(RuntimeError):
            keeper.restore()

    def test_requires_validation(self, rng):
        keeper = BestWeightsKeeper(Sequential(Linear(2, 2, rng=rng)))
        with pytest.raises(ValueError):
            keeper(EpochStats(1, 1.0, 0.5))

    def test_integrates_with_trainer(self, rng):
        from repro.data import ArrayDataset, DataLoader
        from repro.nn import SGD, CrossEntropyLoss, Trainer

        x = rng.normal(size=(64, 4))
        y = (x[:, 0] > 0).astype(int)
        dataset = ArrayDataset(x, y)
        loader = DataLoader(dataset, batch_size=16, shuffle=True, seed=0)
        model = Sequential(Linear(4, 2, rng=rng))
        keeper = BestWeightsKeeper(model)
        trainer = Trainer(
            model, CrossEntropyLoss(), SGD(model.parameters(), lr=0.1),
            on_epoch_end=keeper,
        )
        trainer.fit(loader, epochs=3, val_loader=loader)
        keeper.restore()
        assert keeper.best_score is not None
