"""Tests for the training harness."""

import numpy as np
import pytest

from repro.data import ArrayDataset, DataLoader
from repro.nn import (
    SGD,
    Adam,
    BlockCirculantLinear,
    CrossEntropyLoss,
    Linear,
    ReLU,
    Sequential,
    StepLR,
    Trainer,
)
from repro.nn.trainer import predict_in_batches


def separable_dataset(rng, n=240, dim=8):
    x = rng.normal(size=(n, dim))
    w = rng.normal(size=dim)
    labels = (x @ w > 0).astype(int)
    return ArrayDataset(x, labels)


def make_model(rng):
    return Sequential(
        BlockCirculantLinear(8, 16, 4, rng=rng), ReLU(), Linear(16, 2, rng=rng)
    )


class TestTrainer:
    def test_fit_improves_accuracy(self, rng):
        dataset = separable_dataset(rng)
        loader = DataLoader(dataset, batch_size=32, shuffle=True, seed=0)
        model = make_model(rng)
        trainer = Trainer(model, CrossEntropyLoss(), Adam(model.parameters(), lr=0.01))
        history = trainer.fit(loader, epochs=15)
        assert history.final.train_accuracy > 0.9
        assert history.final.train_loss < history.epochs[0].train_loss

    def test_validation_tracking(self, rng):
        dataset = separable_dataset(rng)
        train_loader = DataLoader(dataset, batch_size=32, shuffle=True, seed=0)
        val_loader = DataLoader(separable_dataset(rng), batch_size=64)
        model = make_model(rng)
        trainer = Trainer(model, CrossEntropyLoss(), Adam(model.parameters(), lr=0.01))
        history = trainer.fit(train_loader, epochs=3, val_loader=val_loader)
        assert all(e.val_accuracy is not None for e in history.epochs)
        assert history.best_val_accuracy() >= history.epochs[0].val_accuracy - 1e-9

    def test_scheduler_steps_per_epoch(self, rng):
        dataset = separable_dataset(rng, n=64)
        loader = DataLoader(dataset, batch_size=32)
        model = make_model(rng)
        optimizer = SGD(model.parameters(), lr=1.0)
        scheduler = StepLR(optimizer, step_size=1, gamma=0.1)
        trainer = Trainer(model, CrossEntropyLoss(), optimizer, scheduler=scheduler)
        trainer.fit(loader, epochs=2)
        assert optimizer.lr == pytest.approx(0.01)

    def test_on_epoch_end_callback(self, rng):
        dataset = separable_dataset(rng, n=64)
        loader = DataLoader(dataset, batch_size=32)
        model = make_model(rng)
        seen = []
        trainer = Trainer(
            model,
            CrossEntropyLoss(),
            SGD(model.parameters(), lr=0.1),
            on_epoch_end=seen.append,
        )
        trainer.fit(loader, epochs=3)
        assert [s.epoch for s in seen] == [1, 2, 3]

    def test_evaluate_does_not_update(self, rng):
        dataset = separable_dataset(rng, n=64)
        loader = DataLoader(dataset, batch_size=32)
        model = make_model(rng)
        before = {k: v.copy() for k, v in model.state_dict().items()}
        trainer = Trainer(model, CrossEntropyLoss(), SGD(model.parameters(), lr=0.1))
        trainer.evaluate(loader)
        after = model.state_dict()
        assert all(np.array_equal(before[k], after[k]) for k in before)

    def test_rejects_zero_epochs(self, rng):
        dataset = separable_dataset(rng, n=32)
        loader = DataLoader(dataset, batch_size=32)
        model = make_model(rng)
        trainer = Trainer(model, CrossEntropyLoss(), SGD(model.parameters(), lr=0.1))
        with pytest.raises(ValueError):
            trainer.fit(loader, epochs=0)

    def test_history_final_empty_raises(self):
        from repro.nn.trainer import TrainingHistory

        with pytest.raises(ValueError):
            TrainingHistory().final


class TestPredictInBatches:
    def test_matches_single_pass(self, rng):
        model = make_model(rng)
        x = rng.normal(size=(70, 8))
        from repro.nn import Tensor

        model.eval()
        expected = model(Tensor(x)).data
        model.train()
        batched = predict_in_batches(model, x, batch_size=16)
        assert np.allclose(batched, expected)

    def test_restores_training_mode(self, rng):
        model = make_model(rng)
        predict_in_batches(model, rng.normal(size=(4, 8)))
        assert model.training
