"""Tests for Conv2d and BlockCirculantConv2d (paper section IV-B)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.signal import correlate2d

from repro.nn import BlockCirculantConv2d, Conv2d, Tensor


def reference_conv(x, weight, bias, stride=1, padding=0):
    """Direct per-window convolution (paper Eqn. 5), any stride/padding."""
    batch, _, height, width = x.shape
    out_c, in_c, k, _ = weight.shape
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    out_h = (height + 2 * padding - k) // stride + 1
    out_w = (width + 2 * padding - k) // stride + 1
    out = np.zeros((batch, out_c, out_h, out_w))
    for n in range(batch):
        for p in range(out_c):
            acc = sum(
                correlate2d(x[n, c], weight[p, c], mode="valid")
                for c in range(in_c)
            )
            out[n, p] = acc[::stride, ::stride] + bias[p]
    return out


class TestConv2d:
    def test_matches_reference(self, rng):
        conv = Conv2d(3, 4, 3, rng=rng)
        x = rng.normal(size=(2, 3, 7, 6))
        expected = reference_conv(x, conv.weight.data, conv.bias.data)
        assert np.allclose(conv(Tensor(x)).data, expected, atol=1e-10)

    def test_stride(self, rng):
        conv = Conv2d(2, 3, 3, stride=2, rng=rng)
        x = rng.normal(size=(1, 2, 9, 9))
        expected = reference_conv(x, conv.weight.data, conv.bias.data, stride=2)
        assert np.allclose(conv(Tensor(x)).data, expected, atol=1e-10)

    def test_padding(self, rng):
        conv = Conv2d(2, 2, 3, padding=1, rng=rng)
        x = rng.normal(size=(1, 2, 5, 5))
        out = conv(Tensor(x))
        assert out.shape == (1, 2, 5, 5)
        expected = reference_conv(x, conv.weight.data, conv.bias.data, padding=1)
        assert np.allclose(out.data, expected, atol=1e-10)

    def test_output_shape_helper(self, rng):
        conv = Conv2d(3, 8, 5, stride=2, padding=2, rng=rng)
        assert conv.output_shape(16, 12) == (8, 8, 6)

    def test_no_bias(self, rng):
        conv = Conv2d(1, 1, 3, bias=False, rng=rng)
        assert conv.bias is None

    def test_channel_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            Conv2d(3, 4, 3, rng=rng)(Tensor(rng.normal(size=(1, 2, 6, 6))))

    def test_rejects_3d_input(self, rng):
        with pytest.raises(ValueError):
            Conv2d(3, 4, 3, rng=rng)(Tensor(rng.normal(size=(3, 6, 6))))

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            Conv2d(0, 4, 3)
        with pytest.raises(ValueError):
            Conv2d(3, 4, 3, padding=-1)

    def test_input_gradient_numerical(self, rng):
        conv = Conv2d(2, 3, 3, rng=rng)
        x_data = rng.normal(size=(1, 2, 5, 5))
        g = rng.normal(size=(1, 3, 3, 3))
        x = Tensor(x_data, requires_grad=True)
        conv(x).backward(g)

        def loss(d):
            return float(np.sum(g * conv(Tensor(d)).data))

        grad = np.zeros_like(x_data)
        eps = 1e-6
        base = loss(x_data)
        it = np.nditer(x_data, flags=["multi_index"])
        for _ in it:
            idx = it.multi_index
            bumped = x_data.copy()
            bumped[idx] += eps
            grad[idx] = (loss(bumped) - base) / eps
        assert np.allclose(x.grad, grad, atol=1e-4)

    def test_weight_gradient_numerical(self, rng):
        conv = Conv2d(1, 2, 2, rng=rng)
        x = rng.normal(size=(2, 1, 4, 4))
        g = rng.normal(size=(2, 2, 3, 3))
        conv(Tensor(x)).backward(g)
        saved = conv.weight.data.copy()
        eps = 1e-6
        base = float(np.sum(g * reference_conv(x, saved, conv.bias.data)))
        grad = np.zeros_like(saved)
        it = np.nditer(saved, flags=["multi_index"])
        for _ in it:
            idx = it.multi_index
            bumped = saved.copy()
            bumped[idx] += eps
            grad[idx] = (
                float(np.sum(g * reference_conv(x, bumped, conv.bias.data))) - base
            ) / eps
        assert np.allclose(conv.weight.grad, grad, atol=1e-4)

    def test_bias_gradient(self, rng):
        conv = Conv2d(1, 3, 3, rng=rng)
        g = rng.normal(size=(2, 3, 2, 2))
        conv(Tensor(rng.normal(size=(2, 1, 4, 4)))).backward(g)
        assert np.allclose(conv.bias.grad, g.sum(axis=(0, 2, 3)))


class TestBlockCirculantConv2d:
    @pytest.mark.parametrize(
        "in_c,out_c,block", [(4, 6, 2), (3, 8, 4), (6, 6, 3), (2, 2, 2), (5, 7, 3)]
    )
    def test_matches_dense_expansion(self, rng, in_c, out_c, block):
        bcc = BlockCirculantConv2d(in_c, out_c, 3, block_size=block, rng=rng)
        dense = Conv2d(in_c, out_c, 3, rng=rng)
        dense.weight.data = bcc.dense_weight()
        dense.bias.data = bcc.bias.data.copy()
        x = rng.normal(size=(2, in_c, 6, 5))
        assert np.allclose(
            bcc(Tensor(x)).data, dense(Tensor(x)).data, atol=1e-9
        )

    def test_stride_padding_match_dense(self, rng):
        bcc = BlockCirculantConv2d(4, 4, 3, block_size=2, stride=2, padding=1, rng=rng)
        dense = Conv2d(4, 4, 3, stride=2, padding=1, rng=rng)
        dense.weight.data = bcc.dense_weight()
        dense.bias.data = bcc.bias.data.copy()
        x = rng.normal(size=(1, 4, 8, 8))
        assert np.allclose(bcc(Tensor(x)).data, dense(Tensor(x)).data, atol=1e-9)

    def test_per_position_slices_are_circulant(self, rng):
        # Paper Eqn. 6: each F(i, j, :, :) slice must be (block-)circulant.
        from repro.structured import BlockCirculantMatrix

        bcc = BlockCirculantConv2d(4, 4, 3, block_size=4, rng=rng)
        weight = bcc.dense_weight()  # (P, C, r, r)
        for i in range(3):
            for j in range(3):
                slice_pc = weight[:, :, i, j]  # (P, C)
                projected = BlockCirculantMatrix.from_dense(slice_pc, 4)
                assert np.allclose(projected.to_dense(), slice_pc, atol=1e-9)

    def test_input_gradient_matches_dense(self, rng):
        bcc = BlockCirculantConv2d(4, 6, 3, block_size=2, rng=rng)
        dense = Conv2d(4, 6, 3, rng=rng)
        dense.weight.data = bcc.dense_weight()
        dense.bias.data = bcc.bias.data.copy()
        x_data = rng.normal(size=(2, 4, 6, 6))
        g = rng.normal(size=(2, 6, 4, 4))
        x1 = Tensor(x_data, requires_grad=True)
        x2 = Tensor(x_data, requires_grad=True)
        bcc(x1).backward(g)
        dense(x2).backward(g)
        assert np.allclose(x1.grad, x2.grad, atol=1e-9)

    def test_weight_gradient_numerical(self, rng):
        bcc = BlockCirculantConv2d(2, 2, 2, block_size=2, rng=rng)
        x = rng.normal(size=(1, 2, 4, 4))
        g = rng.normal(size=(1, 2, 3, 3))
        bcc(Tensor(x)).backward(g)
        saved = bcc.weight.data.copy()
        eps = 1e-6

        def loss(w):
            bcc.weight.data = w
            value = float(np.sum(g * bcc(Tensor(x)).data))
            bcc.weight.data = saved
            return value

        base = loss(saved)
        grad = np.zeros_like(saved)
        it = np.nditer(saved, flags=["multi_index"])
        for _ in it:
            idx = it.multi_index
            bumped = saved.copy()
            bumped[idx] += eps
            grad[idx] = (loss(bumped) - base) / eps
        assert np.allclose(bcc.weight.grad, grad, atol=1e-4)

    def test_bias_gradient(self, rng):
        bcc = BlockCirculantConv2d(2, 4, 3, block_size=2, rng=rng)
        g = rng.normal(size=(2, 4, 2, 2))
        bcc(Tensor(rng.normal(size=(2, 2, 4, 4)))).backward(g)
        assert np.allclose(bcc.bias.grad, g.sum(axis=(0, 2, 3)))

    def test_compression_ratio(self, rng):
        bcc = BlockCirculantConv2d(8, 8, 3, block_size=4, rng=rng)
        assert bcc.compression_ratio == pytest.approx(4.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            BlockCirculantConv2d(4, 4, 3, block_size=0)
        with pytest.raises(ValueError):
            BlockCirculantConv2d(4, 4, 3, block_size=8)
        with pytest.raises(ValueError):
            BlockCirculantConv2d(0, 4, 3, block_size=2)

    def test_channel_mismatch_raises(self, rng):
        layer = BlockCirculantConv2d(4, 4, 3, block_size=2, rng=rng)
        with pytest.raises(ValueError):
            layer(Tensor(rng.normal(size=(1, 3, 6, 6))))

    @given(
        st.integers(1, 5),
        st.integers(1, 5),
        st.integers(1, 3),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=15, deadline=None)
    def test_property_matches_dense(self, in_c, out_c, block, seed):
        local = np.random.default_rng(seed)
        block = min(block, max(in_c, out_c))
        bcc = BlockCirculantConv2d(in_c, out_c, 2, block_size=block, rng=local)
        dense = Conv2d(in_c, out_c, 2, rng=local)
        dense.weight.data = bcc.dense_weight()
        dense.bias.data = bcc.bias.data.copy()
        x = local.normal(size=(1, in_c, 4, 4))
        assert np.allclose(
            bcc(Tensor(x)).data, dense(Tensor(x)).data, atol=1e-8
        )
