"""BLAS-backed contraction kernels vs their einsum reference forms."""

import numpy as np
import pytest

from repro.fft import rfft
from repro.structured import (
    block_circulant_backward_batch,
    block_circulant_backward_batch_einsum,
    block_circulant_forward_batch,
    block_circulant_forward_batch_einsum,
    block_circulant_matvec,
    block_circulant_to_dense,
    block_circulant_transpose_matvec,
)

GRIDS = [
    (1, 1, 4),
    (2, 3, 4),  # ragged p != q
    (5, 2, 8),
    (3, 3, 16),
    (4, 7, 6),  # non-power-of-two block
]


@pytest.mark.parametrize("p,q,b", GRIDS)
@pytest.mark.parametrize("batch", [1, 2, 9])
class TestForwardEquivalence:
    def test_matches_einsum_real_weights(self, p, q, b, batch, rng):
        spectra = rfft(rng.normal(size=(p, q, b)))
        x_blocks = rng.normal(size=(batch, q, b))
        fast = block_circulant_forward_batch(spectra, x_blocks)
        ref = block_circulant_forward_batch_einsum(spectra, x_blocks)
        assert np.allclose(fast, ref, atol=1e-10)

    def test_matches_einsum_complex_spectra(self, p, q, b, batch, rng):
        # Arbitrary (non-Hermitian) spectra: the contraction itself must
        # agree even when the spectra did not come from real weights.
        nb = b // 2 + 1
        spectra = rng.normal(size=(p, q, nb)) + 1j * rng.normal(size=(p, q, nb))
        x_blocks = rng.normal(size=(batch, q, b))
        fast = block_circulant_forward_batch(spectra, x_blocks)
        ref = block_circulant_forward_batch_einsum(spectra, x_blocks)
        assert np.allclose(fast, ref, atol=1e-10)


@pytest.mark.parametrize("p,q,b", GRIDS)
@pytest.mark.parametrize("batch", [1, 2, 9])
class TestBackwardEquivalence:
    def test_matches_einsum(self, p, q, b, batch, rng):
        spectra = rfft(rng.normal(size=(p, q, b)))
        x_blocks = rng.normal(size=(batch, q, b))
        grad_blocks = rng.normal(size=(batch, p, b))
        fast_w, fast_x = block_circulant_backward_batch(
            spectra, x_blocks, grad_blocks
        )
        ref_w, ref_x = block_circulant_backward_batch_einsum(
            spectra, x_blocks, grad_blocks
        )
        assert np.allclose(fast_w, ref_w, atol=1e-10)
        assert np.allclose(fast_x, ref_x, atol=1e-10)

    def test_matches_einsum_complex_spectra(self, p, q, b, batch, rng):
        nb = b // 2 + 1
        spectra = rng.normal(size=(p, q, nb)) + 1j * rng.normal(size=(p, q, nb))
        x_blocks = rng.normal(size=(batch, q, b))
        grad_blocks = rng.normal(size=(batch, p, b))
        fast = block_circulant_backward_batch(spectra, x_blocks, grad_blocks)
        ref = block_circulant_backward_batch_einsum(
            spectra, x_blocks, grad_blocks
        )
        for fast_part, ref_part in zip(fast, ref):
            assert np.allclose(fast_part, ref_part, atol=1e-10)


@pytest.mark.parametrize("p,q,b", GRIDS)
class TestMatvecSpectraArgument:
    def test_matvec_accepts_precomputed_spectra(self, p, q, b, rng):
        weights = rng.normal(size=(p, q, b))
        x = rng.normal(size=(q * b,))
        spectra = rfft(weights)
        without = block_circulant_matvec(weights, x)
        with_spectra = block_circulant_matvec(weights, x, weight_spectra=spectra)
        dense = block_circulant_to_dense(weights) @ x
        assert np.allclose(without, with_spectra, atol=1e-10)
        assert np.allclose(with_spectra, dense, atol=1e-10)

    def test_transpose_matvec_accepts_precomputed_spectra(self, p, q, b, rng):
        weights = rng.normal(size=(p, q, b))
        y = rng.normal(size=(p * b,))
        spectra = rfft(weights)
        without = block_circulant_transpose_matvec(weights, y)
        with_spectra = block_circulant_transpose_matvec(
            weights, y, weight_spectra=spectra
        )
        dense = block_circulant_to_dense(weights).T @ y
        assert np.allclose(without, with_spectra, atol=1e-10)
        assert np.allclose(with_spectra, dense, atol=1e-10)
