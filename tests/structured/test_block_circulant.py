"""Tests for BlockCirculantMatrix (paper section IV)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ShapeError
from repro.structured import BlockCirculantMatrix


class TestConstruction:
    def test_shape_and_grid(self, rng):
        m = BlockCirculantMatrix.random(10, 6, 4, rng=rng)
        assert m.shape == (10, 6)
        assert m.grid == (3, 2)
        assert m.block_size == 4
        assert m.padded_shape == (12, 8)

    def test_exact_multiple_needs_no_padding(self, rng):
        m = BlockCirculantMatrix.random(8, 12, 4, rng=rng)
        assert m.shape == m.padded_shape

    def test_rejects_bad_grid_shape(self, rng):
        with pytest.raises(ShapeError):
            BlockCirculantMatrix(rng.normal(size=(2, 3)))

    def test_rejects_inconsistent_rows(self, rng):
        weights = rng.normal(size=(2, 2, 4))
        with pytest.raises(ShapeError):
            BlockCirculantMatrix(weights, rows=3)  # needs 1 block, given 2

    def test_rejects_nonpositive_dims(self, rng):
        with pytest.raises(ShapeError):
            BlockCirculantMatrix.random(0, 4, 2, rng=rng)

    def test_parameter_count(self, rng):
        m = BlockCirculantMatrix.random(16, 16, 4, rng=rng)
        assert m.parameter_count == 4 * 4 * 4
        assert m.compression_ratio == pytest.approx(4.0)

    def test_paper_single_column_layout(self, rng):
        # The paper's W = [C_1 | ... | C_k]^T: m = k*n, one block column.
        m = BlockCirculantMatrix.random(12, 4, 4, rng=rng)
        assert m.grid == (3, 1)

    def test_block_weights_copy(self, rng):
        m = BlockCirculantMatrix.random(4, 4, 4, rng=rng)
        weights = m.block_weights
        weights[...] = 0.0
        assert not np.allclose(m.block_weights, 0.0)

    def test_constructor_copies_caller_array(self, rng):
        # The matrix owns its weights: mutating the source array after
        # construction must not leak into products (the lazy spectra
        # cache assumes the defining vectors never change).
        source = rng.normal(size=(2, 2, 4))
        m = BlockCirculantMatrix(source)
        x = rng.normal(size=8)
        before = m.matvec(x)
        source[...] = 0.0
        assert np.allclose(m.matvec(x), before, atol=1e-12)
        assert np.allclose(m.to_dense() @ x, before, atol=1e-10)


class TestProducts:
    @pytest.mark.parametrize(
        "rows,cols,block", [(8, 8, 4), (10, 6, 4), (7, 13, 3), (5, 5, 8), (4, 4, 1)]
    )
    def test_matvec_matches_dense(self, rng, rows, cols, block):
        m = BlockCirculantMatrix.random(rows, cols, block, rng=rng)
        x = rng.normal(size=cols)
        assert np.allclose(m.matvec(x), m.to_dense() @ x)

    @pytest.mark.parametrize("rows,cols,block", [(8, 8, 4), (10, 6, 4), (7, 13, 3)])
    def test_rmatvec_matches_dense(self, rng, rows, cols, block):
        m = BlockCirculantMatrix.random(rows, cols, block, rng=rng)
        y = rng.normal(size=rows)
        assert np.allclose(m.rmatvec(y), m.to_dense().T @ y)

    def test_matvec_shape_check(self, rng):
        m = BlockCirculantMatrix.random(8, 6, 2, rng=rng)
        with pytest.raises(ShapeError):
            m.matvec(rng.normal(size=8))

    def test_matmul_matrix(self, rng):
        m = BlockCirculantMatrix.random(6, 4, 2, rng=rng)
        other = rng.normal(size=(4, 3))
        assert np.allclose(m @ other, m.to_dense() @ other)

    def test_matmul_vector(self, rng):
        m = BlockCirculantMatrix.random(6, 4, 2, rng=rng)
        x = rng.normal(size=4)
        assert np.allclose(m @ x, m.to_dense() @ x)

    @given(
        st.integers(1, 12),
        st.integers(1, 12),
        st.integers(1, 6),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_matvec(self, rows, cols, block, seed):
        local = np.random.default_rng(seed)
        block = min(block, max(rows, cols))
        m = BlockCirculantMatrix.random(rows, cols, block, rng=local)
        x = local.normal(size=cols)
        assert np.allclose(m.matvec(x), m.to_dense() @ x, atol=1e-8)


class TestStructure:
    def test_transpose_matches_dense(self, rng):
        m = BlockCirculantMatrix.random(8, 12, 4, rng=rng)
        assert np.allclose(m.T.to_dense(), m.to_dense().T)

    def test_transpose_swaps_shape(self, rng):
        m = BlockCirculantMatrix.random(8, 12, 4, rng=rng)
        assert m.T.shape == (12, 8)

    def test_blocks_are_circulant(self, rng):
        from repro.structured import CirculantMatrix

        m = BlockCirculantMatrix.random(8, 8, 4, rng=rng)
        dense = m.to_dense()
        for i in range(2):
            for j in range(2):
                block = dense[i * 4 : (i + 1) * 4, j * 4 : (j + 1) * 4]
                CirculantMatrix.from_dense(block)  # raises if not circulant

    def test_from_dense_round_trip_exact_multiple(self, rng):
        original = BlockCirculantMatrix.random(8, 12, 4, rng=rng)
        dense = original.to_dense()
        rebuilt = BlockCirculantMatrix.from_dense(dense, 4)
        assert np.allclose(rebuilt.to_dense(), dense)

    def test_from_dense_is_projection(self, rng):
        # Projecting twice equals projecting once (idempotence).
        dense = rng.normal(size=(8, 8))
        once = BlockCirculantMatrix.from_dense(dense, 4).to_dense()
        twice = BlockCirculantMatrix.from_dense(once, 4).to_dense()
        assert np.allclose(once, twice)

    def test_from_dense_reduces_frobenius_error_vs_random(self, rng):
        # The projection must beat an arbitrary block-circulant matrix.
        dense = rng.normal(size=(8, 8))
        projected = BlockCirculantMatrix.from_dense(dense, 4).to_dense()
        competitor = BlockCirculantMatrix.random(8, 8, 4, rng=rng).to_dense()
        assert np.linalg.norm(dense - projected) <= np.linalg.norm(
            dense - competitor
        )

    def test_blockify_unblockify_round_trip(self, rng):
        m = BlockCirculantMatrix.random(8, 10, 4, rng=rng)
        x = rng.normal(size=(3, 10))
        blocks = m.blockify_input(x)
        assert blocks.shape == (3, 3, 4)
        restored = m.unblockify_output(
            m.blockify_input(rng.normal(size=(3, 8)))
        )
        assert restored.shape == (3, 8)

    def test_repr(self, rng):
        text = repr(BlockCirculantMatrix.random(8, 12, 4, rng=rng))
        assert "shape=(8, 12)" in text and "block_size=4" in text
