"""Tests for structured-matrix projections."""

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.structured import (
    BlockCirculantMatrix,
    CirculantMatrix,
    nearest_block_circulant,
    nearest_circulant,
    projection_error,
)


class TestNearestCirculant:
    def test_fixed_point_on_circulant(self, rng):
        dense = CirculantMatrix(rng.normal(size=6)).to_dense()
        assert np.allclose(nearest_circulant(dense).to_dense(), dense)

    def test_idempotent(self, rng):
        dense = rng.normal(size=(5, 5))
        once = nearest_circulant(dense).to_dense()
        assert np.allclose(nearest_circulant(once).to_dense(), once)

    def test_optimality_via_perturbation(self, rng):
        # No small perturbation of the defining vector may do better.
        dense = rng.normal(size=(5, 5))
        best = nearest_circulant(dense)
        base_error = np.linalg.norm(dense - best.to_dense())
        for _ in range(10):
            perturbed = CirculantMatrix(
                best.first_column + rng.normal(scale=0.01, size=5)
            )
            assert np.linalg.norm(dense - perturbed.to_dense()) >= base_error

    def test_residual_orthogonal_to_circulants(self, rng):
        # Projection residual must be Frobenius-orthogonal to the subspace.
        dense = rng.normal(size=(6, 6))
        residual = dense - nearest_circulant(dense).to_dense()
        probe = CirculantMatrix(rng.normal(size=6)).to_dense()
        assert abs(np.sum(residual * probe)) < 1e-8

    def test_rejects_rectangular(self, rng):
        with pytest.raises(ShapeError):
            nearest_circulant(rng.normal(size=(4, 5)))


class TestNearestBlockCirculant:
    def test_fixed_point(self, rng):
        dense = BlockCirculantMatrix.random(8, 8, 4, rng=rng).to_dense()
        projected = nearest_block_circulant(dense, 4)
        assert np.allclose(projected.to_dense(), dense)

    def test_block_size_one_is_identity(self, rng):
        dense = rng.normal(size=(5, 7))
        assert np.allclose(nearest_block_circulant(dense, 1).to_dense(), dense)

    def test_ragged_shapes(self, rng):
        dense = rng.normal(size=(7, 10))
        projected = nearest_block_circulant(dense, 4)
        assert projected.to_dense().shape == (7, 10)


class TestProjectionError:
    def test_zero_for_exact_structure(self, rng):
        dense = BlockCirculantMatrix.random(8, 8, 4, rng=rng).to_dense()
        assert projection_error(dense, 4) == pytest.approx(0.0, abs=1e-10)

    def test_monotone_in_block_size(self, rng):
        # Bigger blocks impose more structure, so error cannot decrease
        # when the block size divides evenly into the next.
        dense = rng.normal(size=(16, 16))
        errors = [projection_error(dense, b) for b in (1, 2, 4, 8, 16)]
        assert errors[0] == pytest.approx(0.0, abs=1e-12)
        assert all(e1 <= e2 + 1e-12 for e1, e2 in zip(errors, errors[1:]))

    def test_zero_matrix(self):
        assert projection_error(np.zeros((4, 4)), 2) == 0.0

    def test_bounded_by_one(self, rng):
        assert projection_error(rng.normal(size=(12, 12)), 6) <= 1.0
