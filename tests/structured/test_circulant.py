"""Tests for CirculantMatrix (paper section III-C)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ShapeError
from repro.structured import CirculantMatrix


def random_circulant(rng, n):
    return CirculantMatrix(rng.normal(size=n))


class TestConstruction:
    def test_dense_layout_matches_paper(self):
        # Paper section III-C displays column j as w rotated down by j.
        c = CirculantMatrix([1.0, 2.0, 3.0])
        expected = np.array([[1, 3, 2], [2, 1, 3], [3, 2, 1]], dtype=float)
        assert np.allclose(c.to_dense(), expected)

    def test_first_column_round_trip(self, rng):
        w = rng.normal(size=6)
        assert np.allclose(CirculantMatrix(w).to_dense()[:, 0], w)

    def test_rejects_empty(self):
        with pytest.raises(ShapeError):
            CirculantMatrix([])

    def test_rejects_2d(self, rng):
        with pytest.raises(ShapeError):
            CirculantMatrix(rng.normal(size=(3, 3)))

    def test_parameter_count_is_n(self, rng):
        assert random_circulant(rng, 9).parameter_count == 9

    def test_from_dense_exact(self, rng):
        dense = random_circulant(rng, 5).to_dense()
        assert np.allclose(CirculantMatrix.from_dense(dense).to_dense(), dense)

    def test_from_dense_rejects_noncirculant(self, rng):
        with pytest.raises(ShapeError):
            CirculantMatrix.from_dense(rng.normal(size=(4, 4)))

    def test_from_dense_rejects_rectangular(self, rng):
        with pytest.raises(ShapeError):
            CirculantMatrix.from_dense(rng.normal(size=(3, 4)))

    def test_immutability_of_first_column(self, rng):
        c = random_circulant(rng, 4)
        column = c.first_column
        column[0] = 999.0
        assert c.first_column[0] != 999.0


class TestProducts:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 7, 16])
    def test_matvec_matches_dense(self, rng, n):
        c = random_circulant(rng, n)
        x = rng.normal(size=n)
        assert np.allclose(c.matvec(x), c.to_dense() @ x)

    @pytest.mark.parametrize("n", [2, 5, 8])
    def test_rmatvec_matches_dense(self, rng, n):
        c = random_circulant(rng, n)
        y = rng.normal(size=n)
        assert np.allclose(c.rmatvec(y), c.to_dense().T @ y)

    def test_matmul_matrix_operand(self, rng):
        c = random_circulant(rng, 5)
        m = rng.normal(size=(5, 3))
        assert np.allclose(c @ m, c.to_dense() @ m)

    def test_matmul_shape_check(self, rng):
        with pytest.raises(ShapeError):
            random_circulant(rng, 4) @ rng.normal(size=(5, 2))

    def test_compose_matches_dense_product(self, rng):
        a = random_circulant(rng, 6)
        b = random_circulant(rng, 6)
        assert np.allclose((a @ b).to_dense(), a.to_dense() @ b.to_dense())

    def test_compose_commutes(self, rng):
        a = random_circulant(rng, 6)
        b = random_circulant(rng, 6)
        assert np.allclose((a @ b).to_dense(), (b @ a).to_dense())

    def test_compose_size_mismatch(self, rng):
        with pytest.raises(ShapeError):
            random_circulant(rng, 4).compose(random_circulant(rng, 5))

    @given(st.integers(1, 16), st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_property_matvec(self, n, seed):
        local = np.random.default_rng(seed)
        c = CirculantMatrix(local.normal(size=n))
        x = local.normal(size=n)
        assert np.allclose(c.matvec(x), c.to_dense() @ x, atol=1e-8)


class TestAlgebra:
    def test_eigenvalues_are_fft(self, rng):
        w = rng.normal(size=8)
        c = CirculantMatrix(w)
        assert np.allclose(c.eigenvalues(), np.fft.fft(w))

    def test_eigenvalues_match_dense(self, rng):
        c = random_circulant(rng, 6)
        ours = np.sort_complex(c.eigenvalues())
        dense = np.sort_complex(np.linalg.eigvals(c.to_dense()))
        assert np.allclose(ours, dense)

    def test_transpose(self, rng):
        c = random_circulant(rng, 7)
        assert np.allclose(c.T.to_dense(), c.to_dense().T)

    def test_double_transpose_is_identity(self, rng):
        c = random_circulant(rng, 5)
        assert np.allclose(c.T.T.to_dense(), c.to_dense())

    def test_inverse(self, rng):
        c = random_circulant(rng, 6)
        assert np.allclose(c.inverse().to_dense(), np.linalg.inv(c.to_dense()))

    def test_inverse_of_singular_raises(self):
        # All-ones circulant has rank 1.
        with pytest.raises(np.linalg.LinAlgError):
            CirculantMatrix(np.ones(4)).inverse()

    def test_solve(self, rng):
        c = random_circulant(rng, 9)
        x = rng.normal(size=9)
        assert np.allclose(c.solve(c.matvec(x)), x)

    def test_solve_singular_raises(self, rng):
        with pytest.raises(np.linalg.LinAlgError):
            CirculantMatrix(np.ones(4)).solve(rng.normal(size=4))

    def test_solve_shape_check(self, rng):
        with pytest.raises(ShapeError):
            random_circulant(rng, 4).solve(rng.normal(size=5))

    def test_determinant(self, rng):
        c = random_circulant(rng, 5)
        assert c.determinant() == pytest.approx(np.linalg.det(c.to_dense()))

    def test_addition(self, rng):
        a = random_circulant(rng, 6)
        b = random_circulant(rng, 6)
        assert np.allclose((a + b).to_dense(), a.to_dense() + b.to_dense())

    def test_subtraction(self, rng):
        a = random_circulant(rng, 6)
        b = random_circulant(rng, 6)
        assert np.allclose((a - b).to_dense(), a.to_dense() - b.to_dense())

    def test_scalar_multiplication(self, rng):
        c = random_circulant(rng, 6)
        assert np.allclose((2.5 * c).to_dense(), 2.5 * c.to_dense())
        assert np.allclose((c * 2.5).to_dense(), 2.5 * c.to_dense())

    def test_add_size_mismatch(self, rng):
        with pytest.raises(ShapeError):
            random_circulant(rng, 4) + random_circulant(rng, 5)

    def test_repr(self, rng):
        assert "n=6" in repr(random_circulant(rng, 6))
