"""Spectrum-cache semantics: hits across calls, invalidation on mutation."""

import numpy as np
import pytest

from repro.fft import rfft
from repro.nn import SGD, Adam, BlockCirculantConv2d, BlockCirculantLinear
from repro.nn.tensor import Tensor
from repro.structured import SpectrumCache


class TestSpectrumCache:
    def test_get_caches_across_calls(self):
        cache = SpectrumCache()
        weight = Tensor(np.arange(24.0).reshape(2, 3, 4))
        first = cache.get(weight)
        second = cache.get(weight)
        assert first is second
        assert cache.misses == 1 and cache.hits == 1
        assert np.allclose(first, rfft(weight.data), atol=1e-12)

    def test_data_rebind_invalidates(self):
        cache = SpectrumCache()
        weight = Tensor(np.ones((2, 2, 4)))
        stale = cache.get(weight)
        weight.data = np.full((2, 2, 4), 3.0)
        fresh = cache.get(weight)
        assert fresh is not stale
        assert np.allclose(fresh, rfft(weight.data), atol=1e-12)

    def test_bump_version_invalidates_after_inplace_write(self):
        cache = SpectrumCache()
        weight = Tensor(np.ones((2, 2, 4)))
        cache.get(weight)
        weight.data[...] = 5.0  # bypasses the setter
        weight.bump_version()
        assert np.allclose(cache.get(weight), rfft(weight.data), atol=1e-12)

    def test_cached_array_is_read_only(self):
        cache = SpectrumCache()
        weight = Tensor(np.ones((1, 1, 8)))
        spectra = cache.get(weight)
        with pytest.raises(ValueError):
            spectra[0, 0, 0] = 0.0

    def test_invalidate_forces_recompute(self):
        cache = SpectrumCache()
        weight = Tensor(np.ones((1, 2, 4)))
        first = cache.get(weight)
        cache.invalidate()
        assert cache.get(weight) is not first
        assert cache.misses == 2


class TestDtypeKeying:
    """fp32 and fp64 sessions must never share a wrong-precision spectrum."""

    def test_complex64_entry_is_distinct_and_rounded(self):
        cache = SpectrumCache()
        weight = Tensor(np.arange(24.0).reshape(2, 3, 4))
        wide = cache.get(weight)
        narrow = cache.get(weight, np.complex64)
        assert wide.dtype == np.complex128
        assert narrow.dtype == np.complex64
        assert narrow is not wide
        # Derived by one rounding from the double-precision base.
        assert np.array_equal(narrow, wide.astype(np.complex64))

    def test_each_dtype_cached_independently(self):
        cache = SpectrumCache()
        weight = Tensor(np.ones((2, 2, 4)))
        first = cache.get(weight, np.complex64)
        cache.get(weight)  # fp64 lookup in between
        assert cache.get(weight, np.complex64) is first

    def test_get_pair_dtype(self):
        cache = SpectrumCache()
        weight = Tensor(np.arange(16.0).reshape(2, 2, 4))
        spectra, fm = cache.get_pair(weight, np.complex64)
        assert spectra.dtype == np.complex64 and fm.dtype == np.complex64
        assert np.array_equal(fm, spectra.transpose(2, 0, 1))
        wide, wide_fm = cache.get_pair(weight)
        assert wide.dtype == np.complex128 and wide_fm.dtype == np.complex128

    def test_rebind_invalidates_every_dtype(self):
        cache = SpectrumCache()
        weight = Tensor(np.ones((2, 2, 4)))
        stale64 = cache.get(weight, np.complex64)
        stale128 = cache.get(weight)
        weight.data = np.full((2, 2, 4), 2.0)
        assert cache.get(weight, np.complex64) is not stale64
        assert cache.get(weight) is not stale128
        assert np.allclose(
            cache.get(weight), rfft(weight.data), atol=1e-12
        )

    def test_derived_dtype_is_read_only(self):
        cache = SpectrumCache()
        weight = Tensor(np.ones((1, 1, 8)))
        narrow = cache.get(weight, np.complex64)
        with pytest.raises(ValueError):
            narrow[0, 0, 0] = 0.0


class TestLayerCacheIntegration:
    def _layer(self):
        return BlockCirculantLinear(12, 8, 4, rng=np.random.default_rng(0))

    def test_repeated_forward_hits_cache(self):
        layer = self._layer()
        x = np.random.default_rng(1).normal(size=(3, 12))
        first = layer(x).data
        for _ in range(3):
            assert np.allclose(layer(x).data, first, atol=1e-12)
        assert layer._spectrum_cache.misses == 1
        assert layer._spectrum_cache.hits == 3

    @pytest.mark.parametrize("make_optimizer", [
        lambda params: SGD(params, lr=0.1),
        lambda params: Adam(params, lr=0.1),
    ])
    def test_optimizer_step_invalidates(self, make_optimizer):
        layer = self._layer()
        optimizer = make_optimizer(layer.parameters())
        x = np.random.default_rng(2).normal(size=(4, 12))
        layer(x).sum().backward()
        optimizer.step()
        # Post-step forward must use spectra of the *updated* weights:
        # compare against a fresh layer carrying the same weights.
        out = layer(x).data
        fresh = BlockCirculantLinear(12, 8, 4, bias=False)
        fresh.weight.data = layer.weight.data.copy()
        expected = fresh(x).data + layer.bias.data
        assert np.allclose(out, expected, atol=1e-10)
        assert layer._spectrum_cache.misses == 2

    def test_direct_weight_assignment_invalidates(self):
        layer = self._layer()
        x = np.random.default_rng(3).normal(size=(2, 12))
        layer(x)
        layer.weight.data = np.zeros_like(layer.weight.data)
        out = layer(x).data
        assert np.allclose(out, np.broadcast_to(layer.bias.data, out.shape),
                           atol=1e-12)

    def test_from_dense_projection_uses_fresh_spectra(self):
        rng = np.random.default_rng(4)
        dense = rng.normal(size=(8, 12))
        bias = rng.normal(size=8)
        layer = BlockCirculantLinear.from_dense(dense, block_size=4, bias=bias)
        x = rng.normal(size=(2, 12))
        expected = x @ layer.dense_weight().T + bias
        assert np.allclose(layer(x).data, expected, atol=1e-10)

    def test_load_state_dict_invalidates(self):
        layer = self._layer()
        x = np.random.default_rng(5).normal(size=(2, 12))
        before = layer(x).data
        other = BlockCirculantLinear(12, 8, 4, rng=np.random.default_rng(99))
        layer.load_state_dict(other.state_dict())
        after = layer(x).data
        assert not np.allclose(before, after)
        assert np.allclose(after, other(x).data, atol=1e-10)

    def test_replacing_the_parameter_object_invalidates(self):
        # A fresh Parameter restarts its version at 0; the cache must key
        # on the data array's identity too, not the counter alone.
        layer = self._layer()
        x = np.random.default_rng(8).normal(size=(2, 12))
        layer(x)
        from repro.nn.module import Parameter

        layer.weight = Parameter(layer.weight.data * 2.0)
        assert layer.weight.version == 0
        fresh = BlockCirculantLinear(12, 8, 4, bias=False)
        fresh.weight.data = layer.weight.data.copy()
        expected = fresh(x).data + layer.bias.data
        assert np.allclose(layer(x).data, expected, atol=1e-10)

    def test_conv_layer_caches_and_invalidates(self):
        layer = BlockCirculantConv2d(4, 4, 3, block_size=2, padding=1,
                                     rng=np.random.default_rng(6))
        x = np.random.default_rng(7).normal(size=(2, 4, 5, 5))
        first = layer(x).data
        layer(x)
        assert layer._spectrum_cache.misses == 1
        assert layer._spectrum_cache.hits == 1
        layer.weight.data = layer.weight.data * 2.0
        doubled = layer(x).data
        bias = layer.bias.data[None, :, None, None]
        assert np.allclose(doubled - bias, 2.0 * (first - bias), atol=1e-10)
        assert layer._spectrum_cache.misses == 2


class TestTensorVersion:
    def test_version_starts_at_zero_and_counts_rebinds(self):
        t = Tensor(np.zeros(3))
        assert t.version == 0
        t.data = np.ones(3)
        t.data = np.ones(3)
        assert t.version == 2

    def test_bump_version_is_manual_escape_hatch(self):
        t = Tensor(np.zeros(3))
        t.data[0] = 1.0
        assert t.version == 0  # in-place writes are invisible...
        t.bump_version()
        assert t.version == 1  # ...until declared
