"""Tests for the functional circulant kernels (Eqn. 3 / Algorithm 1-2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fft import rfft
from repro.structured import (
    BlockCirculantMatrix,
    CirculantMatrix,
    block_circulant_backward_batch,
    block_circulant_forward_batch,
    block_circulant_matvec,
    block_circulant_to_dense,
    block_circulant_transpose_matvec,
    blockify,
    circulant_gradients,
    circulant_matvec,
    circulant_transpose_matvec,
    unblockify,
)


def numerical_gradient(f, x, eps=1e-6):
    grad = np.zeros_like(x)
    base = f(x)
    it = np.nditer(x, flags=["multi_index"])
    for _ in it:
        idx = it.multi_index
        bumped = x.copy()
        bumped[idx] += eps
        grad[idx] = (f(bumped) - base) / eps
    return grad


class TestCirculantMatvec:
    def test_equals_eqn3(self, rng):
        # The paper's Eqn. 3: C x = IFFT(FFT(w) o FFT(x)).
        w, x = rng.normal(size=8), rng.normal(size=8)
        expected = np.fft.ifft(np.fft.fft(w) * np.fft.fft(x)).real
        assert np.allclose(circulant_matvec(w, x), expected)

    def test_matches_dense(self, rng):
        w, x = rng.normal(size=7), rng.normal(size=7)
        dense = CirculantMatrix(w).to_dense()
        assert np.allclose(circulant_matvec(w, x), dense @ x)

    def test_transpose_matches_dense(self, rng):
        w, y = rng.normal(size=7), rng.normal(size=7)
        dense = CirculantMatrix(w).to_dense()
        assert np.allclose(circulant_transpose_matvec(w, y), dense.T @ y)

    def test_shape_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            circulant_matvec(rng.normal(size=4), rng.normal(size=5))

    def test_batched_x(self, rng):
        w = rng.normal(size=6)
        x = rng.normal(size=(3, 6))
        dense = CirculantMatrix(w).to_dense()
        assert np.allclose(circulant_matvec(w, x), x @ dense.T)


class TestCirculantGradients:
    def test_grad_w_numerical(self, rng):
        n = 6
        w, x, g = rng.normal(size=n), rng.normal(size=n), rng.normal(size=n)
        grad_w, _ = circulant_gradients(w, x, g)
        numeric = numerical_gradient(
            lambda v: float(g @ (CirculantMatrix(v).to_dense() @ x)), w
        )
        assert np.allclose(grad_w, numeric, atol=1e-4)

    def test_grad_x_numerical(self, rng):
        n = 6
        w, x, g = rng.normal(size=n), rng.normal(size=n), rng.normal(size=n)
        _, grad_x = circulant_gradients(w, x, g)
        dense = CirculantMatrix(w).to_dense()
        numeric = numerical_gradient(lambda v: float(g @ (dense @ v)), x)
        assert np.allclose(grad_x, numeric, atol=1e-4)

    def test_grad_x_is_transpose_product(self, rng):
        n = 5
        w, x, g = rng.normal(size=n), rng.normal(size=n), rng.normal(size=n)
        _, grad_x = circulant_gradients(w, x, g)
        assert np.allclose(grad_x, CirculantMatrix(w).to_dense().T @ g)


class TestBlockify:
    def test_exact_multiple(self, rng):
        x = rng.normal(size=(2, 8))
        blocks = blockify(x, 4)
        assert blocks.shape == (2, 2, 4)
        assert np.allclose(blocks.reshape(2, 8), x)

    def test_padding(self, rng):
        x = rng.normal(size=7)
        blocks = blockify(x, 4)
        assert blocks.shape == (2, 4)
        assert np.allclose(blocks.reshape(-1)[:7], x)
        assert blocks.reshape(-1)[7] == 0.0

    def test_unblockify_round_trip(self, rng):
        x = rng.normal(size=(3, 11))
        assert np.allclose(unblockify(blockify(x, 4), 11), x)

    def test_unblockify_rejects_overflow(self, rng):
        with pytest.raises(ValueError):
            unblockify(rng.normal(size=(2, 4)), 9)

    def test_blockify_rejects_bad_block(self, rng):
        with pytest.raises(ValueError):
            blockify(rng.normal(size=8), 0)


class TestBlockCirculantKernels:
    def test_matvec_matches_dense(self, rng):
        weights = rng.normal(size=(3, 2, 4))
        dense = block_circulant_to_dense(weights)
        x = rng.normal(size=8)
        assert np.allclose(block_circulant_matvec(weights, x), dense @ x)

    def test_transpose_matvec_matches_dense(self, rng):
        weights = rng.normal(size=(3, 2, 4))
        dense = block_circulant_to_dense(weights)
        y = rng.normal(size=12)
        assert np.allclose(
            block_circulant_transpose_matvec(weights, y), dense.T @ y
        )

    def test_matvec_shape_checks(self, rng):
        weights = rng.normal(size=(2, 2, 4))
        with pytest.raises(ValueError):
            block_circulant_matvec(weights, rng.normal(size=9))
        with pytest.raises(ValueError):
            block_circulant_matvec(rng.normal(size=(2, 4)), rng.normal(size=8))

    def test_forward_batch_matches_dense(self, rng):
        weights = rng.normal(size=(2, 3, 4))
        dense = block_circulant_to_dense(weights)
        x = rng.normal(size=(5, 12))
        out = block_circulant_forward_batch(rfft(weights), x.reshape(5, 3, 4))
        assert np.allclose(out.reshape(5, 8), x @ dense.T)

    def test_backward_batch_grad_x(self, rng):
        weights = rng.normal(size=(2, 3, 4))
        dense = block_circulant_to_dense(weights)
        x = rng.normal(size=(5, 3, 4))
        g = rng.normal(size=(5, 2, 4))
        _, grad_x = block_circulant_backward_batch(rfft(weights), x, g)
        assert np.allclose(grad_x.reshape(5, 12), g.reshape(5, 8) @ dense)

    def test_backward_batch_grad_w_numerical(self, rng):
        weights = rng.normal(size=(2, 2, 3))
        x = rng.normal(size=(4, 2, 3))
        g = rng.normal(size=(4, 2, 3))
        grad_w, _ = block_circulant_backward_batch(rfft(weights), x, g)

        def loss(w):
            dense = block_circulant_to_dense(w)
            return float(np.sum(g.reshape(4, 6) * (x.reshape(4, 6) @ dense.T)))

        numeric = numerical_gradient(loss, weights)
        assert np.allclose(grad_w, numeric, atol=1e-4)

    @given(
        st.integers(1, 4),
        st.integers(1, 4),
        st.integers(1, 6),
        st.integers(1, 5),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_forward_batch(self, p, q, b, batch, seed):
        local = np.random.default_rng(seed)
        weights = local.normal(size=(p, q, b))
        dense = block_circulant_to_dense(weights)
        x = local.normal(size=(batch, q * b))
        out = block_circulant_forward_batch(rfft(weights), x.reshape(batch, q, b))
        assert np.allclose(out.reshape(batch, p * b), x @ dense.T, atol=1e-8)

    def test_to_dense_rejects_bad_shapes(self, rng):
        with pytest.raises(ValueError):
            block_circulant_to_dense(rng.normal(size=(2, 3)))


class TestForwardBatchDestinations:
    """out=/gemm_out=: caller-owned buffers, bitwise-identical values."""

    def test_out_and_gemm_out_bitwise(self, rng):
        weights = rng.normal(size=(3, 2, 8))
        x = rng.normal(size=(5, 2, 8))
        spectra = rfft(weights)
        reference = block_circulant_forward_batch(spectra, x)
        out = np.empty((5, 3, 8))
        gemm_out = np.empty((5, 3, 5), dtype=np.complex128)
        returned = block_circulant_forward_batch(
            spectra, x, out=out, gemm_out=gemm_out
        )
        assert returned is out
        assert np.array_equal(out, reference)

    def test_out_alone(self, rng):
        weights = rng.normal(size=(2, 4, 6))
        x = rng.normal(size=(3, 4, 6))
        spectra = rfft(weights)
        reference = block_circulant_forward_batch(spectra, x)
        out = np.empty((3, 2, 6))
        block_circulant_forward_batch(spectra, x, out=out)
        assert np.array_equal(out, reference)

    def test_gemm_out_with_weight_fm(self, rng):
        weights = rng.normal(size=(3, 2, 8))
        x = rng.normal(size=(4, 2, 8))
        spectra = rfft(weights)
        w_fm = np.ascontiguousarray(spectra.transpose(2, 0, 1))
        reference = block_circulant_forward_batch(spectra, x)
        gemm_out = np.empty((5, 3, 4), dtype=np.complex128)
        result = block_circulant_forward_batch(
            spectra, x, weight_fm=w_fm, gemm_out=gemm_out
        )
        assert np.array_equal(result, reference)
