"""Tests for the Toeplitz baseline (related work [18])."""

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.structured import ToeplitzMatrix


def random_toeplitz(rng, m, n):
    c = rng.normal(size=m)
    r = rng.normal(size=n)
    r[0] = c[0]
    return ToeplitzMatrix(c, r)


class TestConstruction:
    def test_dense_layout(self):
        t = ToeplitzMatrix([1.0, 2.0, 3.0], [1.0, 4.0])
        expected = np.array([[1, 4], [2, 1], [3, 2]], dtype=float)
        assert np.allclose(t.to_dense(), expected)

    def test_corner_mismatch_raises(self):
        with pytest.raises(ShapeError):
            ToeplitzMatrix([1.0, 2.0], [3.0, 4.0])

    def test_rejects_empty(self):
        with pytest.raises(ShapeError):
            ToeplitzMatrix([], [1.0])

    def test_parameter_count(self, rng):
        assert random_toeplitz(rng, 5, 7).parameter_count == 11

    def test_constant_diagonals(self, rng):
        dense = random_toeplitz(rng, 6, 6).to_dense()
        for offset in range(-5, 6):
            diagonal = np.diagonal(dense, offset)
            assert np.allclose(diagonal, diagonal[0])


class TestProducts:
    @pytest.mark.parametrize("m,n", [(1, 1), (4, 4), (6, 3), (3, 7), (8, 8)])
    def test_matvec_matches_dense(self, rng, m, n):
        t = random_toeplitz(rng, m, n)
        x = rng.normal(size=n)
        assert np.allclose(t.matvec(x), t.to_dense() @ x)

    @pytest.mark.parametrize("m,n", [(4, 4), (6, 3), (3, 7)])
    def test_rmatvec_matches_dense(self, rng, m, n):
        t = random_toeplitz(rng, m, n)
        y = rng.normal(size=m)
        assert np.allclose(t.rmatvec(y), t.to_dense().T @ y)

    def test_matvec_shape_check(self, rng):
        with pytest.raises(ShapeError):
            random_toeplitz(rng, 4, 3).matvec(rng.normal(size=4))

    def test_matmul_matrix(self, rng):
        t = random_toeplitz(rng, 5, 4)
        other = rng.normal(size=(4, 2))
        assert np.allclose(t @ other, t.to_dense() @ other)

    def test_transpose(self, rng):
        t = random_toeplitz(rng, 5, 3)
        assert np.allclose(t.T.to_dense(), t.to_dense().T)
        assert t.T.shape == (3, 5)

    def test_toeplitz_has_more_params_than_circulant(self, rng):
        # The paper's motivation for circulant over Toeplitz-like [18]:
        # n vs 2n - 1 parameters at the same size.
        from repro.structured import CirculantMatrix

        n = 8
        toeplitz = random_toeplitz(rng, n, n)
        circulant = CirculantMatrix(rng.normal(size=n))
        assert toeplitz.parameter_count == 2 * n - 1
        assert circulant.parameter_count == n
