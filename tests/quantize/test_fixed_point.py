"""Tests for fixed-point quantization."""

import numpy as np
import pytest

from repro.nn import Sequential, Tensor
from repro.quantize import (
    QFormat,
    choose_qformat,
    quantization_error,
    quantize_array,
    quantize_model,
)


class TestQFormat:
    def test_bit_accounting(self):
        fmt = QFormat(3, 4)
        assert fmt.total_bits == 8
        assert fmt.scale == pytest.approx(1.0 / 16)

    def test_range(self):
        fmt = QFormat(2, 5)  # Q2.5, 8 bits total
        assert fmt.max_value == pytest.approx((2**7 - 1) / 32)
        assert fmt.min_value == pytest.approx(-(2**7) / 32)

    def test_validation(self):
        with pytest.raises(ValueError):
            QFormat(-1, 4)


class TestChooseQFormat:
    def test_covers_peak(self, rng):
        values = rng.normal(scale=3.0, size=100)
        fmt = choose_qformat(values, 8)
        assert fmt.max_value >= np.abs(values).max() * 0.99
        assert fmt.total_bits == 8

    def test_small_values_get_fraction_bits(self, rng):
        values = rng.normal(scale=0.01, size=100)
        fmt = choose_qformat(values, 8)
        assert fmt.fraction_bits >= 6

    def test_zero_array(self):
        fmt = choose_qformat(np.zeros(4), 8)
        assert fmt.total_bits == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            choose_qformat(np.ones(3), 1)


class TestQuantizeArray:
    def test_grid_alignment(self):
        fmt = QFormat(2, 2)  # scale 0.25
        out = quantize_array(np.array([0.1, 0.3, 0.55]), fmt)
        assert np.allclose(out, [0.0, 0.25, 0.5])

    def test_saturation(self):
        fmt = QFormat(1, 2)
        out = quantize_array(np.array([100.0, -100.0]), fmt)
        assert out[0] == fmt.max_value
        assert out[1] == fmt.min_value

    def test_idempotent(self, rng):
        fmt = QFormat(3, 6)
        once = quantize_array(rng.normal(size=50), fmt)
        assert np.allclose(quantize_array(once, fmt), once)

    def test_error_bounded_by_half_lsb(self, rng):
        values = rng.uniform(-1, 1, size=200)
        fmt = choose_qformat(values, 12)
        error = np.abs(values - quantize_array(values, fmt))
        assert error.max() <= fmt.scale / 2 + 1e-12


class TestQuantizationError:
    def test_zero_for_exact(self):
        fmt = QFormat(3, 2)
        values = np.array([0.25, 0.5, 1.0])
        assert quantization_error(values, fmt) == pytest.approx(0.0)

    def test_decreases_with_bits(self, rng):
        values = rng.normal(size=500)
        errors = [
            quantization_error(values, choose_qformat(values, bits))
            for bits in (4, 8, 12, 16)
        ]
        assert all(a > b for a, b in zip(errors, errors[1:]))

    def test_zero_norm(self):
        assert quantization_error(np.zeros(5), QFormat(2, 2)) == 0.0


class TestQuantizeModel:
    def test_accuracy_preserved_at_12_bits(self, rng):
        from repro.io import build_model_from_string

        model = build_model_from_string("16-8CFb4-4F", rng=rng)
        x = rng.normal(size=(8, 16))
        before = model(Tensor(x)).data
        quantize_model(model, 12)
        after = model(Tensor(x)).data
        assert np.abs(after - before).max() < 0.1

    def test_returns_format_per_parameter(self, rng):
        from repro.io import build_model_from_string

        model = build_model_from_string("8-4F-2F", rng=rng)
        formats = quantize_model(model, 8)
        assert set(formats) == {name for name, _ in model.named_parameters()}

    def test_weights_on_grid(self, rng):
        from repro.io import build_model_from_string

        model = build_model_from_string("8-4F-2F", rng=rng)
        formats = quantize_model(model, 8)
        for name, param in model.named_parameters():
            fmt = formats[name]
            remainder = np.abs(param.data / fmt.scale - np.round(param.data / fmt.scale))
            assert remainder.max() < 1e-9

    def test_empty_model_raises(self):
        from repro.nn import ReLU

        with pytest.raises(ValueError):
            quantize_model(Sequential(ReLU()), 8)
