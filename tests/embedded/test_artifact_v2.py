"""Artifact format v2: round trips, v1 back compat, engine serving.

The satellite contract of the pipeline PR:

* v1 artifacts written by earlier releases still load **bitwise**,
* v2 save -> load -> ``InferenceSession`` matches the live model,
* a quantized v2 artifact serves end to end through ``Engine`` /
  ``InferenceServer`` within the documented parity bound
  (``10 x max_weight_error`` vs the float model; bitwise vs a local
  session on the same artifact).
"""

import asyncio
import json

import numpy as np
import pytest

from repro.embedded import DeployedModel
from repro.embedded.deploy import FORMAT_VERSION, LEGACY_FORMAT_VERSION
from repro.engine import Engine
from repro.exceptions import DeploymentError
from repro.io import build_model_from_string
from repro.runtime import InferenceSession
from repro.serving import AsyncServeClient, InferenceServer

PARITY_FACTOR = 10.0


@pytest.fixture
def fc_model(rng):
    model = build_model_from_string("16-8CFb4-8CFb4-4F", rng=rng)
    return model.eval()


@pytest.fixture
def conv_model(rng):
    model = build_model_from_string(
        "3x8x8-4Conv3-MP2-4CConv3b2-8CFb4-4F", rng=rng
    )
    return model.eval()


def save_v1_bytes_layout(deployed, path):
    """Write a v1 file exactly as the pre-v2 code did (reference)."""
    header = []
    arrays = {}
    for index, record in enumerate(deployed.records):
        meta = {}
        for key, value in record.items():
            if isinstance(value, np.ndarray):
                arrays[f"layer{index}_{key}"] = value
                meta[key] = f"@layer{index}_{key}"
            else:
                meta[key] = value
        header.append(meta)
    arrays["__header__"] = np.frombuffer(
        json.dumps({"version": 1, "layers": header}).encode(), dtype=np.uint8
    )
    np.savez(path, **arrays)


class TestV1BackCompat:
    def test_legacy_layout_loads_bitwise(self, tmp_path, rng, fc_model):
        # A file in the exact pre-v2 byte layout (no meta, version 1)
        # must keep loading with identical arrays.
        deployed = DeployedModel.from_model(fc_model)
        path = tmp_path / "legacy.npz"
        save_v1_bytes_layout(deployed, path)
        loaded = DeployedModel.load(path)
        assert loaded.source_version == LEGACY_FORMAT_VERSION
        x = rng.normal(size=(5, 16))
        assert np.array_equal(
            deployed.predict_proba(x), loaded.predict_proba(x)
        )
        for mine, theirs in zip(deployed.records, loaded.records):
            for key, value in mine.items():
                if isinstance(value, np.ndarray):
                    assert np.array_equal(value, theirs[key])

    def test_save_version_1_still_supported(self, tmp_path, fc_model):
        deployed = DeployedModel.from_model(fc_model)
        path = tmp_path / "v1.npz"
        deployed.save(path, version=1)
        loaded = DeployedModel.load(path)
        assert loaded.source_version == LEGACY_FORMAT_VERSION
        assert not loaded.metadata

    def test_quantized_refuses_v1(self, tmp_path, fc_model):
        deployed = DeployedModel.from_model(fc_model, quantize_bits=12)
        with pytest.raises(DeploymentError, match="v1"):
            deployed.save(tmp_path / "nope.npz", version=1)

    def test_unknown_version_rejected(self, tmp_path, fc_model):
        deployed = DeployedModel.from_model(fc_model)
        with pytest.raises(DeploymentError, match="version"):
            deployed.save(tmp_path / "nope.npz", version=3)


class TestV2RoundTrip:
    def test_float_round_trip_bitwise(self, tmp_path, rng, fc_model):
        deployed = DeployedModel.from_model(fc_model)
        deployed.metadata = {"provenance": {"config_hash": "abc"}}
        path = tmp_path / "v2.npz"
        deployed.save(path)
        loaded = DeployedModel.load(path)
        assert loaded.source_version == FORMAT_VERSION
        assert loaded.metadata == deployed.metadata
        x = rng.normal(size=(6, 16))
        assert np.array_equal(
            deployed.predict_proba(x), loaded.predict_proba(x)
        )

    def test_quantized_round_trip_bitwise(self, tmp_path, rng, fc_model):
        deployed = DeployedModel.from_model(fc_model, quantize_bits=12)
        path = tmp_path / "q.npz"
        deployed.save(path)
        loaded = DeployedModel.load(path)
        assert loaded.quantized
        # The rebuilt float arrays (spectra from dequantized ints) are
        # bitwise equal to the in-memory originals.
        for mine, theirs in zip(deployed.records, loaded.records):
            for key in ("spectra", "weight", "bias", "weight_q", "bias_q"):
                value = mine.get(key)
                if isinstance(value, np.ndarray):
                    assert np.array_equal(value, theirs[key]), key
        x = rng.normal(size=(4, 16))
        assert np.array_equal(
            deployed.predict_proba(x), loaded.predict_proba(x)
        )

    def test_quantized_conv_round_trip(self, tmp_path, rng, conv_model):
        deployed = DeployedModel.from_model(conv_model, quantize_bits=12)
        path = tmp_path / "qconv.npz"
        deployed.save(path)
        loaded = DeployedModel.load(path)
        x = rng.normal(size=(2, 3, 8, 8))
        assert np.array_equal(
            deployed.predict_proba(x), loaded.predict_proba(x)
        )

    def test_session_parity_vs_live_model(self, tmp_path, rng, fc_model):
        # v2 save -> load -> to_session must match the live model to
        # float32-storage accuracy (same contract as v1 deployment).
        from repro.nn import Tensor

        deployed = DeployedModel.from_model(fc_model)
        path = tmp_path / "v2.npz"
        deployed.save(path)
        loaded = DeployedModel.load(path)
        x = rng.normal(size=(5, 16))
        expected = fc_model(Tensor(x)).data
        with InferenceSession.from_deployed(loaded) as session:
            got = session.forward(x)
        assert np.allclose(got, expected, atol=1e-4)

    def test_quantized_arrays_are_smaller(self, fc_model):
        float_bytes = DeployedModel.from_model(fc_model).storage_bytes()
        q_bytes = DeployedModel.from_model(
            fc_model, quantize_bits=12
        ).storage_bytes()
        assert q_bytes < float_bytes

    def test_int_dtype_follows_width(self, fc_model):
        for bits, dtype in ((8, np.int8), (12, np.int16), (18, np.int32)):
            deployed = DeployedModel.from_model(fc_model, quantize_bits=bits)
            codes = deployed.records[0]["weight_q"]
            assert codes.dtype == dtype

    def test_describe_reports_quantization(self, fc_model):
        deployed = DeployedModel.from_model(fc_model, quantize_bits=12)
        info = deployed.describe()
        assert info["quantized"]
        quantized_layers = [
            l for l in info["layers"] if "qformat" in l
        ]
        assert quantized_layers
        assert all(
            l["quantization_error"] >= 0 for l in quantized_layers
        )
        json.dumps(info)  # JSON-able end to end

    def test_bad_quantize_bits(self, fc_model):
        with pytest.raises(DeploymentError, match="quantize_bits"):
            DeployedModel.from_model(fc_model, quantize_bits=1)

    def test_q_error_covers_bias(self, rng):
        # A bias that quantizes much worse than the weights must raise
        # the record's q_error (it feeds the serving parity bound).
        from repro.nn import Linear, Sequential
        from repro.quantize import choose_qformat, quantization_error

        model = Sequential(Linear(8, 4, rng=rng))
        layer = model[0]
        # Sub-LSB bias values quantize far worse (relatively) than the
        # unit-scale weights: the format's 11 fraction bits give an LSB
        # of ~5e-4 against values of ~1e-3.
        layer.bias.data = rng.normal(size=4) * 1e-3
        deployed = DeployedModel.from_model(model, quantize_bits=12)
        record = deployed.records[0]
        weight_error = quantization_error(
            layer.weight.data, choose_qformat(layer.weight.data, 12)
        )
        bias_error = quantization_error(
            layer.bias.data, choose_qformat(layer.bias.data, 12)
        )
        assert bias_error > weight_error  # scenario sanity
        assert record["q_error"] == pytest.approx(bias_error)
        assert deployed.quantization_summary()[0]["error"] == pytest.approx(
            bias_error
        )


class TestQuantizedParityBound:
    def test_quantized_within_documented_bound(self, rng, fc_model):
        deployed_f = DeployedModel.from_model(fc_model)
        deployed_q = DeployedModel.from_model(fc_model, quantize_bits=12)
        bound = PARITY_FACTOR * max(
            row["error"] for row in deployed_q.quantization_summary()
        )
        x = rng.normal(size=(32, 16))
        deviation = np.abs(
            deployed_q.predict_proba(x) - deployed_f.predict_proba(x)
        ).max()
        assert deviation <= bound

    def test_engine_serves_quantized_artifact(self, tmp_path, rng, fc_model):
        deployed_q = DeployedModel.from_model(fc_model, quantize_bits=12)
        path = tmp_path / "q.npz"
        deployed_q.save(path)
        x = rng.normal(size=(8, 16))
        with InferenceSession.from_deployed(
            DeployedModel.load(path)
        ) as local:
            expected = local.predict_proba(x)
        with Engine(model=str(path), precisions=("fp64", "fp32")) as engine:
            assert np.array_equal(engine.predict_proba(x), expected)
            fp32 = engine.predict_proba(x, precision="fp32")
        assert np.abs(fp32 - expected).max() <= 1e-5

    def test_server_end_to_end_quantized(self, tmp_path, rng, fc_model):
        # Quantized v2 artifact through the full asyncio serving stack:
        # bitwise vs a local session on the same artifact, and within
        # the documented bound of the float model.
        deployed_f = DeployedModel.from_model(fc_model)
        deployed_q = DeployedModel.from_model(fc_model, quantize_bits=12)
        path = tmp_path / "q.npz"
        deployed_q.save(path)
        bound = PARITY_FACTOR * max(
            row["error"] for row in deployed_q.quantization_summary()
        )
        x = rng.normal(size=(12, 16))

        async def scenario():
            engine = Engine(model=str(path))
            server = InferenceServer(engine, port=0, max_batch=8)
            try:
                async with server:
                    client = await AsyncServeClient.connect(port=server.port)
                    try:
                        return await client.predict_proba(x)
                    finally:
                        await client.close()
            finally:
                engine.close()

        served = asyncio.run(scenario())
        with InferenceSession.from_deployed(
            DeployedModel.load(path)
        ) as local:
            assert np.array_equal(served, local.predict_proba(x))
        deviation = np.abs(served - deployed_f.predict_proba(x)).max()
        assert deviation <= bound
