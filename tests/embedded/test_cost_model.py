"""Tests for per-layer operation counting."""

import numpy as np
import pytest

from repro.embedded import complex_fft_ops, count_model, real_fft_ops
from repro.nn import (
    AvgPool2d,
    BatchNorm1d,
    BlockCirculantConv2d,
    BlockCirculantLinear,
    Conv2d,
    Dropout,
    Flatten,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
    Softmax,
)


class TestFftOps:
    def test_complex_cost_formula(self):
        assert complex_fft_ops(8) == pytest.approx(5 * 8 * 3)

    def test_real_is_half(self):
        assert real_fft_ops(16) == pytest.approx(complex_fft_ops(16) / 2)

    def test_length_one_free(self):
        assert complex_fft_ops(1) == 0.0

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            complex_fft_ops(0)


class TestLinearCosts:
    def test_dense_fc_flops(self, rng):
        model = Sequential(Linear(100, 50, rng=rng))
        cost = count_model(model, (100,))
        assert cost.flops == pytest.approx(2 * 50 * 100 + 50)
        assert cost.weight_bytes == (100 * 50 + 50) * 4

    def test_bc_fc_cheaper_than_dense_at_scale(self, rng):
        dense = count_model(Sequential(Linear(1024, 1024, rng=rng)), (1024,))
        bc = count_model(
            Sequential(BlockCirculantLinear(1024, 1024, 256, rng=rng)), (1024,)
        )
        assert bc.flops < dense.flops / 5
        assert bc.weight_bytes < dense.weight_bytes / 5

    def test_bc_fc_flop_structure(self, rng):
        layer = BlockCirculantLinear(8, 8, 4, rng=rng)
        cost = count_model(Sequential(layer), (8,))
        bins = 3
        expected = (
            2 * real_fft_ops(4)  # q FFTs
            + 2 * 2 * 6 * bins  # products
            + 2 * 1 * 2 * bins  # accumulation
            + 2 * real_fft_ops(4)  # p IFFTs
            + 8  # bias
        )
        assert cost.flops == pytest.approx(expected)

    def test_output_shape_tracking(self, rng):
        model = Sequential(Linear(12, 5, rng=rng), ReLU(), Linear(5, 3, rng=rng))
        cost = count_model(model, (12,))
        assert cost.output_shape == (3,)


class TestConvCosts:
    def test_dense_conv_flops(self, rng):
        model = Sequential(Conv2d(3, 8, 3, rng=rng))
        cost = count_model(model, (3, 10, 10))
        positions = 8 * 8
        assert cost.flops == pytest.approx(
            2 * positions * 8 * 3 * 9 + positions * 8
        )
        assert cost.output_shape == (8, 8, 8)

    def test_bc_conv_cheaper_than_dense(self, rng):
        dense = count_model(
            Sequential(Conv2d(64, 64, 3, rng=rng)), (64, 16, 16)
        )
        bc = count_model(
            Sequential(BlockCirculantConv2d(64, 64, 3, block_size=32, rng=rng)),
            (64, 16, 16),
        )
        assert bc.flops < dense.flops

    def test_pooling_shape_and_cost(self, rng):
        model = Sequential(MaxPool2d(2))
        cost = count_model(model, (4, 8, 8))
        assert cost.output_shape == (4, 4, 4)
        assert cost.flops == pytest.approx(4 * 16 * 4)

    def test_avgpool(self, rng):
        cost = count_model(Sequential(AvgPool2d(2)), (2, 4, 4))
        assert cost.output_shape == (2, 2, 2)


class TestAuxiliaryLayers:
    def test_relu_cost(self, rng):
        cost = count_model(Sequential(ReLU()), (100,))
        assert cost.flops == 100

    def test_softmax_cost(self):
        cost = count_model(Sequential(Softmax()), (10,))
        assert cost.flops == 50

    def test_dropout_free_at_inference(self):
        cost = count_model(Sequential(Dropout(0.5)), (64,))
        assert cost.flops == 0
        assert cost.library_calls == 0

    def test_flatten_free_and_reshapes(self):
        cost = count_model(Sequential(Flatten()), (3, 4, 4))
        assert cost.flops == 0
        assert cost.output_shape == (48,)

    def test_batchnorm_folded_cost(self):
        cost = count_model(Sequential(BatchNorm1d(32)), (32,))
        assert cost.flops == 64
        assert cost.weight_bytes == 2 * 32 * 4

    def test_unknown_layer_raises(self):
        from repro.nn import Module

        class Custom(Module):
            def forward(self, x):
                return x

        with pytest.raises(TypeError):
            count_model(Sequential(Custom()), (4,))

    def test_requires_sequential(self, rng):
        with pytest.raises(TypeError):
            count_model(Linear(4, 2, rng=rng), (4,))

    def test_empty_model_output_shape_raises(self):
        from repro.embedded import ModelCost

        with pytest.raises(ValueError):
            ModelCost().output_shape
