"""Tests for the energy model."""

import numpy as np
import pytest

from repro.embedded import (
    POWER_PROFILES,
    EnergyModel,
    PowerProfile,
    get_platform,
)
from repro.zoo import build_arch1, build_arch3


@pytest.fixture(scope="module")
def arch1_energy():
    return EnergyModel(build_arch1(rng=np.random.default_rng(0)), (256,))


class TestPowerProfiles:
    def test_all_platforms_covered(self):
        from repro.embedded import PLATFORMS

        assert set(POWER_PROFILES) == set(PLATFORMS)

    def test_a53_most_efficient_core(self):
        # 16 nm A53 draws less than 28 nm Krait/A15 at similar clocks.
        assert POWER_PROFILES["honor6x"].active_watts < min(
            POWER_PROFILES["nexus5"].active_watts,
            POWER_PROFILES["xu3"].active_watts,
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            PowerProfile(active_watts=0.0, idle_watts=0.0)
        with pytest.raises(ValueError):
            PowerProfile(active_watts=1.0, idle_watts=2.0)


class TestEnergyModel:
    def test_energy_is_power_times_time(self, arch1_energy):
        estimate = arch1_energy.estimate("xu3", "cpp")
        expected = POWER_PROFILES["xu3"].active_watts * estimate.runtime_us
        assert estimate.energy_uj == pytest.approx(expected)

    def test_java_costs_more_energy(self, arch1_energy):
        for platform in POWER_PROFILES:
            java = arch1_energy.estimate(platform, "java").energy_uj
            cpp = arch1_energy.estimate(platform, "cpp").energy_uj
            assert java > 1.5 * cpp, platform

    def test_most_efficient_is_honor6x_cpp(self, arch1_energy):
        best = arch1_energy.most_efficient()
        assert best.platform == "honor6x"
        assert best.implementation == "cpp"

    def test_sweep_covers_grid(self, arch1_energy):
        estimates = arch1_energy.sweep()
        assert len(estimates) == 6
        assert all(e.energy_uj > 0 for e in estimates)

    def test_battery_raises_java_energy(self, arch1_energy):
        plugged = arch1_energy.estimate("nexus5", "java").energy_uj
        battery = arch1_energy.estimate("nexus5", "java", battery=True).energy_uj
        assert battery == pytest.approx(1.14 * plugged)

    def test_images_per_joule(self, arch1_energy):
        estimate = arch1_energy.estimate("honor6x", "cpp")
        assert estimate.images_per_joule == pytest.approx(
            1e6 / estimate.energy_uj
        )

    def test_accepts_platform_object(self, arch1_energy):
        by_key = arch1_energy.estimate("xu3", "cpp").energy_uj
        by_obj = arch1_energy.estimate(get_platform("xu3"), "cpp").energy_uj
        assert by_key == pytest.approx(by_obj)

    def test_unknown_platform_raises(self, arch1_energy):
        with pytest.raises(KeyError):
            arch1_energy.estimate("pixel", "cpp")

    def test_cifar_costs_more_than_mnist(self, arch1_energy):
        arch3_energy = EnergyModel(
            build_arch3(rng=np.random.default_rng(0)), (3, 32, 32)
        )
        mnist = arch1_energy.estimate("honor6x", "cpp").energy_uj
        cifar = arch3_energy.estimate("honor6x", "cpp").energy_uj
        assert cifar > 20 * mnist
