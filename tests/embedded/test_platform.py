"""Tests for platform specifications (paper Table I)."""

import pytest

from repro.embedded import PLATFORMS, CpuCluster, PlatformSpec, get_platform


class TestTableI:
    def test_all_three_devices_present(self):
        assert set(PLATFORMS) == {"nexus5", "xu3", "honor6x"}

    def test_nexus5_spec(self):
        spec = PLATFORMS["nexus5"]
        assert spec.name == "LG Nexus 5"
        assert spec.primary_cpu.clock_ghz == 2.3
        assert spec.primary_cpu.cores == 4
        assert spec.primary_cpu.microarchitecture == "Krait 400"
        assert spec.companion_cpu is None
        assert spec.cpu_architecture == "ARMv7-A"
        assert spec.gpu == "Adreno 330"
        assert spec.ram_gb == 2

    def test_xu3_spec(self):
        spec = PLATFORMS["xu3"]
        assert spec.primary_cpu.describe() == "4 x 2.1GHz Cortex-A15"
        assert spec.companion_cpu.describe() == "4 x 1.5GHz Cortex-A7"
        assert spec.android_version == "7 (Nougat)"

    def test_honor6x_spec(self):
        spec = PLATFORMS["honor6x"]
        assert spec.cpu_architecture == "ARMv8-A"
        assert spec.ram_gb == 3
        assert spec.companion_cpu.clock_ghz == 1.7

    def test_table_rows_have_seven_columns(self):
        for spec in PLATFORMS.values():
            assert len(spec.table_row()) == 7

    def test_device_speed_ordering(self):
        # The paper's measured ordering: Honor 6X fastest, Nexus 5 slowest.
        gops = {k: p.effective_gops for k, p in PLATFORMS.items()}
        assert gops["honor6x"] > gops["xu3"] > gops["nexus5"]


class TestLookup:
    def test_get_platform(self):
        assert get_platform("xu3") is PLATFORMS["xu3"]

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            get_platform("pixel9")


class TestValidation:
    def test_cluster_rejects_bad_values(self):
        with pytest.raises(ValueError):
            CpuCluster(0, 2.0, "X")
        with pytest.raises(ValueError):
            CpuCluster(4, 0.0, "X")

    def test_spec_rejects_bad_values(self):
        cluster = CpuCluster(4, 2.0, "X")
        with pytest.raises(ValueError):
            PlatformSpec("n", "a", cluster, None, "v7", "gpu", 0, 1.0)
        with pytest.raises(ValueError):
            PlatformSpec("n", "a", cluster, None, "v7", "gpu", 2, 0.0)

    def test_specs_frozen(self):
        with pytest.raises(AttributeError):
            PLATFORMS["xu3"].ram_gb = 8
