"""Tests for the calibrated runtime model (paper Tables II-III shapes)."""

import numpy as np
import pytest

from repro.embedded import (
    CPP,
    JAVA,
    ImplementationProfile,
    InferenceProfiler,
)
from repro.zoo import build_arch1, build_arch2, build_arch3

#: Paper Table II / III measurements: (profiler args, impl, platform) -> us.
PAPER_RUNTIMES = {
    ("arch1", "java", "nexus5"): 359.6,
    ("arch1", "java", "xu3"): 294.1,
    ("arch1", "java", "honor6x"): 256.7,
    ("arch1", "cpp", "nexus5"): 140.0,
    ("arch1", "cpp", "xu3"): 122.0,
    ("arch1", "cpp", "honor6x"): 101.0,
    ("arch2", "java", "nexus5"): 350.9,
    ("arch2", "java", "xu3"): 278.2,
    ("arch2", "java", "honor6x"): 221.7,
    ("arch2", "cpp", "nexus5"): 128.5,
    ("arch2", "cpp", "xu3"): 119.1,
    ("arch2", "cpp", "honor6x"): 98.5,
    ("arch3", "java", "xu3"): 21032.0,
    ("arch3", "java", "honor6x"): 19785.0,
    ("arch3", "cpp", "xu3"): 8912.0,
    ("arch3", "cpp", "honor6x"): 8244.0,
}


@pytest.fixture(scope="module")
def profilers():
    rng = np.random.default_rng(0)
    return {
        "arch1": InferenceProfiler(build_arch1(rng=rng), (256,)),
        "arch2": InferenceProfiler(build_arch2(rng=rng), (121,)),
        "arch3": InferenceProfiler(build_arch3(rng=rng), (3, 32, 32)),
    }


class TestCalibrationAccuracy:
    @pytest.mark.parametrize("key", sorted(PAPER_RUNTIMES))
    def test_within_15_percent_of_paper(self, profilers, key):
        arch, impl, platform = key
        predicted = profilers[arch].runtime_us(platform, impl)
        paper = PAPER_RUNTIMES[key]
        assert predicted == pytest.approx(paper, rel=0.15)


class TestShapeClaims:
    def test_cpp_faster_than_java_everywhere(self, profilers):
        for arch in ("arch1", "arch2", "arch3"):
            for platform in ("nexus5", "xu3", "honor6x"):
                ratio = profilers[arch].speedup(platform)
                # Paper: C++ 60-160% faster; ratio in (1.6, 3.0).
                assert 1.6 < ratio < 3.0, (arch, platform, ratio)

    def test_device_ordering(self, profilers):
        # Honor 6X < XU3 < Nexus 5 in latency (paper Tables II).
        for arch in ("arch1", "arch2"):
            for impl in ("java", "cpp"):
                runtimes = [
                    profilers[arch].runtime_us(p, impl)
                    for p in ("honor6x", "xu3", "nexus5")
                ]
                assert runtimes[0] < runtimes[1] < runtimes[2]

    def test_arch1_slower_than_arch2(self, profilers):
        # Bigger network => more time, but only slightly (launch-dominated).
        for impl in ("java", "cpp"):
            t1 = profilers["arch1"].runtime_us("nexus5", impl)
            t2 = profilers["arch2"].runtime_us("nexus5", impl)
            assert t1 > t2
            assert (t1 - t2) / t2 < 0.35

    def test_cifar_much_slower_than_mnist(self, profilers):
        t3 = profilers["arch3"].runtime_us("xu3", "cpp")
        t1 = profilers["arch1"].runtime_us("xu3", "cpp")
        assert t3 / t1 > 25

    def test_battery_mode_java_only(self, profilers):
        # Paper: Java degrades ~14% on battery, C++ unchanged.
        p = profilers["arch1"]
        assert p.runtime_us("nexus5", "java", battery=True) == pytest.approx(
            1.14 * p.runtime_us("nexus5", "java")
        )
        assert p.runtime_us("nexus5", "cpp", battery=True) == pytest.approx(
            p.runtime_us("nexus5", "cpp")
        )


class TestProfilerApi:
    def test_sweep_covers_grid(self, profilers):
        entries = profilers["arch1"].sweep()
        assert len(entries) == 6  # 3 platforms x 2 implementations
        assert all(e.runtime_us > 0 for e in entries)

    def test_sweep_subset(self, profilers):
        entries = profilers["arch3"].sweep(
            platforms=["xu3", "honor6x"], implementations=["cpp"]
        )
        assert len(entries) == 2

    def test_unknown_platform_raises(self, profilers):
        with pytest.raises(KeyError):
            profilers["arch1"].runtime_us("pixel", "cpp")

    def test_unknown_implementation_raises(self, profilers):
        with pytest.raises(KeyError):
            profilers["arch1"].runtime_us("xu3", "rust")

    def test_profile_accepts_objects(self, profilers):
        from repro.embedded import get_platform

        value = profilers["arch1"].runtime_us(get_platform("xu3"), CPP)
        assert value == profilers["arch1"].runtime_us("xu3", "cpp")


class TestImplementationProfiles:
    def test_java_slower_constants(self):
        assert JAVA.peak_factor < CPP.peak_factor
        assert JAVA.battery_penalty > CPP.battery_penalty

    def test_validation(self):
        with pytest.raises(ValueError):
            ImplementationProfile("x", 0.0, 1e5, 1.0)
        with pytest.raises(ValueError):
            ImplementationProfile("x", 0.5, -1.0, 1.0)
        with pytest.raises(ValueError):
            ImplementationProfile("x", 0.5, 1e5, 0.9)
