"""Tests for the memory-footprint model."""

import numpy as np
import pytest

from repro.embedded import estimate_memory, fits_on_platform
from repro.nn import Flatten, Linear, ReLU, Sequential
from repro.zoo import build_arch1, build_arch3


class TestEstimateMemory:
    def test_weights_match_cost_model(self, rng):
        from repro.embedded import count_model

        model = build_arch1(rng=rng)
        footprint = estimate_memory(model, (256,))
        assert footprint.weight_bytes == count_model(model, (256,)).weight_bytes

    def test_activation_chain_shapes(self, rng):
        model = Sequential(Linear(8, 32, rng=rng), ReLU(), Linear(32, 2, rng=rng))
        footprint = estimate_memory(model, (8,))
        assert footprint.activation_bytes_per_layer == (
            8 * 4, 32 * 4, 32 * 4, 2 * 4
        )

    def test_peak_is_largest_adjacent_pair(self, rng):
        model = Sequential(Linear(8, 32, rng=rng), ReLU(), Linear(32, 2, rng=rng))
        footprint = estimate_memory(model, (8,))
        assert footprint.peak_activation_bytes == (32 + 32) * 4

    def test_batch_scaling(self, rng):
        model = build_arch1(rng=rng)
        single = estimate_memory(model, (256,), batch_size=1)
        batched = estimate_memory(model, (256,), batch_size=8)
        assert batched.peak_activation_bytes == 8 * single.peak_activation_bytes
        assert batched.weight_bytes == single.weight_bytes

    def test_total_mb(self, rng):
        footprint = estimate_memory(build_arch3(rng=rng), (3, 32, 32))
        assert footprint.total_mb == pytest.approx(
            footprint.total_bytes / 1024 / 1024
        )
        assert 0.1 < footprint.total_mb < 100.0

    def test_rejects_bad_batch(self, rng):
        with pytest.raises(ValueError):
            estimate_memory(build_arch1(rng=rng), (256,), batch_size=0)


class TestFitsOnPlatform:
    def test_paper_models_fit_everywhere(self, rng):
        for build, shape in ((build_arch1, (256,)), (build_arch3, (3, 32, 32))):
            footprint = estimate_memory(build(rng=rng), shape)
            for platform in ("nexus5", "xu3", "honor6x"):
                assert fits_on_platform(footprint, platform)
                assert fits_on_platform(footprint, platform, java=True)

    def test_java_heap_cap_binds(self, rng):
        footprint = estimate_memory(build_arch3(rng=rng), (3, 32, 32),
                                    batch_size=512)
        # Large batch exceeds a tiny Java heap but not device RAM.
        assert fits_on_platform(footprint, "honor6x")
        assert not fits_on_platform(
            footprint, "honor6x", java=True, java_heap_mb=16.0
        )

    def test_ram_cap_binds(self, rng):
        from repro.embedded.memory import MemoryFootprint

        huge = MemoryFootprint(
            weight_bytes=3 * 1024**3, peak_activation_bytes=0,
            activation_bytes_per_layer=(0,),
        )
        assert not fits_on_platform(huge, "nexus5")  # 2 GB device
        assert fits_on_platform(huge, "honor6x")  # 3 GB device

    def test_accepts_platform_object(self, rng):
        from repro.embedded import get_platform

        footprint = estimate_memory(build_arch1(rng=rng), (256,))
        assert fits_on_platform(footprint, get_platform("xu3"))
