"""Tests for the FFT-domain deployment engine (paper Fig. 4)."""

import numpy as np
import pytest

from repro.embedded import DeployedModel
from repro.exceptions import DeploymentError
from repro.io import build_model_from_string
from repro.nn import (
    BatchNorm1d,
    BatchNorm2d,
    Dropout,
    Linear,
    Module,
    ReLU,
    Sequential,
    Softmax,
    Tensor,
)


@pytest.fixture
def fc_model(rng):
    model = build_model_from_string("16-8CFb4-8CFb4-4F", rng=rng)
    model.eval()
    return model


@pytest.fixture
def conv_model(rng):
    model = build_model_from_string("3x8x8-4Conv3-MP2-4CConv3b2-8CFb4-4F", rng=rng)
    model.eval()
    return model


class TestParityWithTrainingModel:
    def test_fc_model_parity(self, rng, fc_model):
        x = rng.normal(size=(5, 16))
        expected = fc_model(Tensor(x)).data
        deployed = DeployedModel.from_model(fc_model)
        # float32 storage costs ~1e-6 relative accuracy.
        assert np.allclose(deployed.forward(x), expected, atol=1e-4)

    def test_conv_model_parity(self, rng, conv_model):
        x = rng.normal(size=(2, 3, 8, 8))
        expected = conv_model(Tensor(x)).data
        deployed = DeployedModel.from_model(conv_model)
        assert np.allclose(deployed.forward(x), expected, atol=1e-4)

    def test_predictions_match(self, rng, fc_model):
        x = rng.normal(size=(20, 16))
        expected = fc_model(Tensor(x)).data.argmax(axis=1)
        deployed = DeployedModel.from_model(fc_model)
        assert np.array_equal(deployed.predict(x), expected)

    def test_single_sample_promoted(self, rng, fc_model):
        deployed = DeployedModel.from_model(fc_model)
        assert deployed.predict_proba(rng.normal(size=16)).shape == (1, 4)

    def test_probabilities_normalized(self, rng, fc_model):
        deployed = DeployedModel.from_model(fc_model)
        probs = deployed.predict_proba(rng.normal(size=(6, 16)))
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert np.all(probs >= 0)

    def test_explicit_softmax_not_doubled(self, rng):
        model = Sequential(Linear(4, 3, rng=rng), Softmax())
        deployed = DeployedModel.from_model(model)
        x = rng.normal(size=(2, 4))
        assert np.allclose(deployed.predict_proba(x).sum(axis=1), 1.0)
        assert np.allclose(deployed.forward(x), deployed.predict_proba(x))


class TestDeploymentTransforms:
    def test_dropout_dropped(self, rng):
        model = Sequential(Linear(4, 4, rng=rng), Dropout(0.5), ReLU())
        deployed = DeployedModel.from_model(model)
        kinds = [r["kind"] for r in deployed.records]
        assert "dropout" not in kinds
        assert len(deployed.records) == 2

    def test_batchnorm1d_folded(self, rng):
        bn = BatchNorm1d(4)
        # Accumulate non-trivial running stats.
        for _ in range(10):
            bn(Tensor(rng.normal(loc=2.0, scale=3.0, size=(32, 4))))
        bn.eval()
        model = Sequential(bn)
        deployed = DeployedModel.from_model(model)
        assert deployed.records[0]["kind"] == "affine"
        x = rng.normal(size=(5, 4))
        assert np.allclose(
            deployed.forward(x), model(Tensor(x)).data, atol=1e-5
        )

    def test_batchnorm2d_folded(self, rng):
        bn = BatchNorm2d(3)
        for _ in range(10):
            bn(Tensor(rng.normal(size=(8, 3, 4, 4))))
        bn.eval()
        model = Sequential(bn)
        deployed = DeployedModel.from_model(model)
        x = rng.normal(size=(2, 3, 4, 4))
        assert np.allclose(deployed.forward(x), model(Tensor(x)).data, atol=1e-5)

    def test_bc_layers_store_spectra_not_weights(self, rng, fc_model):
        deployed = DeployedModel.from_model(fc_model)
        bc_records = [r for r in deployed.records if r["kind"] == "bc_linear"]
        assert len(bc_records) == 2
        for record in bc_records:
            assert np.iscomplexobj(record["spectra"])
            assert "weight" not in record

    def test_unknown_layer_raises(self):
        class Strange(Module):
            def forward(self, x):
                return x

        with pytest.raises(DeploymentError):
            DeployedModel.from_model(Sequential(Strange()))

    def test_empty_records_raises(self):
        with pytest.raises(DeploymentError):
            DeployedModel([])


class TestSaveLoad:
    def test_round_trip(self, rng, conv_model, tmp_path):
        deployed = DeployedModel.from_model(conv_model)
        path = tmp_path / "model.npz"
        deployed.save(path)
        loaded = DeployedModel.load(path)
        x = rng.normal(size=(2, 3, 8, 8))
        assert np.allclose(loaded.forward(x), deployed.forward(x))

    def test_load_rejects_foreign_file(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, data=np.zeros(3))
        with pytest.raises(DeploymentError):
            DeployedModel.load(path)

    def test_storage_smaller_than_dense(self, rng):
        # The deployed artifact of a BC model must undercut the dense
        # float32 equivalent (paper's storage claim).
        model = build_model_from_string("256-128CFb64-128CFb64-10F", rng=rng)
        deployed = DeployedModel.from_model(model)
        dense_bytes = (256 * 128 + 128 + 128 * 128 + 128 + 128 * 10 + 10) * 4
        assert deployed.storage_bytes() < dense_bytes / 3

    def test_time_inference_positive(self, rng, fc_model):
        deployed = DeployedModel.from_model(fc_model)
        us = deployed.time_inference(rng.normal(size=(10, 16)), repeats=1)
        assert us > 0

    def test_time_inference_validation(self, rng, fc_model):
        deployed = DeployedModel.from_model(fc_model)
        with pytest.raises(ValueError):
            deployed.time_inference(rng.normal(size=(2, 16)), repeats=0)


class TestBatchSizeContract:
    """predict/predict_proba share the InferenceSession batch_size
    semantics exactly: None = one shot, >=1 streams, 0/negative raises
    (the kwarg-drift fix)."""

    def test_streamed_matches_one_shot(self, rng, fc_model):
        deployed = DeployedModel.from_model(fc_model)
        x = rng.normal(size=(10, 16))
        one_shot = deployed.predict_proba(x)  # batch_size=None
        # Chunked GEMMs may differ in the last ulp from the one-shot
        # batch; bitwise identity holds when the chunk covers all rows.
        assert np.allclose(
            one_shot, deployed.predict_proba(x, batch_size=3), atol=1e-12
        )
        assert np.array_equal(one_shot, deployed.predict_proba(x, batch_size=10))
        assert np.array_equal(
            one_shot.argmax(axis=-1), deployed.predict(x, batch_size=4)
        )

    def test_zero_and_negative_batch_size_raise_like_the_session(
        self, rng, fc_model
    ):
        from repro.runtime import InferenceSession

        deployed = DeployedModel.from_model(fc_model)
        session = InferenceSession.from_deployed(deployed)
        x = rng.normal(size=(4, 16))
        for bad in (0, -2):
            with pytest.raises(ValueError, match="batch_size"):
                deployed.predict_proba(x, batch_size=bad)
            with pytest.raises(ValueError, match="batch_size"):
                session.predict_proba(x, batch_size=bad)
        # None is "no batching" on both paths.
        assert np.array_equal(
            deployed.predict(x, batch_size=None),
            session.predict(x, batch_size=None),
        )
        session.close()
